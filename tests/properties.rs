//! Property-based tests: marking versus the oracle on random graphs, the
//! collector comparisons on random churn, and the reduction engine
//! against a reference evaluator on random arithmetic programs.

use dgr::graph::{oracle, GraphStore, NodeLabel, PrimOp, Slot, TaskEndpoints};
use dgr::marking::driver::{run_mark1, run_mark2, run_mark3, MarkRunConfig};
use dgr::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random graph generation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    edges: Vec<(usize, usize, u8)>, // (from, to, kind: 0 none, 1 eager, 2 vital)
    frees: Vec<usize>,
    seeds: Vec<usize>,
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = RandomGraph> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0u8..3), 0..n * 3);
        let frees = proptest::collection::vec(1..n, 0..n / 4 + 1);
        let seeds = proptest::collection::vec(0..n, 0..6);
        (edges, frees, seeds).prop_map(move |(edges, frees, seeds)| RandomGraph {
            n,
            edges,
            frees,
            seeds,
        })
    })
}

fn build(rg: &RandomGraph) -> (GraphStore, TaskEndpoints) {
    let mut g = GraphStore::with_capacity(rg.n);
    let ids: Vec<_> = (0..rg.n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &(a, b, kind) in &rg.edges {
        g.connect(ids[a], ids[b]);
        let idx = g.vertex(ids[a]).args().len() - 1;
        let k = match kind {
            1 => Some(dgr::graph::RequestKind::Eager),
            2 => Some(dgr::graph::RequestKind::Vital),
            _ => None,
        };
        g.vertex_mut(ids[a]).set_request_kind(idx, k);
        if k.is_some() {
            // Mirror with a requester back-pointer, as the engine would.
            let from = ids[a];
            g.vertex_mut(ids[b]).add_requester(from.into());
        }
    }
    g.set_root(ids[0]);
    let mut frees: Vec<usize> = rg.frees.clone();
    frees.sort_unstable();
    frees.dedup();
    for &f in &frees {
        // Freeing may leave dangling arcs from live vertices in this
        // synthetic setting; scrub them so the graph is well-formed.
        let victim = ids[f];
        for v in g.live_ids().collect::<Vec<_>>() {
            while g.disconnect(v, victim) {}
            g.remove_requester(v, victim.into());
        }
        g.free(victim);
    }
    let seeds: TaskEndpoints = rg
        .seeds
        .iter()
        .map(|&s| ids[s])
        .filter(|&v| !g.is_free(v))
        .collect();
    (g, seeds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// mark1 marks exactly the oracle's `R`, on every random graph and
    /// schedule seed.
    #[test]
    fn prop_mark1_matches_oracle(rg in graph_strategy(60), seed in 0u64..1000) {
        let (mut g, _) = build(&rg);
        if g.is_free(g.root().unwrap()) { return Ok(()); }
        let want = oracle::reachable_r(&g);
        let cfg = MarkRunConfig {
            policy: dgr::sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            check_invariants: false,
            ..Default::default()
        };
        run_mark1(&mut g, &cfg);
        for v in g.live_ids() {
            prop_assert_eq!(want.contains(v), g.vertex(v).mr.is_marked());
        }
    }

    /// mark2 assigns exactly the oracle's max-min priorities.
    #[test]
    fn prop_mark2_matches_oracle(rg in graph_strategy(50), seed in 0u64..1000) {
        let (mut g, _) = build(&rg);
        if g.is_free(g.root().unwrap()) { return Ok(()); }
        let want = oracle::priorities(&g);
        let cfg = MarkRunConfig {
            policy: dgr::sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        run_mark2(&mut g, &cfg);
        for v in g.live_ids() {
            let got = g.vertex(v).mr.is_marked().then(|| g.vertex(v).mr.prior);
            prop_assert_eq!(got, want[v.index()]);
        }
    }

    /// mark3 marks exactly the oracle's `T` from the same seeds.
    #[test]
    fn prop_mark3_matches_oracle(rg in graph_strategy(50), seed in 0u64..1000) {
        let (mut g, tasks) = build(&rg);
        let want = oracle::reachable_t(&g, &tasks);
        let cfg = MarkRunConfig {
            policy: dgr::sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        run_mark3(&mut g, &tasks, &cfg);
        for v in g.live_ids() {
            prop_assert_eq!(want.contains(v), g.vertex(v).slot(Slot::T).is_marked());
        }
    }

    /// On every churn trace, marking reclaims exactly what reference
    /// counting reclaims plus what it leaks.
    #[test]
    fn prop_marking_equals_rc_plus_leak(
        steps in 10usize..150,
        size in 1u8..8,
        cyclic in 0.0f64..1.0,
        drop in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        use dgr::marking::{MarkMsg, MarkState};
        use dgr::workloads::churn::{churn_trace, ChurnReplayer};
        let trace = churn_trace(steps, size, cyclic, drop, seed);
        let rc = dgr::baseline::refcount::replay_churn_rc(&trace);

        let mut rep = ChurnReplayer::new(64);
        let mut state = MarkState::new();
        let mut quiet = |_m: MarkMsg| {};
        for &op in &trace {
            rep.apply(op, &mut state, &mut quiet);
        }
        let reach = oracle::reachable_r(&rep.g);
        let gar = oracle::garbage(&rep.g, &reach);
        prop_assert_eq!(gar.len(), rc.reclaimed + rc.leaked);
    }
}

// ---------------------------------------------------------------------
// Random programs against a reference evaluator
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum E {
    Int(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>), // predicate: lhs < rhs of two ints
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = any::<i8>().prop_map(E::Int);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(p, t, e)| E::If(
                Box::new(p),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

/// Reference semantics: strict, ⊥-propagating, div-by-zero = ⊥.
fn eval_ref(e: &E) -> Option<i64> {
    match e {
        E::Int(n) => Some(*n as i64),
        E::Add(a, b) => Some(eval_ref(a)?.wrapping_add(eval_ref(b)?)),
        E::Sub(a, b) => Some(eval_ref(a)?.wrapping_sub(eval_ref(b)?)),
        E::Mul(a, b) => Some(eval_ref(a)?.wrapping_mul(eval_ref(b)?)),
        E::Div(a, b) => {
            let (a, b) = (eval_ref(a)?, eval_ref(b)?);
            if b == 0 {
                None
            } else {
                Some(a.wrapping_div(b))
            }
        }
        E::If(p, t, el) => {
            // Predicate: p < 0 (to keep it boolean-typed).
            if eval_ref(p)? < 0 {
                eval_ref(t)
            } else {
                eval_ref(el)
            }
        }
    }
}

fn build_expr(b: &mut Builder<'_>, e: &E) -> dgr::graph::VertexId {
    match e {
        E::Int(n) => b.int(*n as i64),
        E::Add(x, y) => {
            let (x, y) = (build_expr(b, x), build_expr(b, y));
            b.prim2(PrimOp::Add, x, y)
        }
        E::Sub(x, y) => {
            let (x, y) = (build_expr(b, x), build_expr(b, y));
            b.prim2(PrimOp::Sub, x, y)
        }
        E::Mul(x, y) => {
            let (x, y) = (build_expr(b, x), build_expr(b, y));
            b.prim2(PrimOp::Mul, x, y)
        }
        E::Div(x, y) => {
            let (x, y) = (build_expr(b, x), build_expr(b, y));
            b.prim2(PrimOp::Div, x, y)
        }
        E::If(p, t, el) => {
            let p = build_expr(b, p);
            let zero = b.int(0);
            let cond = b.prim2(PrimOp::Lt, p, zero);
            let (t, el) = (build_expr(b, t), build_expr(b, el));
            b.if_(cond, t, el)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The distributed engine computes the same value as the reference
    /// evaluator (laziness may avoid some ⊥ that strict reference
    /// semantics hits, so ⊥-producing programs only require agreement
    /// when the engine also demanded the offending division).
    #[test]
    fn prop_engine_matches_reference(e in expr_strategy(), seed in 0u64..100, spec in any::<bool>()) {
        let mut g = GraphStore::new();
        let mut builder = Builder::new(&mut g);
        let root = build_expr(&mut builder, &e);
        g.set_root(root);
        let cfg = SystemConfig {
            policy: dgr::sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            speculation: spec,
            ..Default::default()
        };
        let mut sys = System::new(g, TemplateStore::new(), cfg);
        let out = sys.run();
        match (eval_ref(&e), out) {
            (Some(want), RunOutcome::Value(Value::Int(got))) => prop_assert_eq!(want, got),
            (Some(want), other) => prop_assert!(false, "wanted {}, got {:?}", want, other),
            (None, RunOutcome::Value(v)) => prop_assert_eq!(v, Value::Bottom),
            (None, other) => prop_assert!(false, "wanted ⊥, got {:?}", other),
        }
    }

    /// Running the same program under the GC driver never changes the
    /// result, on any schedule.
    #[test]
    fn prop_gc_preserves_results(e in expr_strategy(), seed in 0u64..50) {
        let build_sys = |cfg: SystemConfig| {
            let mut g = GraphStore::new();
            let mut builder = Builder::new(&mut g);
            let root = build_expr(&mut builder, &e);
            g.set_root(root);
            System::new(g, TemplateStore::new(), cfg)
        };
        let cfg = SystemConfig {
            policy: dgr::sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        let mut plain = build_sys(cfg.clone());
        let want = plain.run();
        let mut gc = GcDriver::new(build_sys(cfg), GcConfig { period: 13, ..Default::default() });
        let got = gc.run();
        prop_assert_eq!(want, got);
        prop_assert_eq!(gc.sys.stats.dangling_requests, 0);
    }
}
