//! Cross-crate end-to-end scenarios: source programs through the
//! compiler, the distributed reduction engine, and the concurrent GC, on
//! many schedules and PE counts.

use dgr::gc::{CycleOrder, GcConfig, GcDriver};
use dgr::lang::{build_system, build_with_prelude};
use dgr::prelude::*;
use dgr::workloads::programs;

fn run_gc(
    src: &str,
    prelude: bool,
    sys_cfg: SystemConfig,
    gc_cfg: GcConfig,
) -> (RunOutcome, GcDriver) {
    let sys = if prelude {
        build_with_prelude(src, sys_cfg)
    } else {
        build_system(src, sys_cfg)
    }
    .unwrap_or_else(|e| panic!("{src}: {e}"));
    let mut gc = GcDriver::new(sys, gc_cfg);
    let out = gc.run();
    (out, gc)
}

#[test]
fn program_catalog_under_gc_matches_expected() {
    for p in programs::catalog() {
        let (out, gc) = run_gc(
            &p.source,
            p.needs_prelude,
            SystemConfig::default(),
            GcConfig {
                period: 150,
                ..Default::default()
            },
        );
        let expected = p.expected.clone().expect("catalog programs terminate");
        assert_eq!(out, RunOutcome::Value(expected), "{}", p.name);
        assert_eq!(gc.sys.stats.dangling_requests, 0, "{}", p.name);
        assert!(gc.sys.graph.check_consistency().is_ok(), "{}", p.name);
    }
}

#[test]
fn results_invariant_across_pes_policies_and_periods() {
    let p = programs::qsort(25);
    let expected = RunOutcome::Value(p.expected.clone().unwrap());
    for pes in [1u16, 4, 16] {
        for (policy, seed) in [
            (SchedPolicy::Fifo, 0),
            (SchedPolicy::RoundRobin, 0),
            (SchedPolicy::Random { marking_bias: 0.5 }, 7),
            (SchedPolicy::Random { marking_bias: 0.5 }, 8),
        ] {
            for period in [50u64, 500] {
                let cfg = SystemConfig {
                    num_pes: pes,
                    policy,
                    seed,
                    ..Default::default()
                };
                let (out, _) = run_gc(
                    &p.source,
                    true,
                    cfg,
                    GcConfig {
                        period,
                        ..Default::default()
                    },
                );
                assert_eq!(out, expected, "pes={pes} policy={policy:?} period={period}");
            }
        }
    }
}

#[test]
fn wrong_cycle_order_still_computes_correctly() {
    // RBeforeT weakens deadlock reporting (see T7) but never corrupts
    // values or reclaims live data.
    let p = programs::sum_squares(30);
    let (out, gc) = run_gc(
        &p.source,
        true,
        SystemConfig::default(),
        GcConfig {
            period: 80,
            order: CycleOrder::RBeforeT,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(p.expected.unwrap()));
    assert!(gc.stats().reclaimed_total > 0);
    assert_eq!(gc.sys.stats.dangling_requests, 0);
}

#[test]
fn cyclic_data_is_collected_once_dropped() {
    // The cyclic list is consumed and abandoned; the collector reclaims
    // the cycle (reference counting never could).
    let (out, gc) = run_gc(
        "let rec ones = cons 1 ones in sum (take 40 ones)",
        true,
        SystemConfig::default(),
        GcConfig {
            period: 100,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(40)));
    let mut gc = gc;
    let report = gc.run_cycle();
    // After the result, only the root chain survives; the cyclic spine
    // plus all intermediate cells are garbage.
    assert!(report.reclaimed > 0 || gc.stats().reclaimed_total > 0);
    let live = gc.sys.graph.live_count();
    assert!(
        live < 20,
        "only the valued root region survives, found {live}"
    );
}

#[test]
fn speculation_with_gc_terminates_where_plain_speculation_diverges() {
    let src = "fib 9";
    let cfg = SystemConfig {
        speculation: true,
        policy: SchedPolicy::Random { marking_bias: 0.5 },
        seed: 11,
        max_events: 400_000,
        ..Default::default()
    };
    // Plain: the speculative descent swamps the budget.
    let mut plain = build_with_prelude(src, cfg.clone()).unwrap();
    assert_eq!(plain.run(), RunOutcome::Budget, "speculation diverges bare");
    // With the full management machinery: converges.
    let (out, gc) = run_gc(
        src,
        true,
        cfg,
        GcConfig {
            period: 250,
            max_total_events: 400_000,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(34)));
    assert!(gc.stats().expunged_total > 0);
}

#[test]
fn deadlocked_subprogram_with_recovery_poisons_only_its_cone() {
    // The deadlocked x participates in one addend; with recovery the
    // whole strict sum is ⊥ (strictness), reported rather than hanging.
    let (out, _) = run_gc(
        "let rec x = x + 1 in (if true then 1 else x) + 2",
        false,
        SystemConfig::default(),
        GcConfig {
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    // x is never demanded (lazy else branch): the program completes
    // normally and x's cycle is simply garbage.
    assert_eq!(out, RunOutcome::Value(Value::Int(3)));

    let (out, gc) = run_gc(
        "let rec x = x + 1 in (if false then 1 else x) + 2",
        false,
        SystemConfig::default(),
        GcConfig {
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(Value::Bottom));
    assert!(gc.stats().deadlocks_total > 0);
}

#[test]
fn mt_every_zero_disables_deadlock_detection_but_not_collection() {
    let (out, gc) = run_gc(
        "let rec x = x + 1 in x",
        false,
        SystemConfig::default(),
        GcConfig {
            mt_every: 0,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Quiescent);
    assert_eq!(gc.stats().deadlocks_total, 0, "no M_T, no reports");
    assert_eq!(gc.stats().mt_cycles, 0);
}

#[test]
fn heavy_sharing_is_computed_once() {
    // let x = fib 12 in x + x + x: one evaluation serves all demands.
    let (out, gc) = run_gc(
        "let x = fib 12 in x + x + x",
        true,
        SystemConfig::default(),
        GcConfig::default(),
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(3 * 144)));
    // fib 12 alone costs hundreds of expansions; sharing keeps the total
    // well under twice that.
    let single = {
        let (out, gc2) = run_gc("fib 12", true, SystemConfig::default(), GcConfig::default());
        assert_eq!(out, RunOutcome::Value(Value::Int(144)));
        gc2.sys.stats.expansions
    };
    assert!(
        gc.sys.stats.expansions < single + single / 4,
        "shared: {} vs single: {}",
        gc.sys.stats.expansions,
        single
    );
}

#[test]
fn fixed_heap_with_gc_completes_where_it_could_not_grow() {
    // A fixed heap too small for the whole computation's total allocation
    // still completes because the collector recycles it.
    let src = "let rec sumto = \\n -> if n == 0 then 0 else n + sumto (n - 1) in sumto 120";
    // Run with small growth steps and GC on; the heap the computation
    // ends with is much smaller than its total allocation because the
    // collector keeps recycling it.
    let (out, gc) = run_gc(
        src,
        false,
        SystemConfig {
            grow_step: 64,
            ..Default::default()
        },
        GcConfig {
            period: 60,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(7260)));
    let capacity = gc.sys.graph.capacity();
    let reclaimed = gc.stats().reclaimed_total;
    assert!(
        reclaimed * 2 > capacity,
        "the heap was recycled: reclaimed {reclaimed} vs capacity {capacity}"
    );
}

#[test]
fn census_and_relane_consistency_over_long_run() {
    let cfg = SystemConfig {
        speculation: true,
        policy: SchedPolicy::PriorityFirst,
        ..Default::default()
    };
    let sys = build_with_prelude("sum (map fib (range 1 9))", cfg).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 120,
            ..Default::default()
        },
    );
    gc.sys.demand_root();
    loop {
        for _ in 0..120 {
            if !gc.sys.step() {
                break;
            }
        }
        if gc.sys.result.is_some() {
            break;
        }
        let report = gc.run_cycle();
        assert!(!report.aborted, "phases complete under service ratio");
        let census = dgr::gc::classify_pending_tasks(&gc.sys);
        assert_eq!(census.dangling, 0, "no pending task targets a freed vertex");
        if gc.sys.events() > 2_000_000 {
            panic!("did not converge");
        }
    }
    assert_eq!(gc.sys.result, Some(Value::Int(88)));
}

#[test]
fn deadlock_recovery_never_misfires_on_live_programs() {
    // Regression: with recovery enabled, deadlock detection must not
    // poison a healthy program on any schedule. Historical bugs here:
    // value-referenced thunks over-promoted into R_v, expansion coloring
    // fresh bodies vital, and asynchronous M_T tracing racing with
    // completions that drain `requested` chains.
    for seed in 0..12 {
        let cfg = SystemConfig {
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        let (out, _) = run_gc(
            "sum (map fib (range 1 10))",
            true,
            cfg,
            GcConfig {
                period: 250,
                deadlock_recovery: true,
                ..Default::default()
            },
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(143)), "seed {seed}");
    }
    // And the genuinely deadlocked program is still recovered.
    let (out, gc) = run_gc(
        "let rec x = x + 1 in x",
        false,
        SystemConfig::default(),
        GcConfig {
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    assert_eq!(out, RunOutcome::Value(Value::Bottom));
    assert!(gc.stats().deadlocks_total > 0);
}
