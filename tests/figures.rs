//! Every figure of the paper as an executable scenario.

use dgr::graph::{
    oracle, GraphStore, NodeLabel, PrimOp, RequestKind, Requester, Slot, TaskClass, TaskEndpoints,
};
use dgr::marking::driver::{run_mark1, run_mark2, run_mark3, MarkRunConfig};
use dgr::prelude::*;

/// Figure 3-1: the deadlocked computation `x = x + 1`.
///
/// `x ∈ args(x)`, so x awaits its own value; once task activity ceases,
/// `x ∈ R_v − T = DL_v`.
#[test]
fn figure_3_1_deadlock() {
    // Static characterization (Property 2').
    let mut g = GraphStore::with_capacity(4);
    let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
    let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
    g.connect(x, x);
    g.vertex_mut(x)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(x, one);
    g.vertex_mut(x)
        .set_request_kind(1, Some(RequestKind::Vital));
    g.set_root(x);
    let o = oracle::Oracle::compute(&g, &TaskEndpoints::new());
    assert!(o.deadlocked.contains(x));

    // Dynamic detection: the same graph arises from the source program,
    // the system drains, and the M_T-then-M_R cycle finds the deadlock.
    let sys = dgr::lang::build_system("let rec x = x + 1 in x", SystemConfig::default()).unwrap();
    let mut gc = dgr::gc::GcDriver::new(sys, dgr::gc::GcConfig::default());
    assert_eq!(gc.run(), RunOutcome::Quiescent);
    assert!(!gc.last_report().deadlocked.is_empty());

    // Recovery (footnote 5): returning ⊥ unblocks the requesters.
    let sys = dgr::lang::build_system("let rec x = x + 1 in x", SystemConfig::default()).unwrap();
    let mut gc = dgr::gc::GcDriver::new(
        sys,
        dgr::gc::GcConfig {
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    assert_eq!(gc.run(), RunOutcome::Value(Value::Bottom));
}

/// Figure 3-2: vital, eager, irrelevant and reserve tasks, frozen at the
/// moment the figure depicts.
///
/// The expression is `if p then d else c, where p = if true then (a+1)
/// else (a+b+c)`. The lower `if` eagerly requested its branches, then
/// found its predicate true: `(a+1)` implicitly became vital, the
/// `(a+b+c)` branch was dereferenced. The task bound for `(a+1)` is now
/// VITAL, a task in the dereferenced subgraph is IRRELEVANT, a task bound
/// for the speculated `d` is EAGER, and a task bound for `c` — dropped by
/// the dereference but still an (unrequested) argument of the upper `if`
/// — is RESERVE.
#[test]
fn figure_3_2_task_taxonomy() {
    let mut g = GraphStore::with_capacity(16);
    let a = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let b = g.alloc(NodeLabel::lit_int(2)).unwrap();
    let c = g.alloc(NodeLabel::lit_int(3)).unwrap();
    let d = g.alloc(NodeLabel::lit_int(4)).unwrap();
    let plus1 = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap(); // a + 1
    let plus2 = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap(); // a + b (+ c)
    let plus3 = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap(); // (a+b) + c
    let p = g.alloc(NodeLabel::If).unwrap();
    let z = g.alloc(NodeLabel::If).unwrap(); // the upper if (root)

    // plus1 = a + 1, vitally in progress.
    g.connect(plus1, a);
    g.vertex_mut(plus1)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(plus1, one);
    g.vertex_mut(plus1)
        .set_request_kind(1, Some(RequestKind::Vital));

    // plus3 = plus2 + c, the dereferenced else-branch (no incoming arcs
    // from p anymore). Its own sub-requests are still recorded.
    g.connect(plus2, a);
    g.connect(plus2, b);
    g.vertex_mut(plus2)
        .set_request_kind(1, Some(RequestKind::Vital));
    g.connect(plus3, plus2);
    g.vertex_mut(plus3)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(plus3, c);

    // p: predicate resolved true; plus1 upgraded to vital; plus3 arc
    // dereferenced (gone).
    g.connect(p, plus1);
    g.vertex_mut(p)
        .set_request_kind(0, Some(RequestKind::Vital));

    // z: if p then d else c — p vital, d speculated eagerly, c not (yet)
    // requested.
    g.connect(z, p);
    g.vertex_mut(z)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(z, d);
    g.vertex_mut(z)
        .set_request_kind(1, Some(RequestKind::Eager));
    g.connect(z, c);
    g.vertex_mut(p).add_requester(Requester::Vertex(z));
    g.set_root(z);

    // The four outstanding tasks of the figure.
    let mut tasks = TaskEndpoints::new();
    tasks.push_task(Some(p), plus1); // in quest of the now-vital branch
    tasks.push_task(Some(z), d); // the speculation on d
    tasks.push_task(Some(plus3), b); // deep inside the dereferenced region
    tasks.push_task(Some(plus3), c); // spawned by the dead region toward shared c

    let o = oracle::Oracle::compute(&g, &tasks);
    assert_eq!(o.classify_task(&g, plus1), TaskClass::Vital, "Property 3");
    assert_eq!(o.classify_task(&g, d), TaskClass::Eager, "Property 4");
    assert_eq!(o.classify_task(&g, c), TaskClass::Reserve, "Property 5");
    assert_eq!(o.classify_task(&g, b), TaskClass::Irrelevant, "Property 6");
    assert_eq!(o.classify_task(&g, plus3), TaskClass::Irrelevant);

    // And the full cycle agrees once run over the same graph.
    run_mark3(&mut g, &tasks, &MarkRunConfig::default());
    run_mark2(&mut g, &MarkRunConfig::default());
    assert_eq!(
        dgr::gc::classify_pending_tasks(&System::new(
            g.clone(),
            TemplateStore::new(),
            SystemConfig::default()
        ))
        .total(),
        0,
        "census counts only the system's own pools"
    );
    use dgr::gc::classify_task_by_marks as by_marks;
    assert_eq!(by_marks(&g, plus1), TaskClass::Vital);
    assert_eq!(by_marks(&g, d), TaskClass::Eager);
    assert_eq!(by_marks(&g, c), TaskClass::Reserve);
    assert_eq!(by_marks(&g, b), TaskClass::Irrelevant);
}

/// Figure 3-3: the Venn relationships among R_v, R_e, R_r, GAR, F, T.
#[test]
fn figure_3_3_venn_relationships() {
    for seed in 0..50 {
        let mut g = dgr::workloads::graphs::random_digraph(300, 2.5, seed);
        dgr::workloads::graphs::sprinkle_request_kinds(&mut g, 0.3, 0.3, seed + 1);
        // Random free vertices and task seeds. A real system only frees
        // unreferenced vertices; scrub in-arcs first, as restructuring
        // would.
        let frees: Vec<_> = g.live_ids().skip(200).take(30).collect();
        for victim in frees {
            for v in g.live_ids().collect::<Vec<_>>() {
                while g.disconnect(v, victim) {}
                g.remove_requester(v, victim.into());
            }
            g.free(victim);
        }
        let tasks: TaskEndpoints = g.live_ids().take(10).collect();
        let o = oracle::Oracle::compute(&g, &tasks);

        let rv = o.priority_class(Priority::Vital);
        let re = o.priority_class(Priority::Eager);
        let rr = o.priority_class(Priority::Reserve);
        // R_v ∪ R_e ∪ R_r = R, pairwise disjoint (priority is a function).
        assert_eq!(rv.len() + re.len() + rr.len(), o.r.len(), "seed {seed}");
        for v in o.r.iter() {
            assert!(o.prior[v.index()].is_some());
        }
        // GAR disjoint from R and from F.
        for v in o.garbage.iter() {
            assert!(!o.r.contains(v) && !g.is_free(v), "seed {seed}");
        }
        // DL_v = R_v − T.
        for v in o.deadlocked.iter() {
            assert!(rv.contains(v) && !o.t.contains(v), "seed {seed}");
        }
        // Everything is in exactly one of R / GAR / F.
        for v in g.ids() {
            let in_r = o.r.contains(v);
            let in_gar = o.garbage.contains(v);
            let in_f = g.is_free(v);
            assert_eq!(
                usize::from(in_r) + usize::from(in_gar) + usize::from(in_f),
                1,
                "seed {seed}, vertex {v}"
            );
        }
    }
}

/// Figure 4-1: the simplified marking algorithm marks exactly `R`.
#[test]
fn figure_4_1_simplified_marking() {
    for seed in 0..10 {
        let mut g = dgr::workloads::graphs::random_digraph(500, 3.0, seed);
        let want = oracle::reachable_r(&g);
        let cfg = MarkRunConfig {
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            check_invariants: seed < 3, // expensive; spot-check
            ..Default::default()
        };
        run_mark1(&mut g, &cfg);
        for v in g.live_ids() {
            assert_eq!(
                want.contains(v),
                g.vertex(v).mr.is_marked(),
                "seed {seed}, vertex {v}"
            );
        }
    }
}

/// Figure 4-2: the cooperating mutator primitives under the canonical
/// lost-vertex interleaving (a→b→c; connect a→c, delete b→c while the
/// mark for b is in flight).
#[test]
fn figure_4_2_cooperating_mutators() {
    use dgr::graph::MarkParent;
    use dgr::marking::{coop, handle_mark, MarkMsg, MarkState, RMode};

    for coop_on in [true, false] {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(7)).unwrap();
        g.connect(a, b);
        g.connect(b, c);
        g.set_root(a);

        let mut state = MarkState::new();
        state.cooperation_enabled = coop_on;
        state.begin_r(RMode::Simple);
        let mut pending = Vec::new();
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: a,
                par: MarkParent::RootPar,
            },
            &mut |m| pending.push(m),
        );
        // The mutations race ahead of the in-flight mark for b.
        coop::add_reference(&mut state, &mut g, a, b, c, &mut |m| pending.push(m)).unwrap();
        coop::delete_reference(&mut g, b, c);
        while let Some(m) = pending.pop() {
            let mut buf = Vec::new();
            handle_mark(&mut state, &mut g, m, &mut |m| buf.push(m));
            pending.extend(buf);
        }
        assert!(state.r_done);
        assert_eq!(
            g.vertex(c).mr.is_marked(),
            coop_on,
            "c survives iff the mutator cooperates"
        );
    }
}

/// Figures 5-1/5-2: `M_R` assigns the max-over-paths of min-over-arcs
/// priority, upgrading on higher-priority re-marks.
#[test]
fn figure_5_1_priority_marking() {
    for seed in 0..10 {
        let mut g = dgr::workloads::graphs::shared_dag(5, 4);
        dgr::workloads::graphs::sprinkle_request_kinds(&mut g, 0.4, 0.4, seed);
        let want = oracle::priorities(&g);
        let cfg = MarkRunConfig {
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        run_mark2(&mut g, &cfg);
        for v in g.live_ids() {
            let got = g.vertex(v).mr.is_marked().then(|| g.vertex(v).mr.prior);
            assert_eq!(got, want[v.index()], "seed {seed}, vertex {v}");
        }
        dgr::marking::invariants::check_priority_closure(&g).unwrap();
    }
}

/// Figure 5-3: `M_T` marks exactly the task-reachable set, tracing
/// `requested(v) ∪ (args(v) − req-args(v))` from the virtual task roots.
#[test]
fn figure_5_3_task_marking() {
    for seed in 0..10 {
        let mut g = dgr::workloads::graphs::random_digraph(400, 2.5, seed);
        dgr::workloads::graphs::sprinkle_request_kinds(&mut g, 0.3, 0.2, seed);
        // Mirror some request arcs with requester back-pointers, as the
        // engine would.
        let ids: Vec<_> = g.live_ids().collect();
        for &v in &ids {
            let reqs: Vec<_> = v_requested_args(&g, v);
            for c in reqs {
                g.vertex_mut(c).add_requester(Requester::Vertex(v));
            }
        }
        let tasks: TaskEndpoints = ids.iter().copied().step_by(37).collect();
        let want = oracle::reachable_t(&g, &tasks);
        run_mark3(&mut g, &tasks, &MarkRunConfig::default());
        for v in g.live_ids() {
            assert_eq!(
                want.contains(v),
                g.vertex(v).slot(Slot::T).is_marked(),
                "seed {seed}, vertex {v}"
            );
        }
    }
}

fn v_requested_args(g: &GraphStore, v: dgr::graph::VertexId) -> Vec<dgr::graph::VertexId> {
    g.vertex(v).req_args().collect()
}
