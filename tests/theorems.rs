//! Empirical checks of the correctness results of Section 5.4: the
//! marking processes run concurrently with adversarial mutation streams,
//! and the theorems' containments are asserted against oracle snapshots
//! taken at the paper's time points (`t_a` = M_T begins, `t_b` = M_R
//! begins, `t_c` = M_R ends).

use dgr::graph::{oracle, MarkParent, PartitionMap, PartitionStrategy, Slot, VertexSet};
use dgr::marking::driver::{reset_slot, route};
use dgr::marking::{handle_mark, MarkMsg, MarkState, RMode};
use dgr::prelude::*;
use dgr::sim::{DetSim, SchedPolicy};
use dgr::workloads::churn::{churn_trace, ChurnOp, ChurnReplayer};

/// Drives one marking pass to completion over a churning graph: every
/// `period` marking events, one churn operation is applied through the
/// cooperating hooks. Returns the oracle's garbage set at pass end.
fn marked_pass_with_churn(
    rep: &mut ChurnReplayer,
    state: &mut MarkState,
    ops: &mut std::vec::IntoIter<ChurnOp>,
    period: u64,
    seed: u64,
    slot: Slot,
) {
    let partition = PartitionMap::new(4, rep.g.capacity().max(1), PartitionStrategy::Modulo);
    let mut sim: DetSim<MarkMsg> = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
    match slot {
        Slot::R => {
            reset_slot(&mut rep.g, Slot::R);
            state.begin_r(RMode::Priority);
            let root = rep.g.root().unwrap();
            sim.send(route(
                &partition,
                MarkMsg::Mark2 {
                    v: root,
                    par: MarkParent::RootPar,
                    prior: Priority::Vital,
                },
            ));
        }
        Slot::T => {
            reset_slot(&mut rep.g, Slot::T);
            // A quiescent replayer has no tasks: seed nothing.
            state.begin_t(0);
        }
    }
    let mut events = 0u64;
    let mut buf = Vec::new();
    while let Some((_pe, _lane, msg)) = sim.next_event() {
        handle_mark(state, &mut rep.g, msg, &mut |m| buf.push(m));
        for m in buf.drain(..) {
            sim.send(route(&partition, m));
        }
        events += 1;
        if events.is_multiple_of(period) {
            if let Some(op) = ops.next() {
                let mut coop_buf = Vec::new();
                rep.apply(op, state, &mut |m| coop_buf.push(m));
                for m in coop_buf {
                    sim.send(route(&partition, m));
                }
            }
        }
    }
    match slot {
        Slot::R => {
            assert!(state.r_done, "M_R drained without done");
            state.end_r();
        }
        Slot::T => {
            assert!(state.t_done);
            state.end_t();
        }
    }
}

/// Theorem 1: `GAR(t_b) ⊆ GAR'(t_c) ⊆ GAR(t_c)` — everything that was
/// garbage when `M_R` began is identified, and nothing is erroneously
/// identified, even though clusters keep being attached and dropped
/// throughout the pass.
#[test]
fn theorem_1_garbage_containments() {
    for seed in 0..15 {
        let mut rep = ChurnReplayer::new(512);
        let mut state = MarkState::new();
        let mut quiet = |_m: MarkMsg| {};
        // Pre-populate.
        for op in churn_trace(150, 4, 0.4, 0.5, seed) {
            rep.apply(op, &mut state, &mut quiet);
        }
        // t_b snapshot.
        let reach_tb = oracle::reachable_r(&rep.g);
        let gar_tb = oracle::garbage(&rep.g, &reach_tb);

        // Run M_R with churn interleaved.
        let mut ops = churn_trace(60, 4, 0.4, 0.5, seed + 1000).into_iter();
        marked_pass_with_churn(&mut rep, &mut state, &mut ops, 5, seed, Slot::R);

        // t_c snapshot.
        let reach_tc = oracle::reachable_r(&rep.g);
        let gar_tc = oracle::garbage(&rep.g, &reach_tc);
        let gar_marked: VertexSet = rep
            .g
            .live_ids()
            .filter(|&v| !rep.g.vertex(v).mr.is_marked())
            .collect();

        for v in gar_tb.iter() {
            assert!(
                gar_marked.contains(v) || rep.g.is_free(v),
                "seed {seed}: garbage at t_b must be identified ({v})"
            );
        }
        for v in gar_marked.iter() {
            assert!(
                gar_tc.contains(v),
                "seed {seed}: {v} identified as garbage but live at t_c"
            );
        }
        // Axiom 3 sanity: garbage only grew (moves aside, drops only add).
        for v in gar_tb.iter() {
            assert!(gar_tc.contains(v) || rep.g.is_free(v), "seed {seed}");
        }
    }
}

/// Theorem 2: `DL_v(t_a) ⊆ DL'_v(t_c) ⊆ DL_v(t_c)` with `M_T` before
/// `M_R`, on graphs mixing a live region, garbage, and genuinely
/// deadlocked vital cycles.
#[test]
fn theorem_2_deadlock_containments() {
    use dgr::graph::{GraphStore, NodeLabel, PrimOp, RequestKind, TaskEndpoints};
    use dgr::marking::driver::{run_mark2, run_mark3, MarkRunConfig};

    for seed in 0..15 {
        // Build: root vitally reaches a deadlocked cycle and a healthy
        // in-progress computation with one pending task.
        let mut g = GraphStore::with_capacity(64);
        let root = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        // Deadlocked region: x = x + k (cycle of length seed%3+1).
        let n = (seed % 3 + 1) as usize;
        let cyc: Vec<_> = (0..n)
            .map(|_| g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap())
            .collect();
        for i in 0..n {
            g.connect(cyc[i], cyc[(i + 1) % n]);
            g.vertex_mut(cyc[i])
                .set_request_kind(0, Some(RequestKind::Vital));
        }
        g.connect(root, cyc[0]);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        // Healthy region: an in-progress strict op with a pending task.
        let busy = g.alloc(NodeLabel::Prim(PrimOp::Neg)).unwrap();
        let leaf = g.alloc(NodeLabel::lit_int(5)).unwrap();
        g.connect(busy, leaf);
        g.vertex_mut(busy)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(root, busy);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.vertex_mut(leaf)
            .add_requester(dgr::graph::Requester::Vertex(busy));
        g.set_root(root);
        let mut tasks = TaskEndpoints::new();
        tasks.push_task(Some(busy), leaf);

        // t_a snapshot.
        let o_ta = oracle::Oracle::compute(&g, &tasks);
        assert!(!o_ta.deadlocked.is_empty(), "cycle is deadlocked");
        assert!(!o_ta.deadlocked.contains(busy) && !o_ta.deadlocked.contains(leaf));

        let cfg = MarkRunConfig {
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        run_mark3(&mut g, &tasks, &cfg);
        run_mark2(&mut g, &cfg);
        let flagged = dgr::gc::deadlocked_vertices(&g);

        // t_c snapshot (graph unchanged here).
        let o_tc = oracle::Oracle::compute(&g, &tasks);
        for v in o_ta.deadlocked.iter() {
            assert!(flagged.contains(&v), "seed {seed}: {v} missed");
        }
        for &v in &flagged {
            assert!(
                o_tc.deadlocked.contains(v),
                "seed {seed}: {v} false positive"
            );
        }
    }
}

/// Lemma 1 / Lemma 3 (safety) under mutation: nothing that was garbage
/// before marking began is ever marked by `M_R`.
#[test]
fn lemma_1_safety_under_mutation() {
    for seed in 20..30 {
        let mut rep = ChurnReplayer::new(512);
        let mut state = MarkState::new();
        let mut quiet = |_m: MarkMsg| {};
        for op in churn_trace(120, 5, 0.5, 0.5, seed) {
            rep.apply(op, &mut state, &mut quiet);
        }
        let reach = oracle::reachable_r(&rep.g);
        let gar_tb = oracle::garbage(&rep.g, &reach);

        let mut ops = churn_trace(40, 5, 0.5, 0.5, seed + 500).into_iter();
        marked_pass_with_churn(&mut rep, &mut state, &mut ops, 3, seed, Slot::R);

        for v in gar_tb.iter() {
            assert!(
                !rep.g.vertex(v).mr.is_marked(),
                "seed {seed}: pre-existing garbage {v} was marked"
            );
        }
    }
}
