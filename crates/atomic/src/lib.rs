//! The atomics facade the lock-free substrate is generic over.
//!
//! `crates/sim`'s deque/mailbox/quiescence modules and `crates/graph`'s
//! mark-word array are written against the traits here instead of
//! `std::sync::atomic` directly. Production code monomorphizes to
//! [`StdAtomics`], whose associated types *are* the `std` atomic types —
//! the facade compiles away completely (pinned by the zero-cost proof in
//! `crates/check/tests/zero_cost_facade.rs`, TypeId-level, in the style of
//! `telemetry_off.rs`). The deterministic weak-memory model checker in
//! `dgr-check` instantiates the same code with its `ShimAtomics`, whose
//! operations go through a per-location store-buffer model and a
//! controlled scheduler, so orderings weaker than what the host CPU
//! exhibits are actually explored.
//!
//! Two extra hooks exist purely for the checker's mutation harness:
//!
//! * [`Atomics::remap`] lets a shim weaken the memory ordering at one
//!   named [`Site`] (e.g. turn the mark-word claim CAS Relaxed) — the
//!   production implementation returns the default unchanged, which
//!   const-folds to the literal;
//! * [`Atomics::mutated`] guards seeded *code-motion* bugs (e.g.
//!   publishing the parent word before the claim CAS) — the production
//!   implementation is a constant `false`, so the buggy branch is dead
//!   code outside the checker.
//!
//! The facade deliberately re-exports [`Ordering`] so shimmed modules
//! never need to name `std::sync::atomic` at all; `dgr-check`'s lint pass
//! flags any raw use inside them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

pub use std::sync::atomic::Ordering;

/// A named atomic-operation site the mutation harness can weaken.
///
/// Each variant corresponds to one seeded ordering bug in
/// `dgr-check --atomics`; the production [`StdAtomics`] ignores them all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `MarkWords::try_claim`'s claim CAS success ordering (AcqRel — the
    /// Release half is what publishes the claimer's prior writes to
    /// workers that settle duplicate visits on a lock-free probe).
    MwClaimCas,
    /// `MarkWords::try_claim`'s parent-word publish. The seeded mutation
    /// moves it *before* the claim CAS, re-pinning PR 6's parent-clobber
    /// race (a losing claimant overwrites the winner's parent).
    MwParentPublish,
    /// `StealDeque::push`'s bottom publish (Release — pairs with the
    /// thief's bottom load so the cell write is visible before the index).
    DequeBottomPublish,
    /// `StealDeque::pop`'s bottom decrement (SeqCst — one half of the
    /// Chase–Lev store/load pair that decides the last-element race).
    DequeLastElem,
    /// The SPSC mailbox ring's tail publish (Release — without it the
    /// consumer can observe a fresh tail while the head-of-ring cell it
    /// guards is still stale).
    MailboxTailPublish,
    /// The quiescence counter's release decrement (AcqRel — the chain
    /// that makes every worker's effects visible to whoever observes
    /// zero). The seeded mutation relaxes it: a premature decrement whose
    /// effects quiescence no longer covers.
    QuiesceRelease,
}

impl Site {
    /// Short stable name for reports and schedules.
    pub fn name(self) -> &'static str {
        match self {
            Site::MwClaimCas => "mw-claim-cas-relaxed",
            Site::MwParentPublish => "mw-parent-before-claim",
            Site::DequeBottomPublish => "deque-bottom-no-release",
            Site::DequeLastElem => "deque-last-elem-no-seqcst",
            Site::MailboxTailPublish => "mailbox-stale-head",
            Site::QuiesceRelease => "quiesce-premature-release",
        }
    }
}

/// API surface of an atomic `u64` the substrate uses.
pub trait AtomicU64Api: Debug + Default + Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: u64) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, v: u64, ord: Ordering);
    /// Strong compare-exchange.
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
    /// Weak compare-exchange (may fail spuriously).
    fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
    /// Atomic add, returning the previous value.
    fn fetch_add(&self, v: u64, ord: Ordering) -> u64;
    /// Atomic subtract, returning the previous value.
    fn fetch_sub(&self, v: u64, ord: Ordering) -> u64;
}

/// API surface of an atomic `u32` the substrate uses.
pub trait AtomicU32Api: Debug + Default + Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: u32) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> u32;
    /// Atomic store.
    fn store(&self, v: u32, ord: Ordering);
}

/// API surface of an atomic `usize` the substrate uses.
pub trait AtomicUsizeApi: Debug + Default + Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: usize) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> usize;
    /// Atomic store.
    fn store(&self, v: usize, ord: Ordering);
    /// Atomic add, returning the previous value.
    fn fetch_add(&self, v: usize, ord: Ordering) -> usize;
    /// Atomic subtract, returning the previous value.
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize;
}

/// API surface of an atomic `bool` the substrate uses.
pub trait AtomicBoolApi: Debug + Default + Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, v: bool, ord: Ordering);
}

/// The atomics family a lock-free module is generic over.
pub trait Atomics: 'static {
    /// The `u64` atomic (`std::sync::atomic::AtomicU64` in production).
    type U64: AtomicU64Api;
    /// The `u32` atomic.
    type U32: AtomicU32Api;
    /// The `usize` atomic.
    type Usize: AtomicUsizeApi;
    /// The `bool` atomic.
    type Bool: AtomicBoolApi;

    /// Mutation hook: the ordering actually used at `site`. Production
    /// returns `default` unchanged (const-foldable); the checker's shim
    /// weakens the site named by the active mutation plan.
    #[inline(always)]
    fn remap(site: Site, default: Ordering) -> Ordering {
        let _ = site;
        default
    }

    /// Mutation hook: whether the seeded code-motion bug at `site` is
    /// active. Production is a constant `false` — the guarded branch is
    /// dead code outside the checker.
    #[inline(always)]
    fn mutated(site: Site) -> bool {
        let _ = site;
        false
    }

    /// Memory fence.
    fn fence(ord: Ordering);

    /// Scheduler visibility point for spin/yield loops. A no-op in
    /// production; under the shim it is a schedule point, which is what
    /// lets the checker drive wait loops fairly.
    fn yield_now();
}

/// The production family: the associated types *are* `std`'s atomics, so
/// a `StealDeque<StdAtomics>` is bit- and code-identical to one written
/// against `std::sync::atomic` directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdAtomics;

impl Atomics for StdAtomics {
    type U64 = std::sync::atomic::AtomicU64;
    type U32 = std::sync::atomic::AtomicU32;
    type Usize = std::sync::atomic::AtomicUsize;
    type Bool = std::sync::atomic::AtomicBool;

    #[inline(always)]
    fn fence(ord: Ordering) {
        std::sync::atomic::fence(ord);
    }

    #[inline(always)]
    fn yield_now() {}
}

impl AtomicU64Api for std::sync::atomic::AtomicU64 {
    #[inline(always)]
    fn new(v: u64) -> Self {
        std::sync::atomic::AtomicU64::new(v)
    }
    #[inline(always)]
    fn load(&self, ord: Ordering) -> u64 {
        self.load(ord)
    }
    #[inline(always)]
    fn store(&self, v: u64, ord: Ordering) {
        self.store(v, ord);
    }
    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, success, failure)
    }
    #[inline(always)]
    fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange_weak(current, new, success, failure)
    }
    #[inline(always)]
    fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.fetch_add(v, ord)
    }
    #[inline(always)]
    fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        self.fetch_sub(v, ord)
    }
}

impl AtomicU32Api for std::sync::atomic::AtomicU32 {
    #[inline(always)]
    fn new(v: u32) -> Self {
        std::sync::atomic::AtomicU32::new(v)
    }
    #[inline(always)]
    fn load(&self, ord: Ordering) -> u32 {
        self.load(ord)
    }
    #[inline(always)]
    fn store(&self, v: u32, ord: Ordering) {
        self.store(v, ord);
    }
}

impl AtomicUsizeApi for std::sync::atomic::AtomicUsize {
    #[inline(always)]
    fn new(v: usize) -> Self {
        std::sync::atomic::AtomicUsize::new(v)
    }
    #[inline(always)]
    fn load(&self, ord: Ordering) -> usize {
        self.load(ord)
    }
    #[inline(always)]
    fn store(&self, v: usize, ord: Ordering) {
        self.store(v, ord);
    }
    #[inline(always)]
    fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.fetch_add(v, ord)
    }
    #[inline(always)]
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.fetch_sub(v, ord)
    }
}

impl AtomicBoolApi for std::sync::atomic::AtomicBool {
    #[inline(always)]
    fn new(v: bool) -> Self {
        std::sync::atomic::AtomicBool::new(v)
    }
    #[inline(always)]
    fn load(&self, ord: Ordering) -> bool {
        self.load(ord)
    }
    #[inline(always)]
    fn store(&self, v: bool, ord: Ordering) {
        self.store(v, ord);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_family_is_stds_types() {
        use std::any::TypeId;
        assert_eq!(
            TypeId::of::<<StdAtomics as Atomics>::U64>(),
            TypeId::of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            TypeId::of::<<StdAtomics as Atomics>::Bool>(),
            TypeId::of::<std::sync::atomic::AtomicBool>()
        );
        assert_eq!(std::mem::size_of::<StdAtomics>(), 0);
    }

    #[test]
    fn production_hooks_are_inert() {
        for site in [
            Site::MwClaimCas,
            Site::MwParentPublish,
            Site::DequeBottomPublish,
            Site::DequeLastElem,
            Site::MailboxTailPublish,
            Site::QuiesceRelease,
        ] {
            assert!(!StdAtomics::mutated(site));
            for ord in [Ordering::Relaxed, Ordering::SeqCst, Ordering::AcqRel] {
                assert_eq!(StdAtomics::remap(site, ord), ord);
            }
        }
    }

    #[test]
    fn trait_ops_roundtrip() {
        let a = <StdAtomics as Atomics>::U64::new(5);
        assert_eq!(AtomicU64Api::load(&a, Ordering::SeqCst), 5);
        AtomicU64Api::store(&a, 7, Ordering::SeqCst);
        assert_eq!(AtomicU64Api::fetch_add(&a, 1, Ordering::SeqCst), 7);
        assert_eq!(
            AtomicU64Api::compare_exchange(&a, 8, 9, Ordering::SeqCst, Ordering::SeqCst),
            Ok(8)
        );
        let b = <StdAtomics as Atomics>::Usize::new(2);
        assert_eq!(AtomicUsizeApi::fetch_sub(&b, 2, Ordering::SeqCst), 2);
        let f = <StdAtomics as Atomics>::Bool::new(false);
        AtomicBoolApi::store(&f, true, Ordering::SeqCst);
        assert!(AtomicBoolApi::load(&f, Ordering::SeqCst));
    }
}
