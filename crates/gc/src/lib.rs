//! Garbage collection, deadlock detection and task management built on
//! decentralized concurrent marking — Section 5 of the paper put to work.
//!
//! The [`GcDriver`] wraps a reduction [`System`](dgr_reduction::System) and
//! repeats the paper's endless cycle:
//!
//! 1. **`M_T`** (Figure 5-3, run first per Theorem 2, and only every
//!    [`GcConfig::mt_every`] cycles per the Section 6 remark): marks every
//!    vertex task activity can reach, seeding one `mark3` per pending-task
//!    endpoint (in-transit tasks included — the simulator mailboxes are the
//!    task pools plus the network).
//! 2. **`M_R`** (Figures 5-1/5-2): marks everything reachable from the
//!    root through `args`, tagging each vertex with its priority
//!    (vital / eager / reserve).
//! 3. **Restructuring**: vertices unmarked by `M_R` are garbage
//!    (Property 1) and go back to the free list; pending tasks whose
//!    destination was reclaimed are irrelevant (Property 6) and are
//!    expunged; pending requests are re-laned to their destination's
//!    priority (the dynamic re-prioritization of Section 3.2); vertices in
//!    `R_v − T` that still have no value are reported deadlocked
//!    (Property 2'), and optionally *recovered* by returning `⊥` to their
//!    requesters (the `is-bottom` pseudo-function of footnote 5).
//!
//! Crucially, both marking phases run **concurrently with reduction**: the
//! driver keeps delivering reduction tasks between marking tasks, and the
//! cooperating mutator primitives keep the marking invariants intact.
//!
//! # Example
//!
//! ```
//! use dgr_gc::{GcConfig, GcDriver};
//! use dgr_reduction::{Builder, RunOutcome, System, SystemConfig, TemplateStore};
//! use dgr_graph::{GraphStore, PrimOp, Value};
//!
//! let mut g = GraphStore::new();
//! let mut b = Builder::new(&mut g);
//! let one = b.int(1);
//! let two = b.int(2);
//! let root = b.prim2(PrimOp::Add, one, two);
//! g.set_root(root);
//!
//! let sys = System::new(g, TemplateStore::new(), SystemConfig::default());
//! let mut gc = GcDriver::new(sys, GcConfig::default());
//! assert_eq!(gc.run(), RunOutcome::Value(Value::Int(3)));
//! // One more cycle collects the exhausted subcomputation.
//! let report = gc.run_cycle();
//! assert!(report.reclaimed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod driver;
mod report;

pub use classify::{
    classify_pending_tasks, classify_task_by_marks, deadlocked_vertices, garbage_vertices,
    TaskCensus,
};
pub use driver::{CycleOrder, GcConfig, GcDriver, GcTrigger};
pub use report::{CycleReport, GcStats};
