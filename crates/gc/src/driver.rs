//! The endless mark-and-restructure cycle, interleaved with reduction.

use std::collections::VecDeque;
use std::time::Instant;

use dgr_core::{MarkMsg, RMode};
use dgr_graph::{MarkParent, Priority, Requester, Slot, Value, VertexSet};
use dgr_reduction::{RedMsg, RunOutcome, System};
use dgr_sim::Lane;
use dgr_telemetry::{
    CounterId, CycleReport as CycleTelemetry, HeartbeatHandle, LifecycleSnapshot, LifecycleTracker,
    Phase, TriggerCause,
};

use crate::classify::{classify_pending_tasks, deadlocked_vertices, garbage_vertices};
use crate::report::{CycleReport, GcStats};

/// Bound on the per-cycle telemetry timeline kept by [`GcDriver`]:
/// long-running drivers retain the most recent this-many cycles.
pub const TIMELINE_CAP: usize = 4096;

/// Deliveries per liveness-pulse progress beat inside a marking phase:
/// batching keeps the beat (a clock read) off the per-event path while
/// staying far below any sane watchdog deadline.
const HEARTBEAT_BATCH: u64 = 256;

/// Order of the two marking phases within a cycle.
///
/// Theorem 2 requires `M_T` to execute **before** `M_R` for deadlock
/// detection to be sound; [`CycleOrder::RBeforeT`] is provided as the
/// ablation (experiment T7) demonstrating why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleOrder {
    /// The paper's order: `M_T`, then `M_R`.
    TBeforeR,
    /// The broken order, for the ablation.
    RBeforeT,
}

/// What starts a marking cycle.
///
/// The paper runs the collector "continuously"; this engine quantizes
/// that into cycles and lets the start condition couple to heap
/// pressure. The byte clock consulted is [`GraphStore::live_bytes`] —
/// always on, so pressure triggering works without the `telemetry`
/// feature.
///
/// [`GraphStore::live_bytes`]: dgr_graph::GraphStore::live_bytes
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcTrigger {
    /// Every [`GcConfig::period`] reduction events (the historical
    /// behavior, and the default).
    Period,
    /// The moment live heap bytes reach the bound. A run that never
    /// reaches it only cycles when the mutator drains.
    HeapBytes(u64),
    /// Whichever of the two fires first each inter-cycle window.
    Either(u64),
}

impl GcTrigger {
    /// The byte bound, if this trigger watches one.
    pub fn heap_bound(self) -> Option<u64> {
        match self {
            GcTrigger::Period => None,
            GcTrigger::HeapBytes(b) | GcTrigger::Either(b) => Some(b),
        }
    }

    /// Checks the trigger against the current inter-cycle window: `n`
    /// events delivered since the last cycle, `live` bytes on the heap.
    /// Returns why a cycle should start now, or `None` to keep reducing.
    /// The driver consults this only after at least one delivery, so a
    /// bound below the irreducible live set degrades to one cycle per
    /// reduction event instead of a cycle storm that starves the
    /// mutator. (Public so bench harnesses that drive cycles manually —
    /// to drain the event ring per cycle — match the driver exactly.)
    pub fn fired(self, n: u64, period: u64, live: u64) -> Option<TriggerCause> {
        match self {
            GcTrigger::Period => (n >= period).then_some(TriggerCause::Period),
            GcTrigger::HeapBytes(b) => (live >= b).then_some(TriggerCause::HeapBytes),
            GcTrigger::Either(b) => {
                if live >= b {
                    Some(TriggerCause::HeapBytes)
                } else {
                    (n >= period).then_some(TriggerCause::Period)
                }
            }
        }
    }
}

/// Configuration of the GC driver.
#[derive(Debug, Clone, PartialEq)]
pub struct GcConfig {
    /// Reduction events delivered between cycles.
    pub period: u64,
    /// What starts a cycle (see [`GcTrigger`]). [`GcTrigger::Period`]
    /// consults `period`; the byte-bound variants consult the graph's
    /// always-on live-bytes clock.
    pub trigger: GcTrigger,
    /// Run `M_T` every this many cycles (`1` = every cycle; the paper's
    /// Section 6 suggests running it only occasionally since it exists
    /// solely for deadlock detection). `0` disables `M_T` entirely.
    pub mt_every: u32,
    /// Phase order (see [`CycleOrder`]).
    pub order: CycleOrder,
    /// Return garbage to the free list.
    pub reclaim: bool,
    /// Expunge irrelevant tasks from the pools (Property 6).
    pub expunge: bool,
    /// Re-lane pending requests to their destination's priority.
    pub reprioritize: bool,
    /// Recover deadlocked vertices by returning `⊥` to their requesters
    /// (footnote 5's `is-bottom` pseudo-function).
    pub deadlock_recovery: bool,
    /// During a marking phase, deliver up to this many marking tasks for
    /// every one policy-scheduled task (the paper's Section 6 remark that
    /// marking tasks can take precedence). Guarantees marking outpaces a
    /// mutator that keeps growing the graph; `0` leaves scheduling
    /// entirely to the policy.
    pub marking_service_ratio: u32,
    /// Maximum events per marking phase before the cycle is abandoned
    /// (protects against marking chasing an unboundedly growing region).
    pub phase_budget: u64,
    /// Overall event budget for [`GcDriver::run`].
    pub max_total_events: u64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            period: 200,
            trigger: GcTrigger::Period,
            mt_every: 1,
            order: CycleOrder::TBeforeR,
            reclaim: true,
            expunge: true,
            reprioritize: true,
            deadlock_recovery: false,
            marking_service_ratio: 3,
            phase_budget: 2_000_000,
            max_total_events: 100_000_000,
        }
    }
}

/// Drives a reduction [`System`] with concurrent garbage collection, task
/// deletion, deadlock detection and dynamic task prioritization.
#[derive(Debug)]
pub struct GcDriver {
    /// The underlying system (graph, templates, simulator).
    pub sys: System,
    cfg: GcConfig,
    cycle: u32,
    stats: GcStats,
    last_report: CycleReport,
    timeline: VecDeque<CycleTelemetry>,
    heartbeat: HeartbeatHandle,
    lifecycle: LifecycleTracker,
}

impl GcDriver {
    /// Wraps a system.
    pub fn new(sys: System, cfg: GcConfig) -> Self {
        GcDriver {
            sys,
            cfg,
            cycle: 0,
            stats: GcStats::default(),
            last_report: CycleReport::default(),
            timeline: VecDeque::new(),
            heartbeat: HeartbeatHandle::default(),
            lifecycle: LifecycleTracker::new(),
        }
    }

    /// The vertex-lifecycle tracker (the feature-selected facade — a
    /// zero-sized no-op without `telemetry`). Its census runs on the same
    /// garbage set `restructure` already computes, so reclamation
    /// latencies are exact by construction.
    pub fn lifecycle(&self) -> &LifecycleTracker {
        &self.lifecycle
    }

    /// Running lifecycle totals (empty without the `telemetry` feature).
    pub fn lifecycle_snapshot(&self) -> LifecycleSnapshot {
        self.lifecycle.snapshot()
    }

    /// Attaches a liveness pulse (e.g. `ObserveHub::heartbeat_handle()`):
    /// every marking phase boundary, delivery batch and cycle completion
    /// beats it, so an external watchdog can tell a stalled wave from a
    /// long one. The default handle is the feature-selected facade — a
    /// zero-sized no-op without `telemetry` — so unattached drivers pay
    /// nothing.
    pub fn attach_heartbeat(&mut self, hb: HeartbeatHandle) {
        self.heartbeat = hb;
    }

    /// Per-cycle telemetry reports (phase wall-clock durations, message
    /// tallies, marking census), oldest first. Bounded at
    /// [`TIMELINE_CAP`] cycles: older entries are dropped. Durations and
    /// marking counts are always populated; the message counters are zero
    /// unless the `telemetry` feature is on.
    pub fn timeline(&self) -> &VecDeque<CycleTelemetry> {
        &self.timeline
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// The most recent cycle's report.
    pub fn last_report(&self) -> &CycleReport {
        &self.last_report
    }

    /// The configuration.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Demands the root and runs reduction with periodic GC cycles until
    /// the result arrives, the system is quiescent, or the budget runs
    /// out.
    pub fn run(&mut self) -> RunOutcome {
        self.sys.demand_root();
        self.run_more()
    }

    /// Continues running without demanding the root again.
    pub fn run_more(&mut self) -> RunOutcome {
        loop {
            let mut n = 0;
            let mut cause = None;
            while self.sys.result.is_none() {
                // Consult the trigger only after a delivery: a byte bound
                // the collector cannot get back under must still let the
                // mutator make progress between cycles.
                if n > 0 {
                    cause = self
                        .cfg
                        .trigger
                        .fired(n, self.cfg.period, self.sys.graph.live_bytes());
                    if cause.is_some() {
                        break;
                    }
                }
                if !self.sys.step() {
                    break;
                }
                n += 1;
            }
            if let Some(v) = &self.sys.result {
                return RunOutcome::Value(v.clone());
            }
            let was_quiescent = self.sys.sim().is_empty();
            // A drained mutator still gets its cycle (quiescence and
            // deadlock detection need one); charge it to the period.
            self.run_cycle_as(cause.unwrap_or(TriggerCause::Period));
            if let Some(v) = &self.sys.result {
                return RunOutcome::Value(v.clone());
            }
            if was_quiescent && self.sys.sim().is_empty() {
                // No tasks before the cycle, none created by it (no
                // recovery): the computation is over without a result.
                return RunOutcome::Quiescent;
            }
            if self.sys.events() >= self.cfg.max_total_events {
                return RunOutcome::Budget;
            }
        }
    }

    /// Runs one complete mark-and-restructure cycle, concurrently with any
    /// pending reduction work. Returns the cycle's report. A directly
    /// invoked cycle is charged to the period trigger.
    pub fn run_cycle(&mut self) -> CycleReport {
        self.run_cycle_as(TriggerCause::Period)
    }

    /// [`run_cycle`](Self::run_cycle), tagged with what started it. The
    /// cause lands in the heap tracker's tallies and the per-cycle
    /// `hp_cause` instant.
    pub fn run_cycle_as(&mut self, cause: TriggerCause) -> CycleReport {
        self.cycle += 1;
        self.sys.heap_tracker_mut().record_trigger(cause);
        // Flow events recorded during this cycle's marking waves carry
        // the cycle number, so a trace analyzer can group the wave DAG
        // per cycle.
        self.sys.set_telemetry_cycle(self.cycle);
        let mut report = CycleReport {
            cycle: self.cycle,
            ..Default::default()
        };
        let run_mt = self.cfg.mt_every > 0 && (self.cycle - 1).is_multiple_of(self.cfg.mt_every);
        report.ran_mt = run_mt;
        let cycle_start = Instant::now();
        self.lifecycle.begin_cycle(u64::from(self.cycle));
        let snap0 = self.sys.telemetry().snapshot();
        self.sys.sim_mut().reset_lane_high_water();
        let mut telem = CycleTelemetry {
            cycle: self.cycle,
            ran_mt: run_mt,
            ..Default::default()
        };
        self.sys
            .telemetry()
            .begin(0, self.cycle, Phase::Gc, "cycle");
        // Both marking processes stay *in force* (mutator cooperation
        // active) until restructuring completes: a vertex allocated and
        // spliced in after a process's `done` fired must still be colored,
        // or it would be misread as garbage (the paper's Lemma 1 argument
        // relies on axiom 2 "also applying after t_c").
        // Marking-lane deliveries per phase: the message-complexity split
        // the lifecycle meters charge (`report.mark_events` accumulates
        // across phases, so the deltas bracket each timed phase exactly).
        let mut lc_mt = 0u64;
        let mut lc_mr = 0u64;
        match self.cfg.order {
            CycleOrder::TBeforeR => {
                if run_mt {
                    let before = report.mark_events;
                    telem.mt_us = self.timed_phase(Phase::Mt, "M_T", &mut report, Self::phase_t);
                    lc_mt = report.mark_events - before;
                }
                if !report.aborted {
                    let before = report.mark_events;
                    telem.mr_us = self.timed_phase(Phase::Mr, "M_R", &mut report, Self::phase_r);
                    lc_mr = report.mark_events - before;
                }
            }
            CycleOrder::RBeforeT => {
                let before = report.mark_events;
                telem.mr_us = self.timed_phase(Phase::Mr, "M_R", &mut report, Self::phase_r);
                lc_mr = report.mark_events - before;
                if run_mt && !report.aborted {
                    let before = report.mark_events;
                    telem.mt_us = self.timed_phase(Phase::Mt, "M_T", &mut report, Self::phase_t);
                    lc_mt = report.mark_events - before;
                }
            }
        }
        // Cooperation during the later phase may have retracted the earlier
        // phase's `done` flag (orphan marks hung on the virtual roots);
        // settle both before reading the marks.
        if !report.aborted {
            self.sys
                .telemetry()
                .begin(0, self.cycle, Phase::Mr, "settle");
            self.heartbeat.begin_phase(self.cycle, Phase::Mr);
            let t = Instant::now();
            let before = report.mark_events;
            self.drive_phase(&mut report, |s| {
                s.mark_state.r_done && (!run_mt || s.mark_state.t_done)
            });
            lc_mr += report.mark_events - before;
            telem.settle_us = t.elapsed().as_micros() as u64;
            self.heartbeat.end_phase();
            self.sys.telemetry().end(0, self.cycle, Phase::Mr, "settle");
        }
        if !report.aborted {
            self.sys
                .telemetry()
                .begin(0, self.cycle, Phase::Classify, "restructure");
            let t = Instant::now();
            self.restructure(&mut report, run_mt);
            telem.restructure_us = t.elapsed().as_micros() as u64;
            self.sys
                .telemetry()
                .end(0, self.cycle, Phase::Classify, "restructure");
        }
        // M_R marks survive until the next cycle's reset: tally them by
        // priority for the timeline (index 0 = vital / priority 3).
        for v in self.sys.graph.live_ids() {
            let s = self.sys.graph.mark(v, Slot::R);
            if s.is_marked() {
                telem.marked_by_priority[3 - s.prior as usize] += 1;
            }
        }
        self.sys.mark_state.end_r();
        self.sys.mark_state.end_t();
        self.sys.telemetry().end(0, self.cycle, Phase::Gc, "cycle");
        telem.total_us = cycle_start.elapsed().as_micros() as u64;
        telem.aborted = report.aborted;
        telem.mark_events = report.mark_events;
        telem.red_events_during_marking = report.reduction_events_during_marking;
        telem.marked_t = report.marked_t;
        telem.garbage = report.garbage;
        telem.irrelevant = report.census.irrelevant;
        telem.deadlocked = report.deadlocked.len();
        telem.mark_backlog_hw = self.sys.sim().stats().lane_high_water(Lane::Marking) as u64;
        let snap1 = self.sys.telemetry().snapshot();
        telem.sends_local =
            snap1.counter_total(CounterId::SendsLocal) - snap0.counter_total(CounterId::SendsLocal);
        telem.sends_remote = snap1.counter_total(CounterId::SendsRemote)
            - snap0.counter_total(CounterId::SendsRemote);
        self.emit_restructure_tallies(&mut telem, &report);
        self.close_lifecycle_cycle(&report, lc_mt, lc_mr);
        self.close_heap_cycle(cause);
        if self.timeline.len() == TIMELINE_CAP {
            self.timeline.pop_front();
        }
        self.timeline.push_back(telem);
        self.stats.absorb(&report);
        self.last_report = report.clone();
        self.heartbeat.cycle_done();
        report
    }

    /// The single emission point for the restructure tallies: the
    /// timeline fields, the per-PE counter shards and the per-cycle
    /// instants all read the same report here, so the lifecycle stamps
    /// (taken on the very same garbage set) cannot drift from the
    /// counters.
    fn emit_restructure_tallies(&self, telem: &mut CycleTelemetry, report: &CycleReport) {
        telem.reclaimed = report.reclaimed;
        telem.expunged = report.expunged;
        telem.relaned = report.relaned;
        let reg = self.sys.telemetry();
        let shard = reg.pe(0);
        shard.add(CounterId::Reclaimed, report.reclaimed as u64);
        shard.add(CounterId::Expunged, report.expunged as u64);
        shard.add(CounterId::Relaned, report.relaned as u64);
        reg.instant(
            0,
            self.cycle,
            Phase::Gc,
            "reclaimed",
            report.reclaimed as u64,
        );
        reg.instant(0, self.cycle, Phase::Gc, "expunged", report.expunged as u64);
        reg.instant(0, self.cycle, Phase::Gc, "relaned", report.relaned as u64);
    }

    /// Closes the cycle's lifecycle ledger and emits the per-cycle `lc_*`
    /// instants an offline analyzer (`dgr-trace lifecycle`) folds back
    /// into the float/latency/message-cost table. An aborted cycle never
    /// censused, so its ledger stays open (stamps must not be swept as
    /// resurrections) and nothing is emitted.
    fn close_lifecycle_cycle(&mut self, report: &CycleReport, lc_mt: u64, lc_mr: u64) {
        if report.aborted {
            return;
        }
        // Section 4 charges marking with O(1) messages per arc of the
        // marking tree: one mark per vertex claimed plus its return.
        // `2 × marked` is that bound in messages; the efficiency ratio
        // exposes re-marks of shared vertices and priority upgrades.
        let bound = 2 * (report.marked_r + report.marked_t) as u64;
        self.lifecycle.meter_msgs(lc_mt, lc_mr, bound);
        let lc = self.lifecycle.end_cycle();
        debug_assert!(
            !self.lifecycle.enabled() || lc.reclaimed == report.reclaimed as u64,
            "lifecycle reclaim stamps drifted from the restructure tally"
        );
        let reg = self.sys.telemetry();
        if reg.enabled() {
            reg.instant(0, self.cycle, Phase::Gc, "lc_garbage", lc.garbage);
            reg.instant(0, self.cycle, Phase::Gc, "lc_reclaimed", lc.reclaimed);
            reg.instant(0, self.cycle, Phase::Gc, "lc_exact", lc.exact);
            reg.instant(0, self.cycle, Phase::Gc, "lc_latency_sum", lc.latency_sum);
            reg.instant(0, self.cycle, Phase::Gc, "lc_float", lc.float);
            reg.instant(0, self.cycle, Phase::Gc, "lc_msgs_mt", lc.msgs_mt);
            reg.instant(0, self.cycle, Phase::Gc, "lc_msgs_mr", lc.msgs_mr);
            reg.instant(0, self.cycle, Phase::Gc, "lc_bound", lc.bound);
            // Worst-float offenders, value-packed as (vertex << 16) | age
            // (ages saturate at 0xFFFF) — `dgr-trace lifecycle` unpacks
            // the same way.
            for (idx, age) in self.lifecycle.worst_floaters(4) {
                let packed = (u64::from(idx) << 16) | age.min(0xFFFF);
                reg.instant(0, self.cycle, Phase::Gc, "lc_floater", packed);
            }
        }
    }

    /// Closes the cycle's heap window and emits the per-cycle `hp_*`
    /// instants `dgr-trace heap` folds back into the live/peak/cause
    /// table. Restructure frees the garbage set directly on the graph —
    /// bypassing dispatch — so the journal is drained here first; the
    /// window then carries every byte the cycle reclaimed.
    fn close_heap_cycle(&mut self, cause: TriggerCause) {
        self.sys.drain_heap_journal();
        let ch = self
            .sys
            .heap_tracker_mut()
            .close_cycle(u64::from(self.cycle));
        let reg = self.sys.telemetry();
        if reg.enabled() {
            reg.instant(0, self.cycle, Phase::Gc, "hp_cause", cause.code());
            reg.instant(
                0,
                self.cycle,
                Phase::Gc,
                "hp_bound",
                self.cfg.trigger.heap_bound().unwrap_or(0),
            );
            reg.instant(0, self.cycle, Phase::Gc, "hp_live", ch.live_end);
            reg.instant(0, self.cycle, Phase::Gc, "hp_peak", ch.peak);
            reg.instant(0, self.cycle, Phase::Gc, "hp_alloc_bytes", ch.alloc_bytes);
            reg.instant(0, self.cycle, Phase::Gc, "hp_freed_bytes", ch.freed_bytes);
            reg.instant(0, self.cycle, Phase::Gc, "hp_allocs", ch.allocs);
            reg.instant(0, self.cycle, Phase::Gc, "hp_frees", ch.frees);
            reg.instant(0, self.cycle, Phase::Gc, "hp_exact_bytes", ch.exact_bytes);
        }
    }

    /// Runs one marking phase wrapped in a telemetry span and a wall-clock
    /// timer; returns the elapsed microseconds.
    fn timed_phase(
        &mut self,
        phase: Phase,
        name: &'static str,
        report: &mut CycleReport,
        f: fn(&mut Self, &mut CycleReport),
    ) -> u64 {
        self.sys.telemetry().begin(0, self.cycle, phase, name);
        self.heartbeat.begin_phase(self.cycle, phase);
        let t = Instant::now();
        f(self, report);
        let us = t.elapsed().as_micros() as u64;
        self.heartbeat.end_phase();
        self.sys.telemetry().end(0, self.cycle, phase, name);
        us
    }

    /// Runs a marking phase: injects the seeds, then keeps delivering
    /// events (reduction included — the phases are concurrent) until the
    /// process signals `done` or the phase budget is exhausted.
    fn drive_phase(&mut self, report: &mut CycleReport, done: impl Fn(&System) -> bool) {
        let start_total = self.sys.sim().stats().delivered_total();
        let start_marking = self.sys.sim().stats().delivered(Lane::Marking);
        let mut events = 0u64;
        // Beat the liveness pulse in batches: one clock read per
        // HEARTBEAT_BATCH deliveries instead of per event.
        let mut beats_flushed = 0u64;
        while !done(&self.sys) {
            if events - beats_flushed >= HEARTBEAT_BATCH {
                self.heartbeat.progress(events - beats_flushed);
                beats_flushed = events;
            }
            // Priority service for marking tasks, so the wave always
            // outpaces a mutator that keeps allocating (Section 6).
            let mut progressed = false;
            for _ in 0..self.cfg.marking_service_ratio {
                if done(&self.sys) || !self.sys.step_lane(Lane::Marking) {
                    break;
                }
                progressed = true;
                events += 1;
            }
            if done(&self.sys) {
                break;
            }
            if !self.sys.step() {
                assert!(
                    done(&self.sys) || progressed,
                    "marking drained without its termination signal"
                );
                if !done(&self.sys) && !progressed {
                    break;
                }
                if done(&self.sys) {
                    break;
                }
                continue;
            }
            events += 1;
            if events >= self.cfg.phase_budget {
                report.aborted = true;
                // Drop all in-flight marking tasks; colors and counts are
                // reset at the start of the next cycle's phases.
                self.sys
                    .sim_mut()
                    .expunge(|_, _, msg| msg.as_red().is_some());
                break;
            }
        }
        if events > beats_flushed {
            self.heartbeat.progress(events - beats_flushed);
        }
        let marking = self.sys.sim().stats().delivered(Lane::Marking) - start_marking;
        report.mark_events += marking;
        report.reduction_events_during_marking +=
            (self.sys.sim().stats().delivered_total() - start_total) - marking;
    }

    fn phase_t(&mut self, report: &mut CycleReport) {
        dgr_core::driver::reset_slot(&mut self.sys.graph, Slot::T);
        // Clear the activity stamps: "touched" now means "task activity
        // at or after t_a", which the deadlock report consults.
        self.sys.graph.clear_touched();
        let seeds = self.sys.pending_task_endpoints();
        self.sys.mark_state.begin_t(seeds.seeds().len() as u32);
        for &v in seeds.seeds() {
            self.sys.send_mark(MarkMsg::Mark3 {
                v,
                par: MarkParent::TaskRootPar,
            });
        }
        // The M_T pass runs SYNCHRONOUSLY: reduction tasks queue but do
        // not execute, so T' is an exact snapshot of task reachability at
        // t_a. This is the paper's own trade — Section 6 notes M_T
        // "reduc[es] the throughput of the overall process" and recommends
        // running it only occasionally (`mt_every`). An asynchronous M_T
        // is unsound in this engine: a vertex completing mid-pass drains
        // its `requested` set, cutting the backward chain the trace
        // needed, and a passively-waiting ancestor would be misreported as
        // deadlocked. M_R, which runs every cycle, stays fully concurrent.
        let start_marking = self.sys.sim().stats().delivered(Lane::Marking);
        let mut events = 0u64;
        let mut beats_flushed = 0u64;
        while !self.sys.mark_state.t_done {
            if events - beats_flushed >= HEARTBEAT_BATCH {
                self.heartbeat.progress(events - beats_flushed);
                beats_flushed = events;
            }
            if !self.sys.step_lane(Lane::Marking) {
                assert!(
                    self.sys.mark_state.t_done,
                    "M_T drained without its termination signal"
                );
                break;
            }
            events += 1;
            if events >= self.cfg.phase_budget {
                report.aborted = true;
                self.sys
                    .sim_mut()
                    .expunge(|_, _, msg| msg.as_red().is_some());
                break;
            }
        }
        if events > beats_flushed {
            self.heartbeat.progress(events - beats_flushed);
        }
        report.mark_events += self.sys.sim().stats().delivered(Lane::Marking) - start_marking;
        report.marked_t = self
            .sys
            .graph
            .live_ids()
            .filter(|&v| self.sys.graph.mark(v, Slot::T).is_marked())
            .count();
    }

    fn phase_r(&mut self, report: &mut CycleReport) {
        dgr_core::driver::reset_slot(&mut self.sys.graph, Slot::R);
        let root = self.sys.graph.root().expect("GC needs a root");
        self.sys.mark_state.begin_r(RMode::Priority);
        self.sys.send_mark(MarkMsg::Mark2 {
            v: root,
            par: MarkParent::RootPar,
            prior: Priority::Vital,
        });
        self.drive_phase(report, |s| s.mark_state.r_done);
        report.marked_r = self
            .sys
            .graph
            .live_ids()
            .filter(|&v| self.sys.graph.mark(v, Slot::R).is_marked())
            .count();
    }

    fn restructure(&mut self, report: &mut CycleReport, ran_mt: bool) {
        report.census = classify_pending_tasks(&self.sys);
        let garbage: VertexSet = garbage_vertices(&self.sys.graph);
        report.garbage = garbage.len();
        if self.lifecycle.enabled() {
            // The lifecycle census taps the very garbage set computed
            // above — never recomputed — so the latency stamped when a
            // vertex is finally freed is exact by construction.
            for w in garbage.iter() {
                self.lifecycle.garbage_vertex(w.index());
            }
        }
        if ran_mt {
            report.deadlocked = deadlocked_vertices(&self.sys.graph);
        }

        if self.cfg.reclaim && !garbage.is_empty() {
            // Purge reclaimed requesters from live `requested` sets so no
            // value is ever returned to a recycled vertex.
            let live: Vec<_> = self
                .sys
                .graph
                .live_ids()
                .filter(|&v| !garbage.contains(v))
                .collect();
            for v in live {
                self.sys.graph.vertex_mut(v).retain_requesters(|r| match r {
                    Requester::Vertex(x) => !garbage.contains(x),
                    Requester::External => true,
                });
            }
            for w in garbage.iter() {
                self.sys.graph.free(w);
                self.lifecycle.reclaim_vertex(w.index());
            }
            report.reclaimed = garbage.len();
        }

        if self.cfg.expunge {
            // Property 6: tasks whose destination is garbage are
            // irrelevant. Tasks whose *source* is garbage are dropped too:
            // their reply targets may be recycled.
            let dead = |v: dgr_graph::VertexId| garbage.contains(v);
            report.expunged = self.sys.sim_mut().expunge(|_, _, msg| match msg.as_red() {
                Some(RedMsg::Request { src, dst, .. }) => {
                    !dead(*dst) && !src.as_vertex().is_some_and(dead)
                }
                Some(RedMsg::Return { src, dst, .. }) => {
                    !dead(*src) && !dst.as_vertex().is_some_and(dead)
                }
                None => true,
            });
        }

        if self.cfg.reprioritize {
            // Effective priority = max(fresh M_R mark, current engine
            // demand): the mark upgrades speculative work that proved
            // needed, while the demand guards against marks that are
            // stale-low for vertices demanded *during* the pass. Refresh
            // every live vertex's demand (future spawns ride the right
            // lane) and re-lane the pending tasks — the paper's dynamic
            // prioritization.
            let prio: Vec<Option<Priority>> = self
                .sys
                .graph
                .ids()
                .map(|v| {
                    let s = self.sys.graph.mark(v, Slot::R);
                    s.is_marked()
                        .then(|| s.prior.max(self.sys.graph.vertex(v).demand))
                })
                .collect();
            let live: Vec<_> = self.sys.graph.live_ids().collect();
            for v in live {
                if let Some(p) = prio[v.index()] {
                    self.sys.graph.vertex_mut(v).demand = p;
                }
            }
            report.relaned = self.sys.sim_mut().relane(|_, lane, msg| {
                if let Some(RedMsg::Request { dst, .. }) = msg.as_red() {
                    if let Some(p) = prio[dst.index()] {
                        return Lane::Reduction(p);
                    }
                }
                lane
            });
        }

        if self.cfg.deadlock_recovery {
            for &v in &report.deadlocked.clone() {
                let vert = self.sys.graph.vertex_mut(v);
                if vert.value.is_some() {
                    continue;
                }
                vert.value = Some(Value::Bottom);
                vert.replace_args(Vec::new());
                let requesters = vert.take_requested();
                for r in requesters {
                    self.sys.send_red(
                        RedMsg::Return {
                            src: v,
                            dst: r,
                            value: Value::Bottom,
                        },
                        Priority::Vital,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{GraphStore, NodeLabel, PrimOp, Template, TemplateNode, TemplateRef};
    use dgr_reduction::{Builder, SystemConfig, TemplateStore};

    /// sum(n) = if n == 0 then 0 else n + sum(n - 1).
    fn sum_templates() -> (TemplateStore, u32) {
        let mut ts = TemplateStore::new();
        let tpl = Template::new(
            "sum",
            1,
            vec![
                TemplateNode::new(
                    NodeLabel::If,
                    vec![
                        TemplateRef::Local(1),
                        TemplateRef::Local(2),
                        TemplateRef::Local(3),
                    ],
                ),
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Eq),
                    vec![TemplateRef::Param(0), TemplateRef::Local(2)],
                ),
                TemplateNode::new(NodeLabel::lit_int(0), vec![]),
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Add),
                    vec![TemplateRef::Param(0), TemplateRef::Local(4)],
                ),
                TemplateNode::new(
                    NodeLabel::Apply,
                    vec![TemplateRef::Local(5), TemplateRef::Local(6)],
                ),
                TemplateNode::new(NodeLabel::Lit(Value::Fn(0, vec![])), vec![]),
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Sub),
                    vec![TemplateRef::Param(0), TemplateRef::Local(7)],
                ),
                TemplateNode::new(NodeLabel::lit_int(1), vec![]),
            ],
        )
        .unwrap();
        let id = ts.register(tpl);
        (ts, id)
    }

    fn sum_system(n: i64, cfg: SystemConfig) -> System {
        let (ts, sum) = sum_templates();
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let f = b.fn_ref(sum);
        let arg = b.int(n);
        let root = b.apply(f, &[arg]);
        g.set_root(root);
        System::new(g, ts, cfg)
    }

    #[test]
    fn gc_collects_while_reducing() {
        let sys = sum_system(40, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 50,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Int(820)));
        assert!(gc.stats().cycles > 1, "multiple cycles ran");
        assert!(gc.stats().reclaimed_total > 0, "garbage was reclaimed");
        assert_eq!(gc.stats().aborted_cycles, 0);
        assert!(gc.sys.graph.check_consistency().is_ok());
    }

    #[test]
    fn heap_pressure_triggers_cycles_in_any_build() {
        // The pressure trigger reads the graph's always-on byte clock, so
        // it must work with telemetry compiled out. A tight bound under a
        // period far too long to ever fire: every cycle is pressure-born.
        let sys = sum_system(40, SystemConfig::default());
        let baseline_live = sys.graph.live_bytes();
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: u64::MAX,
                trigger: GcTrigger::Either(baseline_live + 64),
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Int(820)));
        assert!(
            gc.stats().cycles > 1,
            "pressure alone started {} cycles",
            gc.stats().cycles
        );
        assert!(gc.stats().reclaimed_total > 0);
    }

    #[test]
    fn an_unreachable_heap_bound_still_makes_progress() {
        // A bound below the irreducible live set: the trigger fires every
        // window, but only after at least one delivery, so the mutator
        // still reaches the value instead of starving under cycles.
        let sys = sum_system(10, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: u64::MAX,
                trigger: GcTrigger::HeapBytes(1),
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Int(55)));
    }

    #[test]
    fn tighter_heap_bounds_mean_more_cycles_and_lower_peaks() {
        // The coupling the observatory exists to measure, at unit scale:
        // tightening the byte bound trades marking work for heap headroom.
        let mut cycles = Vec::new();
        for bound in [600u64, 6_000] {
            let sys = sum_system(30, SystemConfig::default());
            let mut gc = GcDriver::new(
                sys,
                GcConfig {
                    period: u64::MAX,
                    trigger: GcTrigger::Either(bound),
                    ..Default::default()
                },
            );
            assert_eq!(gc.run(), RunOutcome::Value(Value::Int(465)));
            cycles.push(gc.stats().cycles);
        }
        assert!(cycles[0] > cycles[1], "tight bound cycled more: {cycles:?}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn heap_cycles_stamp_causes_and_instants() {
        let sys = sum_system(40, SystemConfig::default());
        let baseline_live = sys.graph.live_bytes();
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 50,
                trigger: GcTrigger::Either(baseline_live + 128),
                ..Default::default()
            },
        );
        gc.run();
        let s = gc.sys.heap_snapshot();
        assert_eq!(
            s.trigger_period + s.trigger_heap,
            u64::from(gc.stats().cycles),
            "every cycle carries exactly one cause"
        );
        assert!(s.trigger_heap > 0, "the tight bound fired at least once");
        assert_eq!(s.cycles, u64::from(gc.stats().cycles));
        // Restructure frees (which bypass dispatch) were drained into the
        // tracker: its clock agrees with the graph's.
        assert_eq!(s.live, gc.sys.graph.live_bytes());
        assert_eq!(
            s.exact_bytes, s.freed_bytes,
            "driver-attached tracker stamps every byte it frees"
        );
        let events = gc.sys.telemetry().drain_events();
        for name in [
            "hp_cause",
            "hp_bound",
            "hp_live",
            "hp_peak",
            "hp_alloc_bytes",
            "hp_freed_bytes",
            "hp_exact_bytes",
        ] {
            assert!(events.iter().any(|e| e.name == name), "missing {name}");
        }
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn heap_tracking_is_silent_feature_off() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                trigger: GcTrigger::Either(600),
                ..Default::default()
            },
        );
        gc.run();
        assert!(gc.sys.heap_snapshot().is_empty());
        assert!(!gc.sys.heap_tracker().enabled());
    }

    #[test]
    fn timeline_records_every_cycle() {
        let sys = sum_system(40, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 50,
                ..Default::default()
            },
        );
        gc.run();
        assert_eq!(gc.timeline().len(), gc.stats().cycles as usize);
        let last = gc.timeline().back().unwrap();
        assert_eq!(last.cycle, gc.stats().cycles);
        assert_eq!(last.marked_t, gc.last_report().marked_t);
        assert_eq!(last.marked_r(), gc.last_report().marked_r);
        assert_eq!(last.reclaimed, gc.last_report().reclaimed);
        assert_eq!(last.garbage, gc.last_report().garbage);
        // Marking happened, so the marking-lane backlog rose above the
        // reset point at least once in some cycle (always-on sim stats).
        assert!(gc.timeline().iter().any(|c| c.mark_backlog_hw > 0));
        // The renderers accept a live report.
        assert!(last.render_text().contains("cycle"));
        assert!(last.render_json().starts_with('{'));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn timeline_counts_messages_when_telemetry_is_on() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                ..Default::default()
            },
        );
        gc.run();
        let sends: u64 = gc
            .timeline()
            .iter()
            .map(|c| c.sends_local + c.sends_remote)
            .sum();
        assert!(sends > 0, "cycle phases attributed task sends");
        let events = gc.sys.telemetry().drain_events();
        assert!(events.iter().any(|e| e.name == "M_R"));
        assert!(events.iter().any(|e| e.name == "cycle"));
        assert!(events.iter().any(|e| e.name == "restructure"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn lifecycle_meters_reclaims_exactly() {
        let sys = sum_system(40, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 50,
                ..Default::default()
            },
        );
        gc.run();
        let s = gc.lifecycle_snapshot();
        assert_eq!(
            s.reclaimed,
            gc.stats().reclaimed_total as u64,
            "every restructure reclaim was stamped"
        );
        assert!(s.reclaimed > 0);
        assert_eq!(s.exact, s.reclaimed, "driver-attached tracker is exact");
        assert_eq!(
            s.float_now, 0,
            "an every-cycle reclaimer leaves nothing floating"
        );
        assert_eq!(s.cycles, u64::from(gc.stats().cycles));
        assert!(s.msgs_mr > 0, "M_R messages metered");
        assert!(s.bound > 0, "Section 4 bound metered");
        let events = gc.sys.telemetry().drain_events();
        assert!(events.iter().any(|e| e.name == "lc_reclaimed"));
        assert!(events.iter().any(|e| e.name == "lc_float"));
        assert!(events.iter().any(|e| e.name == "lc_msgs_mr"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn lifecycle_floats_accumulate_without_reclaim() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                reclaim: false,
                ..Default::default()
            },
        );
        gc.run();
        let s = gc.lifecycle_snapshot();
        assert_eq!(s.reclaimed, 0);
        assert!(s.float_now > 0, "garbage floats when reclaim is off");
        assert!(
            s.float_age.iter().skip(2).any(|&b| b > 0),
            "floaters aged past one cycle"
        );
        let worst = gc.lifecycle().worst_floaters(4);
        assert!(!worst.is_empty());
        assert!(worst[0].1 >= worst.last().unwrap().1, "oldest first");
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn lifecycle_is_silent_feature_off() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                ..Default::default()
            },
        );
        gc.run();
        assert!(gc.lifecycle_snapshot().is_empty());
        assert!(!gc.lifecycle().enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn attached_heartbeat_beats_through_a_run() {
        use dgr_telemetry::heartbeat::Heartbeat;
        use std::sync::Arc;
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                ..Default::default()
            },
        );
        let hb = Arc::new(Heartbeat::new());
        gc.attach_heartbeat(HeartbeatHandle::from_shared(Arc::clone(&hb)));
        gc.run();
        assert!(hb.beats() > 0, "phase boundaries beat the pulse");
        assert_eq!(hb.cycles_done(), u64::from(gc.stats().cycles));
        assert!(hb.progress_total() > 0, "deliveries beat the pulse");
        assert_eq!(hb.phase(), None, "pulse is idle once the run ends");
    }

    #[test]
    fn timeline_is_bounded_and_keeps_newest_cycles() {
        // A tiny quiescent graph so thousands of cycles stay cheap.
        let mut g = GraphStore::with_capacity(4);
        let root = g.alloc(NodeLabel::lit_int(7)).unwrap();
        g.set_root(root);
        let sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        let mut gc = GcDriver::new(sys, GcConfig::default());
        let total = (TIMELINE_CAP + 150) as u32;
        for _ in 0..total {
            gc.run_cycle();
        }
        assert_eq!(gc.timeline().len(), TIMELINE_CAP, "bound holds");
        assert_eq!(gc.stats().cycles, total, "every cycle still ran");
        let front = gc.timeline().front().unwrap();
        let back = gc.timeline().back().unwrap();
        assert_eq!(back.cycle, total, "newest cycle kept");
        assert_eq!(
            front.cycle,
            total - TIMELINE_CAP as u32 + 1,
            "oldest surviving entry is exactly CAP cycles back"
        );
        // Entries are contiguous and ordered: the ring dropped only from
        // the front.
        for (i, t) in gc.timeline().iter().enumerate() {
            assert_eq!(t.cycle, front.cycle + i as u32);
        }
    }

    #[test]
    fn result_identical_with_and_without_gc() {
        let mut plain = sum_system(25, SystemConfig::default());
        let plain_out = plain.run();
        let sys = sum_system(25, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 17,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), plain_out);
    }

    #[test]
    fn gc_with_speculation_and_random_schedules() {
        for seed in 0..6 {
            let cfg = SystemConfig {
                speculation: true,
                policy: dgr_sim::SchedPolicy::Random { marking_bias: 0.4 },
                seed,
                ..Default::default()
            };
            let sys = sum_system(15, cfg);
            let mut gc = GcDriver::new(
                sys,
                GcConfig {
                    period: 23,
                    ..Default::default()
                },
            );
            assert_eq!(gc.run(), RunOutcome::Value(Value::Int(120)), "seed {seed}");
            assert_eq!(gc.sys.stats.dangling_requests, 0, "seed {seed}");
        }
    }

    #[test]
    fn reclaimed_vertices_are_reusable() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 40,
                ..Default::default()
            },
        );
        gc.run();
        let free_after = gc.sys.graph.free_count();
        assert!(free_after > 0);
        // The root's value survives; everything else was collected.
        let root = gc.sys.graph.root().unwrap();
        assert_eq!(gc.sys.graph.vertex(root).value, Some(Value::Int(465)));
    }

    #[test]
    fn deadlock_detected_without_recovery() {
        // Figure 3-1: x = x + 1.
        let mut g = GraphStore::with_capacity(8);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.connect(x, one);
        g.set_root(x);
        let sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        let mut gc = GcDriver::new(sys, GcConfig::default());
        assert_eq!(gc.run(), RunOutcome::Quiescent);
        assert!(gc.stats().deadlocks_total > 0);
        assert!(gc.last_report().deadlocked.contains(&x));
    }

    #[test]
    fn deadlock_recovery_returns_bottom() {
        let mut g = GraphStore::with_capacity(8);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.connect(x, one);
        g.set_root(x);
        let sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                deadlock_recovery: true,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Bottom));
    }

    #[test]
    fn speculative_irrelevant_tasks_are_expunged() {
        // if true then 1 else sum(5000): the speculative else-branch
        // workload becomes irrelevant the moment the predicate chooses.
        let (ts, sum) = sum_templates();
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let p = b.bool_(true);
        let t = b.int(1);
        let f = b.fn_ref(sum);
        let n = b.int(5000);
        let e = b.apply(f, &[n]);
        let root = b.if_(p, t, e);
        g.set_root(root);
        let cfg = SystemConfig {
            speculation: true,
            ..Default::default()
        };
        let sys = System::new(g, ts, cfg);
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 30,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Int(1)));
        assert!(gc.sys.stats.dereferences > 0, "the else branch was dropped");
        // Keep collecting after the result: the orphaned speculative
        // workload is expunged rather than run to completion.
        let report = gc.run_cycle();
        assert!(
            report.expunged > 0 || gc.stats().expunged_total > 0,
            "irrelevant tasks expunged"
        );
        assert_eq!(gc.sys.stats.dangling_requests, 0);
    }

    #[test]
    fn census_sees_irrelevant_tasks_before_expunging() {
        let (ts, sum) = sum_templates();
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let p = b.bool_(true);
        let t = b.int(1);
        let f = b.fn_ref(sum);
        let n = b.int(5000);
        let e = b.apply(f, &[n]);
        let root = b.if_(p, t, e);
        g.set_root(root);
        let cfg = SystemConfig {
            speculation: true,
            ..Default::default()
        };
        let sys = System::new(g, ts, cfg);
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 500,
                reclaim: true,
                expunge: false, // watch them pile up instead
                ..Default::default()
            },
        );
        gc.run();
        let report = gc.run_cycle();
        assert!(report.census.irrelevant > 0, "census: {:?}", report.census);
    }

    #[test]
    fn mt_every_skips_task_marking() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 25,
                mt_every: 3,
                ..Default::default()
            },
        );
        gc.run();
        assert!(gc.stats().mt_cycles < gc.stats().cycles);
        assert!(gc.stats().mt_cycles >= gc.stats().cycles / 3);
    }

    #[test]
    fn wrong_phase_order_still_collects_garbage_safely() {
        let sys = sum_system(30, SystemConfig::default());
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 25,
                order: CycleOrder::RBeforeT,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), RunOutcome::Value(Value::Int(465)));
        assert!(gc.stats().reclaimed_total > 0);
    }

    #[test]
    fn reprioritize_relanes_pending_requests() {
        // A speculative branch that is then chosen: its queued tasks sit
        // in the eager lane until a cycle re-lanes them to vital.
        let (ts, sum) = sum_templates();
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let p = b.bool_(true);
        let f = b.fn_ref(sum);
        let n = b.int(2000);
        let t = b.apply(f, &[n]); // chosen branch: long computation
        let e = b.int(0);
        let root = b.if_(p, t, e);
        g.set_root(root);
        // PriorityFirst starves the eager lane, so upgraded-but-unexecuted
        // speculative requests are still pending when a cycle re-lanes
        // them — the dynamic prioritization scenario of Section 3.2.
        let cfg = SystemConfig {
            speculation: true,
            policy: dgr_sim::SchedPolicy::PriorityFirst,
            ..Default::default()
        };
        let sys = System::new(g, ts, cfg);
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 50,
                ..Default::default()
            },
        );
        let out = gc.run();
        assert_eq!(out, RunOutcome::Value(Value::Int(2001000)));
        assert!(gc.sys.stats.upgrades > 0, "eager arc upgraded to vital");
        assert!(
            gc.stats().relaned_total > 0,
            "pending eager tasks were re-laned"
        );
    }
}
