//! Per-cycle reports and aggregate GC statistics.

use dgr_graph::VertexId;
use serde::{Deserialize, Serialize};

use crate::classify::TaskCensus;

/// What one mark-and-restructure cycle did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Cycle number (1-based).
    pub cycle: u32,
    /// Whether `M_T` ran this cycle.
    pub ran_mt: bool,
    /// Vertices marked by `M_T`.
    pub marked_t: usize,
    /// Vertices marked by `M_R`.
    pub marked_r: usize,
    /// Marking-task events executed (both processes).
    pub mark_events: u64,
    /// Reduction-task events that executed *during* the marking phases
    /// (the measure of concurrency — a stop-the-world collector would have
    /// zero).
    pub reduction_events_during_marking: u64,
    /// Census of pending tasks at restructuring time.
    pub census: TaskCensus,
    /// Garbage vertices identified by the marks (counted whether or not
    /// `reclaim` is enabled).
    pub garbage: usize,
    /// Garbage vertices returned to the free list.
    pub reclaimed: usize,
    /// Irrelevant tasks expunged from the pools.
    pub expunged: usize,
    /// Pending tasks moved to a different priority lane.
    pub relaned: usize,
    /// Deadlocked vertices found (empty when `M_T` did not run).
    pub deadlocked: Vec<VertexId>,
    /// A marking phase exceeded its event budget and the cycle was
    /// abandoned without restructuring (the graph stays safe; the next
    /// cycle retries).
    pub aborted: bool,
}

/// Aggregate statistics over all cycles run so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcStats {
    /// Completed cycles.
    pub cycles: u32,
    /// Cycles in which `M_T` ran.
    pub mt_cycles: u32,
    /// Total vertices reclaimed.
    pub reclaimed_total: usize,
    /// Total irrelevant tasks expunged.
    pub expunged_total: usize,
    /// Total tasks re-laned.
    pub relaned_total: usize,
    /// Total marking events executed.
    pub mark_events_total: u64,
    /// Largest number of marking events in one cycle (the bound on how
    /// much marking work a cycle injects — the concurrent analogue of a
    /// pause).
    pub max_cycle_mark_events: u64,
    /// Total deadlocked vertices reported.
    pub deadlocks_total: usize,
    /// Cycles abandoned on phase budget.
    pub aborted_cycles: u32,
}

impl GcStats {
    /// Folds one cycle report into the aggregate.
    pub fn absorb(&mut self, r: &CycleReport) {
        self.cycles += 1;
        if r.ran_mt {
            self.mt_cycles += 1;
        }
        self.reclaimed_total += r.reclaimed;
        self.expunged_total += r.expunged;
        self.relaned_total += r.relaned;
        self.mark_events_total += r.mark_events;
        self.max_cycle_mark_events = self.max_cycle_mark_events.max(r.mark_events);
        self.deadlocks_total += r.deadlocked.len();
        if r.aborted {
            self.aborted_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = GcStats::default();
        s.absorb(&CycleReport {
            cycle: 1,
            ran_mt: true,
            reclaimed: 3,
            expunged: 2,
            mark_events: 10,
            ..Default::default()
        });
        s.absorb(&CycleReport {
            cycle: 2,
            reclaimed: 1,
            mark_events: 30,
            aborted: true,
            ..Default::default()
        });
        assert_eq!(s.cycles, 2);
        assert_eq!(s.mt_cycles, 1);
        assert_eq!(s.reclaimed_total, 4);
        assert_eq!(s.expunged_total, 2);
        assert_eq!(s.max_cycle_mark_events, 30);
        assert_eq!(s.aborted_cycles, 1);
    }
}
