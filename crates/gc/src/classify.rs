//! Interpreting marks: Properties 1–6 read off the marked graph.

use dgr_graph::{GraphStore, Priority, Slot, TaskClass, VertexId, VertexSet};
use dgr_reduction::{RedMsg, System};
use serde::{Deserialize, Serialize};

/// `GAR' = V − R' − F`: live vertices not marked by `M_R` (Property 1,
/// via Theorem 1). Valid after an `M_R` pass completes.
pub fn garbage_vertices(g: &GraphStore) -> VertexSet {
    g.live_ids()
        .filter(|&v| !g.mark(v, Slot::R).is_marked())
        .collect()
}

/// `DL'_v = R'_v − T'` (Property 2', via Theorem 2), refined twice:
/// only vertices that have not yet computed a value (a valued vertex has
/// nothing left to deadlock on), and only vertices with **no task
/// activity since the `M_T` pass began** ([`GraphStore::is_touched`]
/// false) — a vertex deadlocked before the pass by definition sees no
/// activity afterwards, while a vertex that became task-reachable
/// *during* the pass (say, a freshly expanded subgraph) is screened out
/// rather than falsely reported. Valid after an `M_T`-then-`M_R` cycle
/// completes.
pub fn deadlocked_vertices(g: &GraphStore) -> Vec<VertexId> {
    g.live_ids()
        .filter(|&v| {
            let mr = g.mark(v, Slot::R);
            mr.is_marked()
                && mr.prior == Priority::Vital
                && !g.mark(v, Slot::T).is_marked()
                && !g.is_touched(v)
                && g.vertex(v).value.is_none()
        })
        .collect()
}

/// Classifies one pending task by its destination's marks (Properties
/// 3–6).
pub fn classify_task_by_marks(g: &GraphStore, dst: VertexId) -> TaskClass {
    if g.is_free(dst) {
        return TaskClass::Dangling;
    }
    let slot = g.mark(dst, Slot::R);
    if slot.is_marked() {
        match slot.prior {
            Priority::Vital => TaskClass::Vital,
            Priority::Eager => TaskClass::Eager,
            Priority::Reserve => TaskClass::Reserve,
        }
    } else {
        TaskClass::Irrelevant
    }
}

/// A census of the pending reduction tasks by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskCensus {
    /// Tasks whose destination is in `R_v` (Property 3).
    pub vital: usize,
    /// Tasks whose destination is in `R_e − R_v` (Property 4).
    pub eager: usize,
    /// Tasks whose destination is in `R_r − R_e − R_v` (Property 5).
    pub reserve: usize,
    /// Tasks whose destination is garbage (Property 6).
    pub irrelevant: usize,
    /// Tasks whose destination is already on the free list (a bug
    /// indicator; always zero with restructuring enabled).
    pub dangling: usize,
}

impl TaskCensus {
    /// Total pending tasks.
    pub fn total(&self) -> usize {
        self.vital + self.eager + self.reserve + self.irrelevant + self.dangling
    }
}

/// Counts the pending *request* tasks of a system by class, using the
/// marks of the most recent completed `M_R` pass. (Returns are not
/// classified: they are the tail end of work already performed.)
pub fn classify_pending_tasks(sys: &System) -> TaskCensus {
    let mut census = TaskCensus::default();
    for (_pe, _lane, msg) in sys.sim().iter_pending() {
        if let Some(RedMsg::Request { dst, .. }) = msg.as_red() {
            match classify_task_by_marks(&sys.graph, *dst) {
                TaskClass::Vital => census.vital += 1,
                TaskClass::Eager => census.eager += 1,
                TaskClass::Reserve => census.reserve += 1,
                TaskClass::Irrelevant => census.irrelevant += 1,
                TaskClass::Dangling => census.dangling += 1,
            }
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_core::driver::{run_mark1, run_mark2, run_mark3, MarkRunConfig};
    use dgr_graph::{NodeLabel, PrimOp, RequestKind, TaskEndpoints};

    #[test]
    fn garbage_is_unmarked_live() {
        let mut g = GraphStore::with_capacity(4);
        let root = g.alloc(NodeLabel::If).unwrap();
        let a = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let dead = g.alloc(NodeLabel::lit_int(2)).unwrap();
        g.connect(root, a);
        g.set_root(root);
        run_mark1(&mut g, &MarkRunConfig::default());
        let gar = garbage_vertices(&g);
        assert!(gar.contains(dead));
        assert!(!gar.contains(root) && !gar.contains(a));
        assert_eq!(gar.len(), 1, "free slots are not garbage");
    }

    #[test]
    fn figure_3_1_deadlock_detected_by_marks() {
        // x = x + 1 with an exhausted task pool.
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.vertex_mut(x)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(x, one);
        g.vertex_mut(x)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.vertex_mut(one).value = Some(dgr_graph::Value::Int(1));
        g.set_root(x);

        run_mark3(&mut g, &TaskEndpoints::new(), &MarkRunConfig::default());
        run_mark2(&mut g, &MarkRunConfig::default());
        let dl = deadlocked_vertices(&g);
        assert_eq!(dl, vec![x], "x deadlocked; the literal already has a value");
    }

    #[test]
    fn classification_matches_marks() {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let vital = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let eager = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let gar = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let freed = g.alloc(NodeLabel::lit_int(3)).unwrap();
        g.connect(root, vital);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(root, eager);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Eager));
        g.set_root(root);
        g.free(freed);
        run_mark2(&mut g, &MarkRunConfig::default());

        assert_eq!(classify_task_by_marks(&g, vital), TaskClass::Vital);
        assert_eq!(classify_task_by_marks(&g, eager), TaskClass::Eager);
        assert_eq!(classify_task_by_marks(&g, gar), TaskClass::Irrelevant);
        assert_eq!(classify_task_by_marks(&g, freed), TaskClass::Dangling);
        assert_eq!(classify_task_by_marks(&g, root), TaskClass::Vital);
    }

    #[test]
    fn census_totals() {
        let c = TaskCensus {
            vital: 1,
            eager: 2,
            reserve: 3,
            irrelevant: 4,
            dangling: 0,
        };
        assert_eq!(c.total(), 10);
    }
}
