//! Random-but-valid mutation scripts applied during marking.
//!
//! The canonical mutation (Section 4.2's motivating scenario) is a *move*:
//! `add-reference(a, b, c)` followed by `delete-reference(b, c)`, which
//! re-homes `c` from `b` to `a` without changing root-reachability. A
//! stream of moves therefore keeps the oracle's `R` fixed while constantly
//! changing the connectivity marking has to chase — exactly the adversary
//! the cooperating mutator primitives exist for.

use dgr_core::{coop, MarkMsg, MarkState};
use dgr_graph::{GraphStore, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates and applies random move mutations.
#[derive(Debug)]
pub struct MoveMutator {
    rng: StdRng,
    /// Moves applied so far.
    pub applied: u64,
    /// Attempts that found no eligible path.
    pub misses: u64,
}

impl MoveMutator {
    /// Creates a mutator with the given seed.
    pub fn new(seed: u64) -> Self {
        MoveMutator {
            rng: StdRng::seed_from_u64(seed),
            applied: 0,
            misses: 0,
        }
    }

    /// Finds a random path `a → b → c` among live vertices.
    fn find_path(&mut self, g: &GraphStore) -> Option<(VertexId, VertexId, VertexId)> {
        let n = g.capacity();
        if n == 0 {
            return None;
        }
        for _ in 0..32 {
            let a = VertexId::new(self.rng.gen_range(0..n as u32));
            if g.is_free(a) {
                continue;
            }
            let a_args = g.vertex(a).args();
            if a_args.is_empty() {
                continue;
            }
            let b = a_args[self.rng.gen_range(0..a_args.len())];
            let b_args = g.vertex(b).args();
            if b_args.is_empty() {
                continue;
            }
            let c = b_args[self.rng.gen_range(0..b_args.len())];
            return Some((a, b, c));
        }
        None
    }

    /// Applies one move through the cooperating primitives (or raw
    /// primitives when `state.cooperation_enabled` is false, which is the
    /// T-abl ablation). Returns `true` if a mutation was applied.
    pub fn step(
        &mut self,
        state: &mut MarkState,
        g: &mut GraphStore,
        sink: &mut dyn FnMut(MarkMsg),
    ) -> bool {
        let Some((a, b, c)) = self.find_path(g) else {
            self.misses += 1;
            return false;
        };
        coop::add_reference(state, g, a, b, c, sink).expect("path found above is adjacent");
        coop::delete_reference(g, b, c);
        self.applied += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::binary_tree;
    use dgr_graph::oracle;

    #[test]
    fn moves_preserve_reachability() {
        let mut g = binary_tree(6);
        let before = oracle::reachable_r(&g);
        let mut state = MarkState::new();
        let mut mutator = MoveMutator::new(3);
        let mut sink = |_m: MarkMsg| {};
        for _ in 0..500 {
            mutator.step(&mut state, &mut g, &mut sink);
        }
        // Moves flatten the tree toward a star over time, so later steps
        // may find no 2-path; plenty must still have applied.
        assert!(
            mutator.applied > 50,
            "applied {} mutations",
            mutator.applied
        );
        let after = oracle::reachable_r(&g);
        assert_eq!(before, after, "moves never change R");
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut g = binary_tree(5);
            let mut state = MarkState::new();
            let mut m = MoveMutator::new(seed);
            let mut sink = |_m: MarkMsg| {};
            for _ in 0..100 {
                m.step(&mut state, &mut g, &mut sink);
            }
            let o = oracle::reachable_r(&g);
            (m.applied, o.len())
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn no_path_in_leafless_graph() {
        let mut g = GraphStore::with_capacity(2);
        g.alloc(dgr_graph::NodeLabel::lit_int(0)).unwrap();
        let mut state = MarkState::new();
        let mut m = MoveMutator::new(0);
        let mut sink = |_m: MarkMsg| {};
        assert!(!m.step(&mut state, &mut g, &mut sink));
        assert_eq!(m.misses, 1);
    }
}
