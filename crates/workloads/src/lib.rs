//! Workload generators for exercising distributed graph reduction,
//! marking, and collection.
//!
//! * [`graphs`] — random and structured computation graphs for marking
//!   correctness tests and benches (F4-1, T5);
//! * [`mutation`] — random-but-valid mutation scripts applied *during*
//!   marking, for the cooperation experiments (F4-2, T-abl);
//! * [`churn`] — allocation/drop traces with a controllable cyclic
//!   fraction, replayable against both the marking collector and the
//!   reference-counting baseline (T1, T2);
//! * [`programs`] — a catalog of source programs with known answers
//!   (nfib, quicksort, primes, speculative branches, deadlocks) for
//!   end-to-end workloads (F3-1, F3-2, T3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod graphs;
pub mod mutation;
pub mod programs;
