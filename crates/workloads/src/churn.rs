//! Allocation/drop churn traces, replayable against different collectors.
//!
//! A trace is a sequence of abstract operations: allocate a *cluster* (a
//! chain of vertices, optionally closed into a cycle) and attach it under
//! the root, or drop a random live cluster (making it garbage). Replaying
//! the same trace against the marking collector and against the
//! reference-counting baseline yields the T2 comparison: marking reclaims
//! cyclic clusters, reference counting leaks them.

use dgr_core::{coop, MarkMsg, MarkState};
use dgr_graph::{GraphStore, NodeLabel, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One churn operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// Allocate a cluster of `size` vertices and attach it to the root.
    /// If `cyclic`, the last vertex points back at the first.
    New {
        /// Vertices in the cluster.
        size: u8,
        /// Close the chain into a cycle.
        cyclic: bool,
    },
    /// Drop the `index`-th live cluster (indices are into the replayer's
    /// live-cluster list; the generator tracks the count so indices are
    /// always valid).
    Drop {
        /// Index into the live-cluster list at replay time.
        index: usize,
    },
}

/// Generates a deterministic churn trace.
///
/// Each step allocates a cluster; with probability `drop_prob` it also
/// drops a random live cluster, so the live set stays roughly constant
/// while garbage accumulates. `cyclic_fraction` of clusters are cycles.
pub fn churn_trace(
    steps: usize,
    cluster_size: u8,
    cyclic_fraction: f64,
    drop_prob: f64,
    seed: u64,
) -> Vec<ChurnOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(steps * 2);
    let mut live = 0usize;
    for _ in 0..steps {
        out.push(ChurnOp::New {
            size: cluster_size.max(1),
            cyclic: rng.gen_bool(cyclic_fraction.clamp(0.0, 1.0)),
        });
        live += 1;
        if live > 1 && rng.gen_bool(drop_prob.clamp(0.0, 1.0)) {
            let index = rng.gen_range(0..live);
            out.push(ChurnOp::Drop { index });
            live -= 1;
        }
    }
    out
}

/// Replays churn against a [`GraphStore`], using the cooperating arc hooks
/// so replay can run concurrently with marking.
#[derive(Debug)]
pub struct ChurnReplayer {
    /// The graph being churned.
    pub g: GraphStore,
    root: VertexId,
    clusters: Vec<VertexId>,
    /// Clusters dropped so far (each of `cluster_size` vertices).
    pub dropped: usize,
    /// Cyclic clusters dropped so far.
    pub dropped_cyclic: usize,
}

impl ChurnReplayer {
    /// Creates a replayer with an initial capacity.
    pub fn new(capacity: usize) -> Self {
        let mut g = GraphStore::with_capacity(capacity.max(1));
        let root = g.alloc(NodeLabel::lit_int(-1)).expect("capacity ≥ 1");
        g.set_root(root);
        ChurnReplayer {
            g,
            root,
            clusters: Vec::new(),
            dropped: 0,
            dropped_cyclic: 0,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Live clusters currently attached.
    pub fn live_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Applies one operation. `state`/`sink` make the new root arc
    /// cooperate with any active marking process.
    pub fn apply(&mut self, op: ChurnOp, state: &mut MarkState, sink: &mut dyn FnMut(MarkMsg)) {
        match op {
            ChurnOp::New { size, cyclic } => {
                let size = size.max(1) as usize;
                if self.g.free_count() < size {
                    self.g.grow(size.max(256));
                }
                let ids: Vec<VertexId> = (0..size)
                    .map(|i| self.g.alloc(NodeLabel::lit_int(i as i64)).expect("grown"))
                    .collect();
                for w in ids.windows(2) {
                    self.g.connect(w[0], w[1]);
                }
                if cyclic && size > 1 {
                    self.g.connect(ids[size - 1], ids[0]);
                }
                // Mark the cluster head so we can tell cyclic drops apart
                // in reports.
                if cyclic {
                    self.g.vertex_mut(ids[0]).label = NodeLabel::lit_int(-2);
                }
                // Attach under the root through the cooperating hooks (a
                // brand-new arc from a possibly marked root).
                coop::coop_r_arc(state, &mut self.g, self.root, ids[0], sink);
                coop::coop_t_arc(state, &mut self.g, self.root, ids[0], sink);
                self.g.connect(self.root, ids[0]);
                self.clusters.push(ids[0]);
            }
            ChurnOp::Drop { index } => {
                if self.clusters.is_empty() {
                    return;
                }
                let index = index % self.clusters.len();
                let head = self.clusters.swap_remove(index);
                coop::delete_reference(&mut self.g, self.root, head);
                self.dropped += 1;
                if self.g.vertex(head).label == NodeLabel::lit_int(-2) {
                    self.dropped_cyclic += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::oracle;

    #[test]
    fn trace_is_deterministic_and_indices_valid() {
        let t1 = churn_trace(200, 4, 0.3, 0.6, 5);
        let t2 = churn_trace(200, 4, 0.3, 0.6, 5);
        assert_eq!(t1, t2);
        // Replay tracks validity.
        let mut r = ChurnReplayer::new(64);
        let mut state = MarkState::new();
        let mut sink = |_m: MarkMsg| {};
        for op in &t1 {
            r.apply(*op, &mut state, &mut sink);
        }
        assert!(r.g.check_consistency().is_ok());
        assert!(r.dropped > 0);
    }

    #[test]
    fn dropped_clusters_become_garbage() {
        let mut r = ChurnReplayer::new(64);
        let mut state = MarkState::new();
        let mut sink = |_m: MarkMsg| {};
        r.apply(
            ChurnOp::New {
                size: 5,
                cyclic: false,
            },
            &mut state,
            &mut sink,
        );
        r.apply(
            ChurnOp::New {
                size: 5,
                cyclic: true,
            },
            &mut state,
            &mut sink,
        );
        assert_eq!(r.live_clusters(), 2);
        r.apply(ChurnOp::Drop { index: 0 }, &mut state, &mut sink);
        let reach = oracle::reachable_r(&r.g);
        let gar = oracle::garbage(&r.g, &reach);
        assert_eq!(gar.len(), 5, "one 5-vertex cluster became garbage");
    }

    #[test]
    fn cyclic_fraction_extremes() {
        let all_cyclic = churn_trace(50, 3, 1.0, 0.0, 0);
        assert!(all_cyclic
            .iter()
            .all(|op| matches!(op, ChurnOp::New { cyclic: true, .. })));
        let none_cyclic = churn_trace(50, 3, 0.0, 0.0, 0);
        assert!(none_cyclic
            .iter()
            .all(|op| matches!(op, ChurnOp::New { cyclic: false, .. })));
    }
}
