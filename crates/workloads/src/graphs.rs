//! Random and structured computation graphs.

use dgr_graph::{GraphStore, NodeLabel, RequestKind, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random directed graph: `n` allocated vertices, the first being the
/// root, each with `Poisson-ish(avg_degree)` outgoing arcs to uniformly
/// random targets. A fraction of vertices ends up unreachable (garbage),
/// and cycles occur naturally.
pub fn random_digraph(n: usize, avg_degree: f64, seed: u64) -> GraphStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &v in &ids {
        // Geometric-ish degree with the requested mean.
        let mut d = 0usize;
        while rng.gen_bool((avg_degree / (avg_degree + 1.0)).clamp(0.0, 0.99)) {
            d += 1;
            if d > 8 * avg_degree as usize + 8 {
                break;
            }
        }
        for _ in 0..d {
            let t = ids[rng.gen_range(0..n)];
            g.connect(v, t);
        }
    }
    g.set_root(ids[0]);
    g
}

/// A complete binary tree of the given depth (depth 0 = a single leaf).
pub fn binary_tree(depth: usize) -> GraphStore {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                g.connect(ids[i], ids[c]);
            }
        }
    }
    g.set_root(ids[0]);
    g
}

/// A complete binary tree numbered in *preorder* (each subtree occupies a
/// contiguous index range), so block partitioning assigns whole subtrees
/// to one PE — the locality-aware placement a real system would use.
pub fn binary_tree_dfs(depth: usize) -> GraphStore {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    // Recursive wiring: node at `start` with `levels` levels below it.
    fn wire(g: &mut GraphStore, ids: &[VertexId], start: usize, levels: usize) {
        if levels == 0 {
            return;
        }
        let subtree = (1usize << levels) - 1; // size of each child subtree
        let left = start + 1;
        let right = left + subtree;
        g.connect(ids[start], ids[left]);
        g.connect(ids[start], ids[right]);
        wire(g, ids, left, levels - 1);
        wire(g, ids, right, levels - 1);
    }
    wire(&mut g, &ids, 0, depth);
    g.set_root(ids[0]);
    g
}

/// A linear chain `root → v1 → … → v(n-1)` (worst case for marking
/// parallelism: the marking tree is a path).
pub fn chain(n: usize) -> GraphStore {
    assert!(n > 0);
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for w in ids.windows(2) {
        g.connect(w[0], w[1]);
    }
    g.set_root(ids[0]);
    g
}

/// A DAG with maximal sharing: `levels` ranks of `width` vertices, each
/// vertex pointing to every vertex of the next rank (every internal vertex
/// is reached through `width` paths — the shared-subexpression stress case
/// for priority marking).
pub fn shared_dag(levels: usize, width: usize) -> GraphStore {
    assert!(levels > 0 && width > 0);
    let n = 1 + levels * width;
    let mut g = GraphStore::with_capacity(n);
    let root = g.alloc(NodeLabel::lit_int(-1)).unwrap();
    let ranks: Vec<Vec<VertexId>> = (0..levels)
        .map(|l| {
            (0..width)
                .map(|i| g.alloc(NodeLabel::lit_int((l * width + i) as i64)).unwrap())
                .collect()
        })
        .collect();
    for &v in &ranks[0] {
        g.connect(root, v);
    }
    for l in 0..levels - 1 {
        for &v in &ranks[l] {
            for &w in &ranks[l + 1] {
                g.connect(v, w);
            }
        }
    }
    g.set_root(root);
    g
}

/// Randomly assigns request kinds to arcs: each arc becomes vitally
/// requested with probability `p_vital`, eagerly with `p_eager`, and stays
/// unrequested otherwise. (Used to exercise `mark2`'s priority logic.)
pub fn sprinkle_request_kinds(g: &mut GraphStore, p_vital: f64, p_eager: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<VertexId> = g.live_ids().collect();
    for v in ids {
        let n = g.vertex(v).args().len();
        for i in 0..n {
            let r: f64 = rng.gen();
            let kind = if r < p_vital {
                Some(RequestKind::Vital)
            } else if r < p_vital + p_eager {
                Some(RequestKind::Eager)
            } else {
                None
            };
            g.vertex_mut(v).set_request_kind(i, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::oracle;

    #[test]
    fn random_digraph_is_consistent_and_deterministic() {
        let g1 = random_digraph(200, 2.0, 7);
        let g2 = random_digraph(200, 2.0, 7);
        assert!(g1.check_consistency().is_ok());
        let r1 = oracle::reachable_r(&g1);
        let r2 = oracle::reachable_r(&g2);
        assert_eq!(r1, r2, "same seed, same graph");
        assert!(r1.len() > 1, "root reaches something");
        let g3 = random_digraph(200, 2.0, 8);
        assert_ne!(
            oracle::reachable_r(&g3).len(),
            0,
            "different seed still has a root"
        );
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(4);
        assert_eq!(g.live_count(), 31);
        let r = oracle::reachable_r(&g);
        assert_eq!(r.len(), 31, "whole tree reachable");
    }

    #[test]
    fn chain_shape() {
        let g = chain(10);
        let r = oracle::reachable_r(&g);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn shared_dag_everything_reachable() {
        let g = shared_dag(3, 4);
        let r = oracle::reachable_r(&g);
        assert_eq!(r.len(), 13);
    }

    #[test]
    fn sprinkle_respects_probabilities_at_extremes() {
        let mut g = shared_dag(3, 4);
        sprinkle_request_kinds(&mut g, 1.0, 0.0, 0);
        for v in g.live_ids() {
            for k in g.vertex(v).request_kinds() {
                assert_eq!(*k, Some(RequestKind::Vital));
            }
        }
        sprinkle_request_kinds(&mut g, 0.0, 0.0, 0);
        for v in g.live_ids() {
            for k in g.vertex(v).request_kinds() {
                assert_eq!(*k, None);
            }
        }
    }
}
