//! A catalog of source programs with known answers.

use dgr_graph::Value;

/// A workload program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Diagnostic name.
    pub name: String,
    /// Source text.
    pub source: String,
    /// The expected result (`None` when the program deadlocks).
    pub expected: Option<Value>,
    /// Whether the source needs the prelude in scope.
    pub needs_prelude: bool,
}

fn nfib_value(n: i64) -> i64 {
    if n < 2 {
        1
    } else {
        nfib_value(n - 1) + nfib_value(n - 2) + 1
    }
}

fn fib_value(n: i64) -> i64 {
    if n < 2 {
        n
    } else {
        fib_value(n - 1) + fib_value(n - 2)
    }
}

/// `nfib n` — the classic parallel-reduction benchmark (its value counts
/// the function calls performed).
pub fn nfib(n: i64) -> Program {
    Program {
        name: format!("nfib {n}"),
        source: format!("nfib {n}"),
        expected: Some(Value::Int(nfib_value(n))),
        needs_prelude: true,
    }
}

/// `fib n`.
pub fn fib(n: i64) -> Program {
    Program {
        name: format!("fib {n}"),
        source: format!("fib {n}"),
        expected: Some(Value::Int(fib_value(n))),
        needs_prelude: true,
    }
}

/// `sum (range 1 n)` — list-heavy, allocates and discards one cons cell
/// per element.
pub fn sum_range(n: i64) -> Program {
    Program {
        name: format!("sum-range {n}"),
        source: format!("sum (range 1 {n})"),
        expected: Some(Value::Int(n * (n + 1) / 2)),
        needs_prelude: true,
    }
}

/// `sum (map (λx. x·x) (range 1 n))`.
pub fn sum_squares(n: i64) -> Program {
    Program {
        name: format!("sum-squares {n}"),
        source: format!("sum (map (\\x -> x * x) (range 1 {n}))"),
        expected: Some(Value::Int(n * (n + 1) * (2 * n + 1) / 6)),
        needs_prelude: true,
    }
}

/// Quicksort on a pseudo-random list, checked by summing (a pure
/// structural workload with lots of intermediate garbage).
pub fn qsort(n: i64) -> Program {
    // Deterministic scrambled list via a small LCG written in the language.
    let source = format!(
        "let rec lcg = \\x k -> if k == 0 then nil
                                else cons (x % 1000) (lcg ((x * 75 + 74) % 65537) (k - 1));
                 qsort = \\xs -> if isnil xs then nil
                                 else append
                                   (qsort (filter (\\y -> y < head xs) (tail xs)))
                                   (cons (head xs)
                                     (qsort (filter (\\y -> y >= head xs) (tail xs))))
         in sum (qsort (lcg 1 {n}))"
    );
    // The sum is permutation-invariant: compute it with the same LCG.
    let mut x: i64 = 1;
    let mut sum = 0;
    for _ in 0..n {
        sum += x % 1000;
        x = (x * 75 + 74) % 65537;
    }
    Program {
        name: format!("qsort {n}"),
        source,
        expected: Some(Value::Int(sum)),
        needs_prelude: true,
    }
}

/// Count of primes below `n` by trial division (quadratic, compute-heavy).
pub fn primes(n: i64) -> Program {
    let count = (2..n).filter(|&k| (2..k).all(|d| k % d != 0)).count() as i64;
    Program {
        name: format!("primes {n}"),
        source: format!(
            "length (filter (\\k -> isnil (filter (\\d -> k % d == 0) (range 2 (k - 1))))
                            (range 2 {}))",
            n - 1
        ),
        expected: Some(Value::Int(count)),
        needs_prelude: true,
    }
}

/// Sums a prefix of an infinite cyclic list — the self-referencing
/// structure reference counting cannot reclaim.
pub fn cyclic_sum(n: i64) -> Program {
    Program {
        name: format!("cyclic-sum {n}"),
        source: format!("let rec ones = cons 1 ones in sum (take {n} ones)"),
        expected: Some(Value::Int(n)),
        needs_prelude: true,
    }
}

/// Figure 3-1 as a program: `let rec x = x + 1 in x` deadlocks.
pub fn deadlock_self() -> Program {
    Program {
        name: "deadlock-self".into(),
        source: "let rec x = x + 1 in x".into(),
        expected: None,
        needs_prelude: false,
    }
}

/// A mutually-recursive deadlock: `a = b + 1; b = a + 1`.
pub fn deadlock_mutual() -> Program {
    Program {
        name: "deadlock-mutual".into(),
        source: "let rec a = b + 1; b = a + 1 in a".into(),
        expected: None,
        needs_prelude: false,
    }
}

/// A chain of `depth` conditionals whose predicates are all true; under
/// speculative evaluation every else-branch spawns `nfib spin` worth of
/// irrelevant work that must be expunged (the T3 workload).
pub fn speculative_chain(depth: i64, spin: i64) -> Program {
    let mut body = String::from("0");
    for i in 0..depth {
        body = format!("if {i} < {depth} then ({body}) else nfib {spin}");
    }
    Program {
        name: format!("speculative-chain {depth}x{spin}"),
        source: body,
        expected: Some(Value::Int(0)),
        needs_prelude: true,
    }
}

/// The standard catalog used by the report binaries.
pub fn catalog() -> Vec<Program> {
    vec![
        nfib(12),
        fib(13),
        sum_range(150),
        sum_squares(40),
        qsort(40),
        primes(60),
        cyclic_sum(60),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_lang::{eval_source, eval_with_prelude};
    use dgr_reduction::{RunOutcome, SystemConfig};

    fn run(p: &Program) -> RunOutcome {
        let cfg = SystemConfig::default();
        if p.needs_prelude {
            eval_with_prelude(&p.source, cfg).unwrap_or_else(|e| panic!("{}: {e}", p.name))
        } else {
            eval_source(&p.source, cfg).unwrap_or_else(|e| panic!("{}: {e}", p.name))
        }
    }

    #[test]
    fn catalog_programs_produce_expected_values() {
        for p in [nfib(8), fib(10), sum_range(30), sum_squares(10), qsort(12)] {
            let expected = p.expected.clone().unwrap();
            assert_eq!(run(&p), RunOutcome::Value(expected), "{}", p.name);
        }
    }

    #[test]
    fn primes_and_cycles() {
        let p = primes(20);
        assert_eq!(run(&p), RunOutcome::Value(Value::Int(8)), "primes < 20");
        let c = cyclic_sum(10);
        assert_eq!(run(&c), RunOutcome::Value(Value::Int(10)));
    }

    #[test]
    fn deadlock_programs_quiesce() {
        assert_eq!(run(&deadlock_self()), RunOutcome::Quiescent);
        assert_eq!(run(&deadlock_mutual()), RunOutcome::Quiescent);
    }

    #[test]
    fn speculative_chain_is_fine_without_speculation() {
        let p = speculative_chain(4, 3);
        assert_eq!(run(&p), RunOutcome::Value(Value::Int(0)));
    }

    #[test]
    fn nfib_value_matches_definition() {
        assert_eq!(nfib_value(0), 1);
        assert_eq!(nfib_value(5), 15);
        assert_eq!(fib_value(10), 55);
    }
}
