//! Golden scrape: pins the shape of the `/metrics` exposition.
//!
//! Three contracts, all feature-independent (the exposition renders the
//! always-compiled concrete snapshot types):
//!
//! * **Determinism** — two renders of the same hub state are identical
//!   once the two wall-clock gauges (uptime, phase age) are masked.
//! * **Name lint** — every family and sample name matches the
//!   Prometheus charset `[a-zA-Z_:][a-zA-Z0-9_:]*`, every label name
//!   matches `[a-zA-Z_][a-zA-Z0-9_]*`, and every sample belongs to a
//!   family declared by a preceding `# TYPE` line.
//! * **Structure** — families appear in the fixed enum order, counters
//!   end in `_total`, histograms carry `_bucket`/`_sum`/`_count` plus
//!   the three quantile gauges.

use dgr_observe::{render, CensusSnapshot, GcProgress, ObserveHub};
use dgr_telemetry::active::Registry;
use dgr_telemetry::{
    CounterId, GaugeId, HeapSnapshot, HistId, LifecycleSnapshot, PeHeap, Phase, SchedState,
};

/// A hub with every section populated: a 2-PE snapshot with counter,
/// gauge and histogram traffic, scheduler state clocks and steal-victim
/// counters, a census, GC progress, and a heartbeat mid-phase.
fn populated_hub() -> ObserveHub {
    let reg = Registry::new(2);
    reg.pe(0).inc(CounterId::Tasks);
    reg.pe(0).add(CounterId::MarkEvents, 41);
    reg.pe(1).inc(CounterId::SendsRemote);
    reg.pe(0).gauge_set(GaugeId::MailboxDepth, 3);
    reg.pe(1).gauge_set(GaugeId::MailboxHighWater, 17);
    for v in [1u64, 2, 8, 300] {
        reg.pe(0).observe(HistId::BatchSize, v);
        reg.pe(1).observe(HistId::CycleUs, v * 10);
    }
    // Steal outcomes bucketed by victim, plus the observatory histograms.
    reg.pe(0).add(CounterId::Steals, 5);
    reg.pe(1).inc(CounterId::StolenFrom);
    reg.pe(1).add(CounterId::StolenTasks, 9);
    reg.pe(1).add(CounterId::StealMisses, 2);
    reg.pe(0).gauge_set(GaugeId::SpillHighWater, 7);
    reg.pe(0).observe(HistId::StealBatch, 9);
    reg.pe(0).observe(HistId::DequeDepthPeak, 33);
    reg.pe(0).observe(HistId::ParkWakeUs, 120);
    // A finished all-Work episode on PE 0: utilization renders 1.000000.
    reg.sched_enter(0, SchedState::Work);
    std::thread::sleep(std::time::Duration::from_millis(1));
    reg.sched_finish(0);
    let hub = ObserveHub::new();
    hub.publish_metrics(reg.snapshot());
    hub.publish_census(CensusSnapshot {
        vital: 4,
        eager: 3,
        reserve: 2,
        irrelevant: 1,
        dangling: 0,
    });
    hub.publish_gc(GcProgress {
        cycles: 12,
        reclaimed: 340,
        ..Default::default()
    });
    // A lifecycle snapshot with every family non-trivial: 4 reclaims
    // (3 exact at latency 2), 2 floaters, 40 messages against a bound
    // of 50.
    let mut lc = LifecycleSnapshot {
        latency_sum: 6,
        latency_max: 2,
        reclaimed: 4,
        exact: 3,
        float_now: 2,
        msgs_mt: 10,
        msgs_mr: 30,
        bound: 50,
        cycles: 5,
        ..Default::default()
    };
    lc.latency[2] = 3;
    lc.float_age[0] = 2;
    hub.publish_lifecycle(lc);
    // A heap snapshot with every family non-trivial: two PEs holding
    // live bytes, four 32-byte allocations (one freed exactly), and
    // cycles under both trigger causes.
    let mut hp = HeapSnapshot {
        live: 96,
        peak: 128,
        alloc_bytes: 128,
        freed_bytes: 32,
        allocs: 4,
        frees: 1,
        exact_frees: 1,
        exact_bytes: 32,
        size_count: 4,
        size_sum: 128,
        size_max: 32,
        trigger_period: 2,
        trigger_heap: 3,
        cycles: 5,
        ..Default::default()
    };
    hp.size[6] = 4; // 32 lands in the 32..=63 bucket
    hp.per_pe = vec![
        PeHeap {
            live: 64,
            peak: 96,
            alloc_bytes: 96,
            free_bytes: 32,
            allocs: 3,
            frees: 1,
        },
        PeHeap {
            live: 32,
            peak: 32,
            alloc_bytes: 32,
            free_bytes: 0,
            allocs: 1,
            frees: 0,
        },
    ];
    hub.publish_heap(hp);
    hub.heartbeat().begin_phase(12, Phase::Mr);
    hub.heartbeat().progress(99);
    hub
}

/// Strips the two samples whose value is a wall-clock reading and so
/// legitimately differs between renders.
fn mask_clock_lines(text: &str) -> String {
    text.lines()
        .filter(|l| {
            !l.starts_with("dgr_uptime_seconds ")
                && !l.starts_with("dgr_heartbeat_phase_age_seconds ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn rendering_the_same_hub_twice_is_byte_identical() {
    let hub = populated_hub();
    let (a, b) = (render(&hub), render(&hub));
    assert_eq!(mask_clock_lines(&a), mask_clock_lines(&b));
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The family a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix, everything else is its own family.
fn family_of(sample: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            return base;
        }
    }
    sample
}

#[test]
fn every_name_passes_the_prometheus_charset_lint() {
    let hub = populated_hub();
    let text = render(&hub);
    let mut declared = std::collections::BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.split_whitespace();
            let (keyword, name) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword in: {line}"
            );
            assert!(is_valid_metric_name(name), "bad family name: {name}");
            if keyword == "TYPE" {
                assert!(
                    declared.insert(name.to_string()),
                    "family {name} declared twice"
                );
            }
            continue;
        }
        // A sample: `name value` or `name{label="v",...} value`.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let sample = &line[..name_end];
        assert!(is_valid_metric_name(sample), "bad sample name: {sample}");
        assert!(
            declared.contains(family_of(sample)) || declared.contains(sample),
            "sample {sample} has no preceding # TYPE declaration"
        );
        if let Some(open) = line.find('{') {
            let close = line.rfind('}').expect("unterminated label set");
            for pair in line[open + 1..close].split(',') {
                let (label, value) = pair.split_once('=').expect("label without =");
                assert!(is_valid_label_name(label), "bad label name: {label}");
                assert!(
                    value.starts_with('"') && value.ends_with('"'),
                    "unquoted label value in: {line}"
                );
            }
        }
    }
    assert!(!declared.is_empty(), "exposition declared no families");
}

#[test]
fn families_follow_the_fixed_enum_order() {
    let hub = populated_hub();
    let text = render(&hub);
    // One representative per section, in the order render() emits them.
    let landmarks = [
        "# TYPE dgr_tasks_total counter",
        "# TYPE dgr_relaned_total counter",
        "# TYPE dgr_stolen_from_total counter",
        "# TYPE dgr_stolen_tasks_total counter",
        "# TYPE dgr_steal_misses_total counter",
        "# TYPE dgr_mailbox_depth gauge",
        "# TYPE dgr_spill_high_water gauge",
        "# TYPE dgr_batch_size histogram",
        "# TYPE dgr_batch_size_quantile gauge",
        "# TYPE dgr_cycle_us histogram",
        "# TYPE dgr_steal_batch histogram",
        "# TYPE dgr_deque_depth_peak histogram",
        "# TYPE dgr_park_wake_us histogram",
        "# TYPE dgr_sched_state_ns_total counter",
        "# TYPE dgr_sched_span_ns gauge",
        "# TYPE dgr_pe_utilization gauge",
        "# TYPE dgr_steal_rate gauge",
        "# TYPE dgr_task_census gauge",
        "# TYPE dgr_gc_cycles_total counter",
        "# TYPE dgr_gc_reclaim_latency_cycles histogram",
        "# TYPE dgr_gc_float_count gauge",
        "# TYPE dgr_gc_msgs_per_reclaimed gauge",
        "# TYPE dgr_gc_marking_efficiency gauge",
        "# TYPE dgr_heap_live_bytes gauge",
        "# TYPE dgr_heap_peak_bytes gauge",
        "# TYPE dgr_heap_alloc_bytes_total counter",
        "# TYPE dgr_heap_size_bytes histogram",
        "# TYPE dgr_heap_size_bytes_quantile gauge",
        "# TYPE dgr_gc_trigger_total counter",
        "# TYPE dgr_heartbeat_cycle gauge",
        "# TYPE dgr_watchdog_healthy gauge",
        "# TYPE dgr_scrapes_total counter",
        "# TYPE dgr_uptime_seconds gauge",
    ];
    let mut last = 0;
    for mark in landmarks {
        let at = text.find(mark).unwrap_or_else(|| panic!("missing: {mark}"));
        assert!(at >= last, "{mark} out of order");
        last = at;
    }
}

#[test]
fn samples_carry_the_published_values() {
    let hub = populated_hub();
    let text = render(&hub);
    assert!(text.contains("dgr_tasks_total{pe=\"0\"} 1\n"));
    assert!(text.contains("dgr_mark_events_total{pe=\"0\"} 41\n"));
    assert!(text.contains("dgr_sends_remote_total{pe=\"1\"} 1\n"));
    assert!(text.contains("dgr_mailbox_depth{pe=\"0\"} 3\n"));
    assert!(text.contains("dgr_mailbox_high_water{pe=\"1\"} 17\n"));
    assert!(text.contains("dgr_batch_size_count 4\n"));
    assert!(text.contains("dgr_batch_size_sum 311\n"));
    for q in ["0.5", "0.9", "0.99"] {
        assert!(
            text.contains(&format!("dgr_batch_size_quantile{{q=\"{q}\"}}")),
            "missing batch_size quantile {q}"
        );
        assert!(
            text.contains(&format!("dgr_cycle_us_quantile{{q=\"{q}\"}}")),
            "missing cycle_us quantile {q}"
        );
    }
    assert!(text.contains("dgr_steals_total{pe=\"0\"} 5\n"));
    assert!(text.contains("dgr_stolen_from_total{pe=\"1\"} 1\n"));
    assert!(text.contains("dgr_stolen_tasks_total{pe=\"1\"} 9\n"));
    assert!(text.contains("dgr_steal_misses_total{pe=\"1\"} 2\n"));
    assert!(text.contains("dgr_spill_high_water{pe=\"0\"} 7\n"));
    assert!(text.contains("dgr_steal_batch_count 1\n"));
    assert!(text.contains("dgr_steal_batch_sum 9\n"));
    assert!(text.contains("dgr_deque_depth_peak_sum 33\n"));
    assert!(text.contains("dgr_park_wake_us_sum 120\n"));
    // PE 0 ran a finished, all-Work scheduler episode; PE 1 never
    // entered the scheduler and reports a zeroed clock.
    assert!(text.contains("dgr_sched_state_ns_total{pe=\"0\",state=\"work\"}"));
    assert!(text.contains("dgr_sched_state_ns_total{pe=\"1\",state=\"work\"} 0\n"));
    assert!(text.contains("dgr_sched_span_ns{pe=\"0\"}"));
    assert!(text.contains("dgr_sched_span_ns{pe=\"1\"} 0\n"));
    assert!(text.contains("dgr_pe_utilization{pe=\"0\"} 1.000000\n"));
    assert!(text.contains("dgr_pe_utilization{pe=\"1\"} 0.000000\n"));
    assert!(text.contains("dgr_steal_rate{pe=\"1\"} 0.000\n"));
    assert!(text.contains("dgr_task_census{class=\"vital\"} 4\n"));
    assert!(text.contains("dgr_gc_cycles_total 12\n"));
    assert!(text.contains("dgr_gc_reclaimed_total 340\n"));
    assert!(text.contains("dgr_gc_reclaim_latency_cycles_bucket{le=\"3\"} 3\n"));
    assert!(text.contains("dgr_gc_reclaim_latency_cycles_bucket{le=\"+Inf\"} 3\n"));
    assert!(text.contains("dgr_gc_reclaim_latency_cycles_sum 6\n"));
    assert!(text.contains("dgr_gc_reclaim_latency_cycles_count 3\n"));
    assert!(text.contains("dgr_gc_float_count 2\n"));
    assert!(text.contains("dgr_gc_msgs_per_reclaimed{kind=\"mt\"} 2.500\n"));
    assert!(text.contains("dgr_gc_msgs_per_reclaimed{kind=\"mr\"} 7.500\n"));
    assert!(text.contains("dgr_gc_marking_efficiency 0.8000\n"));
    assert!(text.contains("dgr_heap_live_bytes{pe=\"0\"} 64\n"));
    assert!(text.contains("dgr_heap_live_bytes{pe=\"1\"} 32\n"));
    assert!(text.contains("dgr_heap_peak_bytes{pe=\"0\"} 96\n"));
    assert!(text.contains("dgr_heap_alloc_bytes_total{pe=\"1\"} 32\n"));
    assert!(text.contains("dgr_heap_size_bytes_bucket{le=\"63\"} 4\n"));
    assert!(text.contains("dgr_heap_size_bytes_bucket{le=\"+Inf\"} 4\n"));
    assert!(text.contains("dgr_heap_size_bytes_sum 128\n"));
    assert!(text.contains("dgr_heap_size_bytes_count 4\n"));
    // Interpolated within the 32..=63 bucket: 32 + round(31 * 0.5).
    assert!(text.contains("dgr_heap_size_bytes_quantile{q=\"0.5\"} 48\n"));
    assert!(text.contains("dgr_gc_trigger_total{cause=\"period\"} 2\n"));
    assert!(text.contains("dgr_gc_trigger_total{cause=\"heap\"} 3\n"));
    assert!(text.contains("dgr_heartbeat_cycle 12\n"));
    assert!(text.contains("dgr_heartbeat_phase_active 1\n"));
    assert!(text.contains("dgr_heartbeat_progress_total 99\n"));
    assert!(text.contains("dgr_watchdog_healthy 1\n"));
    assert!(text.contains("dgr_watchdog_incidents_total 0\n"));
}

#[test]
fn counter_families_end_in_total() {
    let hub = populated_hub();
    let text = render(&hub);
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if kind == "counter" {
                assert!(name.ends_with("_total"), "counter {name} not *_total");
            } else {
                assert!(!name.ends_with("_total"), "{kind} {name} claims *_total");
            }
        }
    }
}
