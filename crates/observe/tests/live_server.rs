//! End-to-end exporter tests over real sockets: bind an ephemeral
//! localhost port, issue raw HTTP/1.1 GETs, and drive the watchdog's
//! poll loop against a deliberately stalled heartbeat.
//!
//! These run in both feature states — the hub's concrete [`Heartbeat`]
//! and the exposition are always compiled; only the facade handle the
//! drivers hold is feature-gated, and no driver is involved here.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dgr_observe::{watchdog, CensusSnapshot, ObserveHub, Server, WatchdogConfig};
use dgr_telemetry::{flight_path, Phase, FLIGHT_DIR_ENV};

/// One raw GET; returns (status, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_string())
}

#[test]
fn every_route_answers_over_a_real_socket() {
    let hub = Arc::new(ObserveHub::new());
    hub.publish_census(CensusSnapshot {
        vital: 5,
        eager: 0,
        reserve: 1,
        irrelevant: 2,
        dangling: 0,
    });
    hub.publish_dot("digraph dgr { v0 -> v1; }\n".to_string());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind ephemeral port");
    let addr = server.addr();

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("dgr_task_census{class=\"vital\"} 5"));
    assert!(metrics.contains("dgr_uptime_seconds"));

    let (status, body) = get(addr, "/status");
    assert_eq!(status, 200);
    assert!(body.contains("\"healthy\": true"));
    assert!(body.contains("\"total\": 8"));

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    let (status, body) = get(addr, "/graph.dot");
    assert_eq!(status, 200);
    assert!(body.contains("v0 -> v1"));

    assert_eq!(get(addr, "/nope").0, 404);
    assert!(hub.scrapes() >= 5, "every request was counted");
    server.shutdown();
}

/// Polls `path` until `want` comes back or the deadline passes.
fn poll_for_status(addr: SocketAddr, path: &str, want: u16, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if get(addr, path).0 == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// The full degradation round trip, driven by the real poll loop: a
/// phase goes silent past the deadline, `/healthz` flips to 503, a
/// flight dump lands in `$DGR_FLIGHT_DIR`, and a fresh beat recovers it
/// to 200. This is the only test in the binary touching the flight-dir
/// environment variable (mirroring the recorder's own test), so the
/// process-global `set_var` cannot race another reader.
#[test]
fn a_stalled_phase_degrades_healthz_and_dumps_flight() {
    let dir = std::env::temp_dir().join(format!("dgr-observe-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create flight dir");
    std::env::set_var(FLIGHT_DIR_ENV, &dir);
    let _ = std::fs::remove_file(flight_path(0));

    let hub = Arc::new(ObserveHub::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind ephemeral port");
    let addr = server.addr();
    let dog = watchdog::spawn(
        Arc::clone(&hub),
        WatchdogConfig {
            stall_timeout_ms: 20,
            poll_ms: 10,
            ..Default::default()
        },
    );

    // Nothing attached yet: healthy.
    assert_eq!(get(addr, "/healthz").0, 200);

    // A phase begins on the hub's concrete pulse, then goes silent.
    hub.heartbeat().begin_phase(7, Phase::Mr);
    assert!(
        poll_for_status(addr, "/healthz", 503, Duration::from_secs(5)),
        "healthz never degraded on a silent phase"
    );
    let (_, body) = get(addr, "/healthz");
    assert!(body.contains("stall:"), "got: {body}");
    assert_eq!(hub.incidents(), 1);
    assert!(
        flight_path(0).exists(),
        "no flight dump at {}",
        flight_path(0).display()
    );
    let dump = std::fs::read_to_string(flight_path(0)).expect("read flight dump");
    assert!(
        dump.contains("\"reason\": \"stall:"),
        "dump names the stall"
    );

    // A fresh beat recovers health; the incident counter is monotone.
    hub.heartbeat().end_phase();
    assert!(
        poll_for_status(addr, "/healthz", 200, Duration::from_secs(5)),
        "healthz never recovered after the phase ended"
    );
    assert_eq!(hub.incidents(), 1);

    server.shutdown();
    dog.join().expect("watchdog thread exits on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
