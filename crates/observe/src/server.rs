//! A hand-rolled HTTP/1.1 exporter over [`std::net::TcpListener`] — no
//! dependencies, four routes, one thread:
//!
//! * `GET /metrics` — Prometheus text exposition ([`crate::prom`]).
//! * `GET /status` — JSON: uptime, health, GC progress, census, the
//!   vertex-lifecycle summary (reclamation latency, float, message
//!   cost), heartbeat, per-PE mailbox depth/high-water, and the per-PE
//!   scheduler breakdown (state, utilization, steal traffic).
//! * `GET /healthz` — `200 ok` in steady state, `503` with the
//!   watchdog's reason once degraded.
//! * `GET /graph.dot` — the latest published bounded DOT snapshot.
//!
//! Routing is factored into the pure [`respond`] so tests can exercise
//! every route without a socket; the accept loop only parses the
//! request line, calls it, and writes the response. Shutdown is the
//! hub's flag plus a self-connect to unblock `accept`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dgr_telemetry::{json_escape, CounterId, GaugeId, SchedState};

use crate::hub::{Health, ObserveHub};
use crate::prom;

/// A response ready to serialize: status code, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

impl Response {
    fn new(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            content_type,
            body,
        }
    }

    /// Serializes the full HTTP/1.1 response (headers + body).
    pub fn to_http(&self) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            self.body,
        )
    }
}

/// The `/status` JSON document.
pub fn status_json(hub: &ObserveHub) -> String {
    let hb = hub.heartbeat();
    let census = hub.census();
    let gc = hub.gc();
    let snap = hub.metrics();
    let (healthy, reason) = match hub.health() {
        Health::Ok => (true, String::new()),
        Health::Degraded(r) => (false, r),
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"uptime_s\": {:.3},", hub.uptime_s());
    let _ = writeln!(out, "  \"healthy\": {healthy},");
    let _ = writeln!(out, "  \"degraded_reason\": \"{}\",", json_escape(&reason));
    let _ = writeln!(out, "  \"watchdog_incidents\": {},", hub.incidents());
    let _ = writeln!(out, "  \"scrapes\": {},", hub.scrapes());
    let _ = writeln!(
        out,
        "  \"gc\": {{\"cycles\": {}, \"aborted\": {}, \"reclaimed\": {}, \
         \"expunged\": {}, \"relaned\": {}, \"deadlocked\": {}}},",
        gc.cycles, gc.aborted, gc.reclaimed, gc.expunged, gc.relaned, gc.deadlocked,
    );
    let _ = writeln!(
        out,
        "  \"heartbeat\": {{\"cycle\": {}, \"phase\": \"{}\", \"phase_age_us\": {}, \
         \"progress\": {}, \"cycles_done\": {}, \"beats\": {}}},",
        hb.cycle(),
        hb.phase().map(|p| p.name()).unwrap_or("idle"),
        hb.phase_age_us(),
        hb.progress_total(),
        hb.cycles_done(),
        hb.beats(),
    );
    let _ = writeln!(
        out,
        "  \"census\": {{\"vital\": {}, \"eager\": {}, \"reserve\": {}, \
         \"irrelevant\": {}, \"dangling\": {}, \"total\": {}}},",
        census.vital,
        census.eager,
        census.reserve,
        census.irrelevant,
        census.dangling,
        census.total(),
    );
    let lc = hub.lifecycle();
    let (mt, mr) = lc.msgs_per_reclaimed();
    let _ = writeln!(
        out,
        "  \"lifecycle\": {{\"reclaimed\": {}, \"exact_fraction\": {:.4}, \
         \"mean_latency_cycles\": {:.3}, \"p99_latency_cycles\": {}, \"float_now\": {}, \
         \"msgs_per_reclaimed_mt\": {:.3}, \"msgs_per_reclaimed_mr\": {:.3}, \
         \"marking_efficiency\": {:.4}}},",
        lc.reclaimed,
        lc.exact_fraction(),
        lc.mean_latency(),
        lc.latency_quantile(0.99),
        lc.float_now,
        mt,
        mr,
        lc.efficiency(),
    );
    let hp = hub.heap();
    let _ = writeln!(
        out,
        "  \"heap\": {{\"live_bytes\": {}, \"peak_bytes\": {}, \"alloc_bytes\": {}, \
         \"freed_bytes\": {}, \"allocs\": {}, \"frees\": {}, \"exact_fraction\": {:.4}, \
         \"mean_alloc_bytes\": {:.2}, \"p99_alloc_bytes\": {}, \
         \"trigger_period\": {}, \"trigger_heap\": {}}},",
        hp.live,
        hp.peak,
        hp.alloc_bytes,
        hp.freed_bytes,
        hp.allocs,
        hp.frees,
        hp.exact_fraction(),
        hp.mean_alloc_bytes(),
        hp.size_quantile(0.99),
        hp.trigger_period,
        hp.trigger_heap,
    );
    out.push_str("  \"mailboxes\": [\n");
    let n = snap.per_pe.len();
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"pe\": {pe}, \"depth\": {}, \"high_water\": {}}}{}",
            shard.gauge(GaugeId::MailboxDepth),
            shard.gauge(GaugeId::MailboxHighWater),
            if pe + 1 < n { "," } else { "" },
        );
    }
    out.push_str("  ],\n");
    // The scheduler observatory's per-PE breakdown: last-known state,
    // utilization against the state clock, and steal traffic.
    out.push_str("  \"scheduler\": [\n");
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let sched = shard.sched();
        let _ = writeln!(
            out,
            "    {{\"pe\": {pe}, \"state\": \"{}\", \"utilization\": {:.6}, \
             \"span_ns\": {}, \"work_ns\": {}, \"steals\": {}, \"stolen_from\": {}, \
             \"parks\": {}}}{}",
            sched.current.map(|s| s.name()).unwrap_or("idle"),
            sched.utilization(),
            sched.span_ns,
            sched.state_ns(SchedState::Work),
            shard.counter(CounterId::Steals),
            shard.counter(CounterId::StolenFrom),
            shard.counter(CounterId::Parks),
            if pe + 1 < n { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Routes one request path to its response. Pure: no IO, no health
/// mutation; the caller records the scrape.
pub fn respond(path: &str, hub: &ObserveHub) -> Response {
    // Strip any query string: scrapers add ?format= and friends.
    let route = path.split('?').next().unwrap_or(path);
    match route {
        "/metrics" => Response::new(200, prom::CONTENT_TYPE, prom::render(hub)),
        "/status" => Response::new(200, "application/json", status_json(hub)),
        "/healthz" => match hub.health() {
            Health::Ok => Response::new(200, "text/plain", "ok\n".to_string()),
            Health::Degraded(r) => Response::new(503, "text/plain", format!("degraded: {r}\n")),
        },
        "/graph.dot" => {
            let dot = hub.dot();
            let body = if dot.is_empty() {
                "digraph dgr { /* no snapshot published yet */ }\n".to_string()
            } else {
                dot
            };
            Response::new(200, "text/vnd.graphviz", body)
        }
        _ => Response::new(
            404,
            "text/plain",
            "not found; routes: /metrics /status /healthz /graph.dot\n".to_string(),
        ),
    }
}

/// The running exporter: a bound listener plus its accept-loop thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    hub: Arc<ObserveHub>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving the hub on a background thread.
    pub fn bind<A: ToSocketAddrs>(addr: A, hub: Arc<ObserveHub>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let hub2 = Arc::clone(&hub);
        let handle = thread::Builder::new()
            .name("dgr-observe-http".into())
            .spawn(move || accept_loop(listener, hub2))?;
        Ok(Server {
            addr: local,
            hub,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread. Also asks the
    /// watchdog (which shares the hub's flag) to wind down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.hub.request_shutdown();
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, hub: Arc<ObserveHub>) {
    for stream in listener.incoming() {
        if hub.is_shutdown() {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: scrapes are small, rare and read-only, so one
        // slow client at a time is acceptable and keeps this threadless.
        let _ = serve_one(stream, &hub);
    }
}

fn serve_one(stream: TcpStream, hub: &ObserveHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // "GET /path HTTP/1.1" — anything else falls through to 404.
    let path = {
        let mut parts = request_line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("GET"), Some(p)) => p.to_string(),
            _ => String::new(),
        }
    };
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    hub.record_scrape();
    let response = respond(&path, hub);
    let mut stream = reader.into_inner();
    stream.write_all(response.to_http().as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::CensusSnapshot;

    #[test]
    fn routes_answer_without_a_socket() {
        let hub = ObserveHub::new();
        hub.publish_census(CensusSnapshot {
            vital: 2,
            eager: 1,
            reserve: 0,
            irrelevant: 3,
            dangling: 0,
        });
        let m = respond("/metrics", &hub);
        assert_eq!(m.status, 200);
        assert!(m.body.contains("dgr_task_census{class=\"vital\"} 2"));
        let s = respond("/status?pretty", &hub);
        assert_eq!(s.status, 200);
        assert!(s.body.contains("\"healthy\": true"));
        assert!(s.body.contains("\"total\": 6"));
        assert_eq!(respond("/healthz", &hub).status, 200);
        hub.set_health(Health::Degraded("stall: test".into()));
        let h = respond("/healthz", &hub);
        assert_eq!(h.status, 503);
        assert!(h.body.contains("stall: test"));
        let d = respond("/graph.dot", &hub);
        assert_eq!(d.status, 200);
        assert!(d.body.starts_with("digraph"));
        assert_eq!(respond("/nope", &hub).status, 404);
    }

    #[test]
    fn http_serialization_carries_length_and_reason() {
        let r = Response::new(503, "text/plain", "degraded\n".into());
        let http = r.to_http();
        assert!(http.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(http.contains("Content-Length: 9\r\n"));
        assert!(http.ends_with("\r\n\r\ndegraded\n"));
    }

    #[test]
    fn status_json_breaks_the_scheduler_down_per_pe() {
        use dgr_telemetry::active::Registry;
        let hub = ObserveHub::new();
        let reg = Registry::new(2);
        reg.sched_enter(0, SchedState::Work);
        std::thread::sleep(Duration::from_millis(1));
        reg.sched_finish(0);
        reg.sched_enter(1, SchedState::Park);
        reg.pe(1).inc(CounterId::Steals);
        hub.publish_metrics(reg.snapshot());
        let s = status_json(&hub);
        assert!(s.contains("\"scheduler\": ["), "got: {s}");
        assert!(s.contains("{\"pe\": 0, \"state\": \"idle\""));
        assert!(s.contains("{\"pe\": 1, \"state\": \"park\""));
        assert!(s.contains("\"steals\": 1"));
        assert!(s.contains("\"utilization\": 1.000000"));
    }

    #[test]
    fn status_json_carries_the_lifecycle_summary() {
        use dgr_telemetry::LifecycleSnapshot;
        let hub = ObserveHub::new();
        let s = status_json(&hub);
        assert!(
            s.contains("\"lifecycle\": {\"reclaimed\": 0, \"exact_fraction\": 1.0000"),
            "got: {s}"
        );
        hub.publish_lifecycle(LifecycleSnapshot {
            reclaimed: 10,
            exact: 10,
            latency_sum: 20,
            float_now: 3,
            msgs_mr: 40,
            bound: 50,
            cycles: 2,
            ..Default::default()
        });
        let s = status_json(&hub);
        assert!(s.contains("\"mean_latency_cycles\": 2.000"), "got: {s}");
        assert!(s.contains("\"float_now\": 3"));
        assert!(s.contains("\"msgs_per_reclaimed_mr\": 4.000"));
        assert!(s.contains("\"marking_efficiency\": 0.8000"));
    }

    #[test]
    fn status_json_carries_the_heap_summary() {
        use dgr_telemetry::HeapSnapshot;
        let hub = ObserveHub::new();
        let s = status_json(&hub);
        assert!(
            s.contains("\"heap\": {\"live_bytes\": 0, \"peak_bytes\": 0"),
            "got: {s}"
        );
        let mut size = [0u64; dgr_telemetry::HIST_BUCKETS];
        size[6] = 4; // four 32..=63-byte allocations
        hub.publish_heap(HeapSnapshot {
            live: 96,
            peak: 128,
            alloc_bytes: 128,
            freed_bytes: 32,
            allocs: 4,
            frees: 1,
            exact_frees: 1,
            exact_bytes: 32,
            size,
            size_count: 4,
            size_sum: 128,
            size_max: 32,
            trigger_period: 2,
            trigger_heap: 3,
            cycles: 5,
            ..Default::default()
        });
        let s = status_json(&hub);
        assert!(s.contains("\"live_bytes\": 96"), "got: {s}");
        assert!(s.contains("\"peak_bytes\": 128"));
        assert!(s.contains("\"exact_fraction\": 1.0000"));
        assert!(s.contains("\"mean_alloc_bytes\": 32.00"));
        assert!(s.contains("\"trigger_heap\": 3"));
    }

    #[test]
    fn status_json_escapes_the_degraded_reason() {
        let hub = ObserveHub::new();
        hub.set_health(Health::Degraded("bad \"state\"".into()));
        let s = status_json(&hub);
        assert!(s.contains("\"degraded_reason\": \"bad \\\"state\\\"\""));
    }
}
