//! The shared state the live plane serves: drivers and harnesses
//! *publish* into an [`ObserveHub`]; the HTTP server and the watchdog
//! *read* from it on their own threads.
//!
//! Publishing is push-based on purpose: the GC driver and the reduction
//! system are `!Sync` by design, so the scrape path can never reach into
//! them. Instead the driving loop copies out cheap snapshots (a
//! [`MetricsSnapshot`] is a few arrays) once per cycle, and the drivers
//! beat the hub's [`Heartbeat`] through the zero-cost
//! `HeartbeatHandle` facade.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dgr_telemetry::heartbeat::Heartbeat;
use dgr_telemetry::{Event, HeapSnapshot, HeartbeatHandle, LifecycleSnapshot, MetricsSnapshot};

/// Bound on the event tail kept for watchdog flight dumps.
pub const EVENT_TAIL_CAP: usize = 4096;

/// The task census published per cycle (mirrors `gc::TaskCensus`, kept
/// as a plain struct here so the observability plane depends on nothing
/// above the telemetry crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CensusSnapshot {
    /// Tasks whose destination is vitally marked (Property 3).
    pub vital: usize,
    /// Tasks whose destination is eagerly marked (Property 4).
    pub eager: usize,
    /// Tasks whose destination is reserve-marked (Property 5).
    pub reserve: usize,
    /// Tasks whose destination is garbage (Property 6).
    pub irrelevant: usize,
    /// Tasks whose destination is already freed (bug indicator).
    pub dangling: usize,
}

impl CensusSnapshot {
    /// Total pending tasks in the census.
    pub fn total(&self) -> usize {
        self.vital + self.eager + self.reserve + self.irrelevant + self.dangling
    }
}

/// Aggregate GC progress published per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcProgress {
    /// Completed mark-and-restructure cycles.
    pub cycles: u64,
    /// Cycles abandoned on the phase budget.
    pub aborted: u64,
    /// Garbage vertices returned to the free list, total.
    pub reclaimed: u64,
    /// Irrelevant tasks expunged, total.
    pub expunged: u64,
    /// Pending tasks moved between priority lanes, total.
    pub relaned: u64,
    /// Deadlocked vertices reported, total.
    pub deadlocked: u64,
}

/// Health as the watchdog last judged it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Health {
    /// Steady state.
    #[default]
    Ok,
    /// The watchdog saw a stall or a runaway; the string says which.
    Degraded(String),
}

impl Health {
    /// `true` in steady state.
    pub fn is_ok(&self) -> bool {
        matches!(self, Health::Ok)
    }
}

/// The shared state behind the live plane: one per exported process.
#[derive(Debug)]
pub struct ObserveHub {
    t0: Instant,
    heartbeat: Arc<Heartbeat>,
    metrics: Mutex<MetricsSnapshot>,
    census: Mutex<CensusSnapshot>,
    gc: Mutex<GcProgress>,
    lifecycle: Mutex<LifecycleSnapshot>,
    heap: Mutex<HeapSnapshot>,
    dot: Mutex<String>,
    events: Mutex<VecDeque<Event>>,
    health: Mutex<Health>,
    incidents: AtomicU64,
    scrapes: AtomicU64,
    shutdown: AtomicBool,
}

impl Default for ObserveHub {
    fn default() -> Self {
        ObserveHub::new()
    }
}

impl ObserveHub {
    /// A fresh hub with an idle heartbeat and empty snapshots.
    pub fn new() -> Self {
        ObserveHub {
            t0: Instant::now(),
            heartbeat: Arc::new(Heartbeat::new()),
            metrics: Mutex::new(MetricsSnapshot::default()),
            census: Mutex::new(CensusSnapshot::default()),
            gc: Mutex::new(GcProgress::default()),
            lifecycle: Mutex::new(LifecycleSnapshot::default()),
            heap: Mutex::new(HeapSnapshot::default()),
            dot: Mutex::new(String::new()),
            events: Mutex::new(VecDeque::new()),
            health: Mutex::new(Health::Ok),
            incidents: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Seconds this hub has been alive.
    pub fn uptime_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// The concrete shared pulse (what the watchdog polls).
    pub fn heartbeat(&self) -> &Arc<Heartbeat> {
        &self.heartbeat
    }

    /// A facade handle on this hub's pulse, for wiring into drivers
    /// (`GcDriver::attach_heartbeat`, `ThreadedRuntime::run_observed`).
    /// Zero-sized — and silent — in a default (no-`telemetry`) build.
    pub fn heartbeat_handle(&self) -> HeartbeatHandle {
        HeartbeatHandle::from_shared(Arc::clone(&self.heartbeat))
    }

    /// Publishes the latest metrics snapshot (replaces the previous one).
    pub fn publish_metrics(&self, snap: MetricsSnapshot) {
        *self.metrics.lock().expect("hub metrics poisoned") = snap;
    }

    /// The most recently published metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.lock().expect("hub metrics poisoned").clone()
    }

    /// Publishes the latest task census.
    pub fn publish_census(&self, census: CensusSnapshot) {
        *self.census.lock().expect("hub census poisoned") = census;
    }

    /// The most recently published census.
    pub fn census(&self) -> CensusSnapshot {
        *self.census.lock().expect("hub census poisoned")
    }

    /// Publishes aggregate GC progress.
    pub fn publish_gc(&self, gc: GcProgress) {
        *self.gc.lock().expect("hub gc poisoned") = gc;
    }

    /// The most recently published GC progress.
    pub fn gc(&self) -> GcProgress {
        *self.gc.lock().expect("hub gc poisoned")
    }

    /// Publishes the latest vertex-lifecycle snapshot
    /// (`GcDriver::lifecycle_snapshot`, copied out once per cycle like
    /// the metrics snapshot).
    pub fn publish_lifecycle(&self, snap: LifecycleSnapshot) {
        *self.lifecycle.lock().expect("hub lifecycle poisoned") = snap;
    }

    /// The most recently published lifecycle snapshot.
    pub fn lifecycle(&self) -> LifecycleSnapshot {
        self.lifecycle
            .lock()
            .expect("hub lifecycle poisoned")
            .clone()
    }

    /// Publishes the latest heap snapshot (`System::heap_snapshot`,
    /// copied out once per cycle like the metrics snapshot).
    pub fn publish_heap(&self, snap: HeapSnapshot) {
        *self.heap.lock().expect("hub heap poisoned") = snap;
    }

    /// The most recently published heap snapshot.
    pub fn heap(&self) -> HeapSnapshot {
        self.heap.lock().expect("hub heap poisoned").clone()
    }

    /// Publishes a bounded DOT snapshot of the live graph.
    pub fn publish_dot(&self, dot: String) {
        *self.dot.lock().expect("hub dot poisoned") = dot;
    }

    /// The most recently published DOT snapshot (empty until one is
    /// published).
    pub fn dot(&self) -> String {
        self.dot.lock().expect("hub dot poisoned").clone()
    }

    /// Appends drained events to the bounded tail kept for flight dumps
    /// (oldest dropped beyond [`EVENT_TAIL_CAP`]).
    pub fn publish_events(&self, events: Vec<Event>) {
        let mut tail = self.events.lock().expect("hub events poisoned");
        for e in events {
            if tail.len() == EVENT_TAIL_CAP {
                tail.pop_front();
            }
            tail.push_back(e);
        }
    }

    /// A copy of the retained event tail, oldest first.
    pub fn event_tail(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("hub events poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The current health verdict.
    pub fn health(&self) -> Health {
        self.health.lock().expect("hub health poisoned").clone()
    }

    /// Overwrites the health verdict (the watchdog's job). Returns the
    /// previous verdict so the caller can detect transitions.
    pub fn set_health(&self, h: Health) -> Health {
        let mut g = self.health.lock().expect("hub health poisoned");
        std::mem::replace(&mut *g, h)
    }

    /// Watchdog incidents so far (healthy → degraded transitions).
    pub fn incidents(&self) -> u64 {
        self.incidents.load(Ordering::Relaxed)
    }

    /// Records one watchdog incident.
    pub fn record_incident(&self) {
        self.incidents.fetch_add(1, Ordering::Relaxed);
    }

    /// Scrapes served so far (any endpoint).
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Records one served scrape.
    pub fn record_scrape(&self) {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
    }

    /// `true` once [`ObserveHub::request_shutdown`] ran: the server's
    /// accept loop and the watchdog's poll loop exit on seeing it.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Asks every thread reading this hub to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read_round_trip() {
        let hub = ObserveHub::new();
        assert!(hub.health().is_ok());
        assert_eq!(hub.census().total(), 0);
        hub.publish_census(CensusSnapshot {
            vital: 1,
            eager: 2,
            reserve: 3,
            irrelevant: 4,
            dangling: 0,
        });
        assert_eq!(hub.census().total(), 10);
        hub.publish_gc(GcProgress {
            cycles: 7,
            ..Default::default()
        });
        assert_eq!(hub.gc().cycles, 7);
        hub.publish_dot("digraph g {}".into());
        assert_eq!(hub.dot(), "digraph g {}");
        let prev = hub.set_health(Health::Degraded("stall".into()));
        assert!(prev.is_ok());
        assert!(!hub.health().is_ok());
        assert!(hub.uptime_s() >= 0.0);
    }

    #[test]
    fn event_tail_is_bounded() {
        use dgr_telemetry::{EventKind, Phase};
        let hub = ObserveHub::new();
        let ev = |i: u64| Event {
            ts_us: i,
            pe: 0,
            cycle: 0,
            phase: Phase::Gc,
            kind: EventKind::Instant,
            name: "x",
            value: i,
            lamport: 0,
        };
        hub.publish_events((0..EVENT_TAIL_CAP as u64 + 10).map(ev).collect());
        let tail = hub.event_tail();
        assert_eq!(tail.len(), EVENT_TAIL_CAP);
        assert_eq!(tail[0].value, 10, "oldest events dropped first");
    }

    #[test]
    fn heartbeat_handle_reaches_the_shared_pulse_iff_enabled() {
        let hub = ObserveHub::new();
        let handle = hub.heartbeat_handle();
        handle.progress(5);
        let expected = if handle.enabled() { 5 } else { 0 };
        assert_eq!(hub.heartbeat().progress_total(), expected);
    }
}
