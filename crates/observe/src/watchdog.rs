//! The progress watchdog: decides, from the hub's heartbeat and the
//! published metrics, whether the marking machinery is still alive.
//!
//! Two failure shapes are supervised (§11 of DESIGN.md):
//!
//! * **Stall** — a marking phase is in force but no delivery progress
//!   and no phase transition has beaten the heartbeat for longer than
//!   the deadline. A healthy M_T/M_R phase beats on every batch of
//!   deliveries, so silence past the deadline means the wave is stuck.
//! * **Runaway** — some PE's mailbox high-water gauge exceeds its
//!   limit: deliveries are still happening but the backlog is growing
//!   without bound, the precursor of memory exhaustion.
//!
//! A heartbeat with zero beats means no instrumented driver ever
//! attached (e.g. a default, no-`telemetry` build where the facade
//! handle is the no-op) — that is *nothing to supervise*, not a stall,
//! so feature-off processes always report healthy.
//!
//! On the healthy → degraded transition the watchdog records an
//! incident and writes a flight dump (the hub's retained event tail
//! plus the latest metrics snapshot) via the always-compiled
//! [`dgr_telemetry::flight`] recorder, landing in `$DGR_FLIGHT_DIR`.
//! Recovery (a fresh beat, a drained mailbox) flips health back
//! automatically; the incident counter is monotone.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dgr_telemetry::{write_flight, GaugeId};

use crate::hub::{Health, ObserveHub};

/// Watchdog deadlines and limits.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// A phase in force with no beat for this long is a stall.
    pub stall_timeout_ms: u64,
    /// A per-PE mailbox high-water above this is a runaway.
    pub mailbox_hw_limit: i64,
    /// How often the poll loop re-judges health.
    pub poll_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_timeout_ms: 2_000,
            mailbox_hw_limit: 1 << 20,
            poll_ms: 100,
        }
    }
}

/// Judges health from the hub's current state. Pure with respect to the
/// hub (no health mutation, no IO) so tests can call it directly.
pub fn judge(hub: &ObserveHub, cfg: &WatchdogConfig) -> Health {
    let hb = hub.heartbeat();
    if hb.beats() == 0 {
        // No instrumented driver ever attached: nothing to supervise.
        return Health::Ok;
    }
    if hb.phase().is_some() {
        let silence_us = hb.now_us().saturating_sub(hb.last_beat_us());
        if silence_us > cfg.stall_timeout_ms.saturating_mul(1_000) {
            return Health::Degraded(format!(
                "stall: cycle {} phase {} silent for {} ms (deadline {} ms, {} deliveries total)",
                hb.cycle(),
                hb.phase().map(|p| p.name()).unwrap_or("?"),
                silence_us / 1_000,
                cfg.stall_timeout_ms,
                hb.progress_total(),
            ));
        }
    }
    let snap = hub.metrics();
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let hw = shard.gauge(GaugeId::MailboxHighWater);
        if hw > cfg.mailbox_hw_limit {
            return Health::Degraded(format!(
                "runaway: pe {pe} mailbox high-water {hw} exceeds limit {}",
                cfg.mailbox_hw_limit,
            ));
        }
    }
    Health::Ok
}

/// Runs one watchdog check: judges health, publishes the verdict on the
/// hub, and on the healthy → degraded transition records an incident and
/// writes a flight dump. Returns the verdict.
pub fn check_now(hub: &ObserveHub, cfg: &WatchdogConfig) -> Health {
    let verdict = judge(hub, cfg);
    let previous = hub.set_health(verdict.clone());
    if let (true, Health::Degraded(reason)) = (previous.is_ok(), &verdict) {
        hub.record_incident();
        let events = hub.event_tail();
        let snap = hub.metrics();
        // Failure to write the dump must not take down the watchdog —
        // the degraded verdict (and /healthz 503) still stands.
        let _ = write_flight(reason, 0, &events, 0, &snap, &[]);
    }
    verdict
}

/// Spawns the poll loop on its own thread; it re-judges every
/// `cfg.poll_ms` until the hub requests shutdown.
pub fn spawn(hub: Arc<ObserveHub>, cfg: WatchdogConfig) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("dgr-watchdog".into())
        .spawn(move || {
            while !hub.is_shutdown() {
                check_now(&hub, &cfg);
                thread::sleep(Duration::from_millis(cfg.poll_ms));
            }
        })
        .expect("spawn watchdog thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_telemetry::metrics::{HistSnapshot, MetricsSnapshot, PeSnapshot};
    use dgr_telemetry::{CounterId, HistId, Phase};

    #[test]
    fn an_idle_unattached_hub_is_healthy() {
        let hub = ObserveHub::new();
        let cfg = WatchdogConfig {
            stall_timeout_ms: 0,
            ..Default::default()
        };
        // Even a zero deadline cannot degrade a pulse that never beat.
        assert!(check_now(&hub, &cfg).is_ok());
        assert_eq!(hub.incidents(), 0);
    }

    #[test]
    fn a_silent_phase_past_deadline_is_a_stall() {
        let hub = ObserveHub::new();
        hub.heartbeat().begin_phase(1, Phase::Mt);
        let cfg = WatchdogConfig {
            stall_timeout_ms: 0,
            ..Default::default()
        };
        std::thread::sleep(Duration::from_millis(5));
        let verdict = check_now(&hub, &cfg);
        match verdict {
            Health::Degraded(r) => assert!(r.starts_with("stall:"), "got: {r}"),
            Health::Ok => panic!("silent phase past deadline judged healthy"),
        }
        assert_eq!(hub.incidents(), 1);
        // Still degraded on the next check, but no second incident.
        assert!(!check_now(&hub, &cfg).is_ok());
        assert_eq!(hub.incidents(), 1, "incidents count transitions only");
        // A fresh beat recovers health.
        hub.heartbeat().end_phase();
        assert!(check_now(&hub, &cfg).is_ok());
        assert!(hub.health().is_ok());
    }

    #[test]
    fn a_runaway_mailbox_degrades_even_between_phases() {
        let hub = ObserveHub::new();
        hub.heartbeat().cycle_done();
        let mut gauges = [0i64; GaugeId::COUNT];
        gauges[GaugeId::MailboxHighWater.index()] = 501;
        let shard = PeSnapshot::from_parts(
            [0; CounterId::COUNT],
            gauges,
            [HistSnapshot::default(); HistId::COUNT],
        );
        hub.publish_metrics(MetricsSnapshot {
            per_pe: vec![PeSnapshot::default(), shard],
        });
        let cfg = WatchdogConfig {
            mailbox_hw_limit: 500,
            ..Default::default()
        };
        match check_now(&hub, &cfg) {
            Health::Degraded(r) => {
                assert!(r.starts_with("runaway: pe 1"), "got: {r}");
            }
            Health::Ok => panic!("runaway high-water judged healthy"),
        }
    }
}
