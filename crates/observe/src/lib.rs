//! dgr-observe: the live observability plane for the distributed
//! graph-reduction runtime — a dependency-free Prometheus exporter, a
//! status endpoint, and a progress watchdog, all over `std::net`.
//!
//! # Architecture
//!
//! The plane is **push-based**. The GC driver and the reduction system
//! are `!Sync` by design, so nothing here ever reaches into them;
//! instead the driving loop (a soak harness, a bench binary) publishes
//! cheap snapshots into an [`ObserveHub`] once per cycle, and the
//! instrumented drivers beat the hub's shared
//! [`Heartbeat`](dgr_telemetry::Heartbeat) through the zero-cost
//! `HeartbeatHandle` facade. Two background threads only ever *read*
//! the hub:
//!
//! * the HTTP [`Server`] serves `/metrics`, `/status`, `/healthz` and
//!   `/graph.dot` from the latest published state;
//! * the [`watchdog`] re-judges health on a poll interval, flipping
//!   `/healthz` to 503 and writing a flight dump (event tail + metrics
//!   snapshot, to `$DGR_FLIGHT_DIR`) when a marking phase stalls past
//!   its deadline or a mailbox high-water runs away.
//!
//! # Features
//!
//! The hub, exporter, server and watchdog are always real — they work
//! on the always-compiled concrete types of `dgr-telemetry`. The
//! forwarded `telemetry` feature only decides whether the
//! `HeartbeatHandle` the drivers hold is the recording `Arc` or the
//! zero-sized no-op; with it off, a hub's pulse never beats and the
//! watchdog correctly judges "nothing to supervise".
//!
//! ```no_run
//! use std::sync::Arc;
//! use dgr_observe::{ObserveHub, Server, watchdog, WatchdogConfig};
//!
//! let hub = Arc::new(ObserveHub::new());
//! let server = Server::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
//! let dog = watchdog::spawn(Arc::clone(&hub), WatchdogConfig::default());
//! println!("scrape http://{}/metrics", server.addr());
//! // ... drive cycles, hub.publish_metrics(...) each one ...
//! server.shutdown(); // also winds the watchdog down via the shared flag
//! dog.join().unwrap();
//! ```

pub mod hub;
pub mod prom;
pub mod server;
pub mod watchdog;

pub use hub::{CensusSnapshot, GcProgress, Health, ObserveHub, EVENT_TAIL_CAP};
pub use prom::{render, render_snapshot};
pub use server::{respond, status_json, Response, Server};
pub use watchdog::{check_now, judge, WatchdogConfig};
