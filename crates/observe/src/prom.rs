//! Prometheus text exposition (format version 0.0.4) of the telemetry
//! snapshot plus the hub's own liveness state.
//!
//! Rendering is fully deterministic: metric families are emitted in the
//! fixed order of the closed `CounterId`/`GaugeId`/`HistId` enums, PEs
//! in shard order, buckets in edge order — two renders of the same
//! snapshot are byte-identical, which the golden scrape test pins.
//! Every name is `dgr_`-prefixed snake case, so the exposition passes
//! the Prometheus name charset (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by
//! construction; a test lints this anyway.

use std::fmt::Write as _;

use dgr_telemetry::metrics::{bucket_upper_edge, HistSnapshot, MetricsSnapshot, HIST_BUCKETS};
use dgr_telemetry::{CounterId, GaugeId, HistId, SchedState};

use crate::hub::ObserveHub;

/// The quantiles exported per histogram family.
pub const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

/// `Content-Type` of the exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the per-PE counters, gauges and (merged) histograms of a
/// snapshot. Exposed separately from [`render`] so tests can scrape a
/// hand-built snapshot without a hub.
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for id in CounterId::ALL {
        let name = format!("dgr_{}_total", id.name());
        family(&mut out, &name, counter_help(id), "counter");
        for (pe, shard) in snap.per_pe.iter().enumerate() {
            let _ = writeln!(out, "{name}{{pe=\"{pe}\"}} {}", shard.counter(id));
        }
    }
    for id in GaugeId::ALL {
        let name = format!("dgr_{}", id.name());
        family(&mut out, &name, gauge_help(id), "gauge");
        for (pe, shard) in snap.per_pe.iter().enumerate() {
            let _ = writeln!(out, "{name}{{pe=\"{pe}\"}} {}", shard.gauge(id));
        }
    }
    let merged = snap.merged();
    for id in HistId::ALL {
        let name = format!("dgr_{}", id.name());
        let h = merged.hist(id);
        family(&mut out, &name, hist_help(id), "histogram");
        let mut cum = 0u64;
        for i in 0..HIST_BUCKETS {
            cum += h.buckets[i];
            let le = if i == HIST_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper_edge(i).to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        render_quantiles(&mut out, &name, h);
    }
    render_sched(&mut out, snap);
    out
}

/// Renders the scheduler-observatory families: per-(PE, state) clock
/// nanoseconds, per-PE episode spans, utilization, and steal rate.
fn render_sched(out: &mut String, snap: &MetricsSnapshot) {
    family(
        out,
        "dgr_sched_state_ns_total",
        "Nanoseconds the PE's scheduler spent in each state",
        "counter",
    );
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        for s in SchedState::ALL {
            let _ = writeln!(
                out,
                "dgr_sched_state_ns_total{{pe=\"{pe}\",state=\"{}\"}} {}",
                s.name(),
                shard.sched().state_ns(s)
            );
        }
    }
    family(
        out,
        "dgr_sched_span_ns",
        "Wall nanoseconds of the PE's scheduler episode (first enter to last transition)",
        "gauge",
    );
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let _ = writeln!(
            out,
            "dgr_sched_span_ns{{pe=\"{pe}\"}} {}",
            shard.sched().span_ns
        );
    }
    family(
        out,
        "dgr_pe_utilization",
        "Fraction of the PE's accounted scheduler time spent executing tasks",
        "gauge",
    );
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let _ = writeln!(
            out,
            "dgr_pe_utilization{{pe=\"{pe}\"}} {:.6}",
            shard.sched().utilization()
        );
    }
    family(
        out,
        "dgr_steal_rate",
        "Successful steals per second of the PE's scheduler episode",
        "gauge",
    );
    for (pe, shard) in snap.per_pe.iter().enumerate() {
        let span_s = shard.sched().span_ns as f64 / 1e9;
        let rate = if span_s > 0.0 {
            shard.counter(CounterId::Steals) as f64 / span_s
        } else {
            0.0
        };
        let _ = writeln!(out, "dgr_steal_rate{{pe=\"{pe}\"}} {rate:.3}");
    }
}

/// Renders the vertex-lifecycle families published by the GC driver:
/// reclamation-latency histogram, float census, and per-reclaim message
/// cost against the Section 4 bound.
fn render_lifecycle(out: &mut String, hub: &ObserveHub) {
    let lc = hub.lifecycle();
    let name = "dgr_gc_reclaim_latency_cycles";
    family(
        out,
        name,
        "Cycles from a vertex's first dead census to its reclamation (exact stamps only)",
        "histogram",
    );
    let mut cum = 0u64;
    for i in 0..HIST_BUCKETS {
        cum += lc.latency[i];
        let le = if i == HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            bucket_upper_edge(i).to_string()
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_sum {}", lc.latency_sum);
    let _ = writeln!(out, "{name}_count {}", lc.exact);

    family(
        out,
        "dgr_gc_float_count",
        "Vertices dead but not yet reclaimed after the last closed cycle",
        "gauge",
    );
    let _ = writeln!(out, "dgr_gc_float_count {}", lc.float_now);

    family(
        out,
        "dgr_gc_msgs_per_reclaimed",
        "Marking messages per reclaimed vertex, split by marking tree",
        "gauge",
    );
    let (mt, mr) = lc.msgs_per_reclaimed();
    let _ = writeln!(out, "dgr_gc_msgs_per_reclaimed{{kind=\"mt\"}} {mt:.3}");
    let _ = writeln!(out, "dgr_gc_msgs_per_reclaimed{{kind=\"mr\"}} {mr:.3}");

    family(
        out,
        "dgr_gc_marking_efficiency",
        "Observed marking messages over the Section 4 bound (<= 1 is within budget)",
        "gauge",
    );
    let _ = writeln!(out, "dgr_gc_marking_efficiency {:.4}", lc.efficiency());
}

/// Renders the heap-observatory families published by the system: per-PE
/// live/peak byte clocks, allocation meters, the allocation-size
/// histogram, and the trigger-cause tallies.
fn render_heap(out: &mut String, hub: &ObserveHub) {
    let hp = hub.heap();
    family(
        out,
        "dgr_heap_live_bytes",
        "Bytes of live graph vertices owned by the PE right now",
        "gauge",
    );
    for (pe, p) in hp.per_pe.iter().enumerate() {
        let _ = writeln!(out, "dgr_heap_live_bytes{{pe=\"{pe}\"}} {}", p.live);
    }
    family(
        out,
        "dgr_heap_peak_bytes",
        "Largest live-byte waterline the PE has reached this episode",
        "gauge",
    );
    for (pe, p) in hp.per_pe.iter().enumerate() {
        let _ = writeln!(out, "dgr_heap_peak_bytes{{pe=\"{pe}\"}} {}", p.peak);
    }
    family(
        out,
        "dgr_heap_alloc_bytes_total",
        "Bytes ever allocated on the PE (cumulative, never decreases)",
        "counter",
    );
    for (pe, p) in hp.per_pe.iter().enumerate() {
        let _ = writeln!(
            out,
            "dgr_heap_alloc_bytes_total{{pe=\"{pe}\"}} {}",
            p.alloc_bytes
        );
    }
    let name = "dgr_heap_size_bytes";
    family(
        out,
        name,
        "Bytes per vertex allocation (merged over PEs)",
        "histogram",
    );
    let mut cum = 0u64;
    for i in 0..HIST_BUCKETS {
        cum += hp.size[i];
        let le = if i == HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            bucket_upper_edge(i).to_string()
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_sum {}", hp.size_sum);
    let _ = writeln!(out, "{name}_count {}", hp.size_count);
    let h = HistSnapshot {
        buckets: hp.size,
        count: hp.size_count,
        sum: hp.size_sum,
        max: hp.size_max,
    };
    render_quantiles(out, name, &h);

    family(
        out,
        "dgr_gc_trigger_total",
        "Marking cycles started, by what fired the trigger",
        "counter",
    );
    for (cause, v) in hp.triggers() {
        let _ = writeln!(out, "dgr_gc_trigger_total{{cause=\"{cause}\"}} {v}");
    }
}

fn render_quantiles(out: &mut String, name: &str, h: &HistSnapshot) {
    let qname = format!("{name}_quantile");
    family(
        out,
        &qname,
        "Power-of-two bucket quantile estimate (error bounded by the bucket edges)",
        "gauge",
    );
    for (label, q) in QUANTILES {
        let _ = writeln!(out, "{qname}{{q=\"{label}\"}} {}", h.quantile(q));
    }
}

/// Renders the full `/metrics` exposition for a hub: the published
/// snapshot, the census, GC progress, heartbeat state, and the plane's
/// own meta-metrics.
pub fn render(hub: &ObserveHub) -> String {
    let snap = hub.metrics();
    let mut out = render_snapshot(&snap);

    let census = hub.census();
    family(
        &mut out,
        "dgr_task_census",
        "Pending request tasks by Figure 3-3 class, from the latest completed cycle",
        "gauge",
    );
    for (class, v) in [
        ("vital", census.vital),
        ("eager", census.eager),
        ("reserve", census.reserve),
        ("irrelevant", census.irrelevant),
        ("dangling", census.dangling),
    ] {
        let _ = writeln!(out, "dgr_task_census{{class=\"{class}\"}} {v}");
    }

    let gc = hub.gc();
    for (name, help, v) in [
        (
            "dgr_gc_cycles_total",
            "Completed mark-and-restructure cycles",
            gc.cycles,
        ),
        (
            "dgr_gc_cycles_aborted_total",
            "Cycles abandoned on the phase budget",
            gc.aborted,
        ),
        (
            "dgr_gc_reclaimed_total",
            "Garbage vertices returned to the free list",
            gc.reclaimed,
        ),
        (
            "dgr_gc_expunged_total",
            "Irrelevant tasks expunged from the pools",
            gc.expunged,
        ),
        (
            "dgr_gc_relaned_total",
            "Pending tasks moved between priority lanes",
            gc.relaned,
        ),
        (
            "dgr_gc_deadlocked_total",
            "Deadlocked vertices reported",
            gc.deadlocked,
        ),
    ] {
        family(&mut out, name, help, "counter");
        let _ = writeln!(out, "{name} {v}");
    }

    render_lifecycle(&mut out, hub);
    render_heap(&mut out, hub);

    let hb = hub.heartbeat();
    family(
        &mut out,
        "dgr_heartbeat_cycle",
        "GC cycle most recently begun by an attached driver",
        "gauge",
    );
    let _ = writeln!(out, "dgr_heartbeat_cycle {}", hb.cycle());
    family(
        &mut out,
        "dgr_heartbeat_phase_active",
        "1 while a marking phase is in force, 0 when idle",
        "gauge",
    );
    let _ = writeln!(
        out,
        "dgr_heartbeat_phase_active {}",
        u8::from(hb.phase().is_some())
    );
    family(
        &mut out,
        "dgr_heartbeat_phase_age_seconds",
        "Seconds the current phase has been in force",
        "gauge",
    );
    let _ = writeln!(
        out,
        "dgr_heartbeat_phase_age_seconds {:.6}",
        hb.phase_age_us() as f64 / 1e6
    );
    family(
        &mut out,
        "dgr_heartbeat_progress_total",
        "Deliveries reported by attached drivers",
        "counter",
    );
    let _ = writeln!(out, "dgr_heartbeat_progress_total {}", hb.progress_total());

    family(
        &mut out,
        "dgr_watchdog_healthy",
        "1 while the watchdog judges the system healthy",
        "gauge",
    );
    let _ = writeln!(
        out,
        "dgr_watchdog_healthy {}",
        u8::from(hub.health().is_ok())
    );
    family(
        &mut out,
        "dgr_watchdog_incidents_total",
        "Healthy-to-degraded transitions observed by the watchdog",
        "counter",
    );
    let _ = writeln!(out, "dgr_watchdog_incidents_total {}", hub.incidents());
    family(
        &mut out,
        "dgr_scrapes_total",
        "HTTP requests served by the exporter",
        "counter",
    );
    let _ = writeln!(out, "dgr_scrapes_total {}", hub.scrapes());
    family(
        &mut out,
        "dgr_uptime_seconds",
        "Seconds since the observability hub was created",
        "gauge",
    );
    let _ = writeln!(out, "dgr_uptime_seconds {:.3}", hub.uptime_s());
    out
}

fn counter_help(id: CounterId) -> &'static str {
    match id {
        CounterId::Tasks => "Messages handled by the threaded runtime (any kind)",
        CounterId::MarkEvents => "Marking-lane deliveries (mark + return tasks)",
        CounterId::RedEvents => "Reduction-lane deliveries",
        CounterId::MutEvents => "Mutator-lane deliveries",
        CounterId::SendsLocal => "Sends whose destination PE is the sending PE",
        CounterId::SendsRemote => "Sends that cross a PE boundary",
        CounterId::Batches => "Cross-PE batches flushed by the threaded runtime",
        CounterId::Parks => "Times a worker found its mailbox empty and parked",
        CounterId::Reclaimed => "Garbage vertices reclaimed by restructuring",
        CounterId::Expunged => "Irrelevant tasks expunged by restructuring",
        CounterId::Relaned => "Pending tasks moved to a different priority lane",
        CounterId::Steals => "Successful steal operations by the work-stealing runtime",
        CounterId::StealFails => "Steal attempts that found the victim empty or lost the race",
        CounterId::StolenFrom => "Successful steal operations with this PE as the victim",
        CounterId::StolenTasks => "Tasks taken from this PE's deque by thieves",
        CounterId::StealMisses => "Failed steal attempts against this PE as the victim",
    }
}

fn gauge_help(id: GaugeId) -> &'static str {
    match id {
        GaugeId::MailboxDepth => "Pending messages in the PE's mailboxes right now",
        GaugeId::MailboxHighWater => "Largest mailbox depth observed on the PE",
        GaugeId::DequeDepth => "Tasks in the PE's work-stealing deque right now",
        GaugeId::DequeHighWater => "Largest deque depth observed on the PE",
        GaugeId::SpillHighWater => "Largest private spill-stack depth observed on the PE",
    }
}

fn hist_help(id: HistId) -> &'static str {
    match id {
        HistId::BatchSize => "Messages per cross-PE batch (merged over PEs)",
        HistId::CycleUs => "Wall microseconds per completed marking cycle (merged over PEs)",
        HistId::StealBatch => "Tasks transferred per successful steal_half (merged over PEs)",
        HistId::DequeDepthPeak => "Per-pass deque-depth high-water per worker (merged over PEs)",
        HistId::ParkWakeUs => "Microseconds from a timed park to waking (merged over PEs)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_telemetry::active::Registry;

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let reg = Registry::new(1);
        for v in [1u64, 1, 5, 300] {
            reg.pe(0).observe(HistId::BatchSize, v);
        }
        let text = render_snapshot(&reg.snapshot());
        let inf: u64 = text
            .lines()
            .find(|l| l.starts_with("dgr_batch_size_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("+Inf bucket present");
        assert_eq!(inf, 4, "+Inf bucket holds every observation");
        assert!(text.contains("dgr_batch_size_count 4"));
        assert!(text.contains("dgr_batch_size_sum 307"));
        assert!(text.contains("dgr_batch_size_quantile{q=\"0.5\"}"));
    }

    #[test]
    fn sched_families_report_clock_and_rates() {
        let reg = Registry::new(2);
        reg.sched_enter(1, SchedState::Work);
        std::thread::sleep(std::time::Duration::from_millis(2));
        reg.sched_finish(1);
        reg.pe(1).inc(CounterId::Steals);
        let text = render_snapshot(&reg.snapshot());
        let work_ns: u64 = text
            .lines()
            .find(|l| l.starts_with("dgr_sched_state_ns_total{pe=\"1\",state=\"work\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("work state sample present");
        assert!(work_ns >= 2_000_000, "got {work_ns}");
        assert!(text.contains("dgr_pe_utilization{pe=\"1\"} 1.000000"));
        assert!(text.contains("dgr_pe_utilization{pe=\"0\"} 0.000000"));
        assert!(text.contains("dgr_steal_rate{pe=\"0\"} 0.000"));
        let rate: f64 = text
            .lines()
            .find(|l| l.starts_with("dgr_steal_rate{pe=\"1\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("steal rate sample present");
        assert!(rate > 0.0, "one steal over a positive span");
    }

    #[test]
    fn rendering_is_deterministic() {
        let reg = Registry::new(3);
        reg.pe(0).inc(CounterId::Tasks);
        reg.pe(2).gauge_set(GaugeId::MailboxDepth, 9);
        let snap = reg.snapshot();
        assert_eq!(render_snapshot(&snap), render_snapshot(&snap));
    }
}
