//! Sequential reachability oracle: ground truth for the marking processes.
//!
//! Everything the paper's Section 3 characterizes — `R`, the priority
//! classes `R_v` / `R_e` / `R_r`, the task-reachable set `T`, the garbage
//! set `GAR = V − R − F`, the deadlocked set `DL_v = R_v − T`, and the four
//! task classes of Properties 3–6 — is computed here by straightforward
//! (stop-the-world) traversal of a quiescent graph. The concurrent marking
//! processes in `dgr-core` are tested against this oracle, and the
//! stop-the-world baseline collector in `dgr-baseline` is built on it.

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;
use crate::store::GraphStore;
use crate::vertex::{Priority, RequestKind};

/// A dense set of vertices (bit set indexed by [`VertexId`]).
///
/// # Example
///
/// ```
/// use dgr_graph::{VertexId, VertexSet};
/// let mut s = VertexSet::with_capacity(10);
/// assert!(s.insert(VertexId::new(3)));
/// assert!(!s.insert(VertexId::new(3)));
/// assert!(s.contains(VertexId::new(3)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct VertexSet {
    bits: Vec<u64>,
    len: usize,
}

impl VertexSet {
    /// Creates a set able to hold vertices with indices `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        VertexSet {
            bits: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Inserts a vertex; returns `true` if it was not already present.
    pub fn insert(&mut self, v: VertexId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes a vertex; returns `true` if it was present.
    pub fn remove(&mut self, v: VertexId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if w >= self.bits.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.bits[w] & mask != 0 {
            self.bits[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        w < self.bits.len() && self.bits[w] & (1u64 << b) != 0
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over members in index order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| VertexId::new((w * 64 + b) as u32))
        })
    }
}

impl FromIterator<VertexId> for VertexSet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        let mut s = VertexSet::default();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<VertexId> for VertexSet {
    fn extend<I: IntoIterator<Item = VertexId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// The endpoints of the outstanding tasks, used to seed the `T` traversal.
///
/// The paper's construction introduces a virtual vertex `taskroot_i` per PE
/// whose args are "the source or destination of some task in taskpool(i)",
/// and a `troot` above them; here we simply collect the endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEndpoints {
    seeds: Vec<VertexId>,
}

impl TaskEndpoints {
    /// Creates an empty endpoint collection (a quiescent system).
    pub fn new() -> Self {
        TaskEndpoints::default()
    }

    /// Records a task `<s, d>`; `src` is `None` for the anonymous initial
    /// task `<-, root>`.
    pub fn push_task(&mut self, src: Option<VertexId>, dst: VertexId) {
        if let Some(s) = src {
            self.seeds.push(s);
        }
        self.seeds.push(dst);
    }

    /// Records a bare seed vertex.
    pub fn push_seed(&mut self, v: VertexId) {
        self.seeds.push(v);
    }

    /// All seed vertices (may contain duplicates).
    pub fn seeds(&self) -> &[VertexId] {
        &self.seeds
    }

    /// Returns `true` if no tasks were recorded.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

impl FromIterator<VertexId> for TaskEndpoints {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        TaskEndpoints {
            seeds: iter.into_iter().collect(),
        }
    }
}

/// Classification of a task `<s, d>` per Properties 3–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// `d ∈ R_v` — the result is known to be needed (Property 3).
    Vital,
    /// `d ∈ R_e − R_v` — speculatively demanded (Property 4).
    Eager,
    /// `d ∈ R_r − R_e − R_v` — destination still reachable but no longer
    /// requested (Property 5).
    Reserve,
    /// `d ∈ GAR` — the destination is garbage; the task should be expunged
    /// (Property 6).
    Irrelevant,
    /// `d ∈ F` — the destination was already reclaimed. Never produced by a
    /// correct system; reported rather than conflated with
    /// [`TaskClass::Irrelevant`] to surface bugs.
    Dangling,
}

/// `R` — vertices reachable from the root through `args` (and the vertices
/// computed structured values keep live).
pub fn reachable_r(g: &GraphStore) -> VertexSet {
    let mut set = VertexSet::with_capacity(g.capacity());
    let Some(root) = g.root() else { return set };
    let mut stack = vec![root];
    set.insert(root);
    while let Some(v) = stack.pop() {
        for c in g.vertex(v).r_children() {
            if set.insert(c) {
                stack.push(c);
            }
        }
    }
    set
}

/// The priority (`3`/`2`/`1` ≙ `R_v`/`R_e`/`R_r`) of every root-reachable
/// vertex: the maximum over root paths of the minimum request type along
/// the path. `None` for vertices not in `R`.
///
/// Computed by layered search: vertices reachable through vitally-requested
/// arcs only are `Vital`; of the rest, those reachable through requested
/// (vital or eager) arcs are `Eager`; the remaining reachable vertices are
/// `Reserve`.
pub fn priorities(g: &GraphStore) -> Vec<Option<Priority>> {
    type Admit = fn(Option<RequestKind>) -> bool;
    let mut prior: Vec<Option<Priority>> = vec![None; g.capacity()];
    let Some(root) = g.root() else { return prior };

    let passes: [(Priority, Admit); 3] = [
        (Priority::Vital, |k| k == Some(RequestKind::Vital)),
        (Priority::Eager, |k| k.is_some()),
        (Priority::Reserve, |_| true),
    ];
    for (level, admit) in passes {
        if prior[root.index()].is_none() {
            prior[root.index()] = Some(level);
        }
        let mut stack: Vec<VertexId> = prior
            .iter()
            .enumerate()
            .filter(|(_, p)| **p >= Some(level))
            .map(|(i, _)| VertexId::new(i as u32))
            .collect();
        while let Some(v) = stack.pop() {
            for (c, kind) in g.vertex(v).r_children_kinds() {
                if admit(kind)
                    && prior[c.index()].is_none_or(|p| p < level)
                    && prior[c.index()] != Some(level)
                {
                    prior[c.index()] = Some(level);
                    stack.push(c);
                }
            }
        }
    }
    prior
}

/// `T` — vertices to which task activity might propagate, traced from the
/// given task endpoints through `requested(v) ∪ (args(v) − req-args(v))`.
pub fn reachable_t(g: &GraphStore, tasks: &TaskEndpoints) -> VertexSet {
    let mut set = VertexSet::with_capacity(g.capacity());
    let mut stack = Vec::new();
    for &s in tasks.seeds() {
        if set.insert(s) {
            stack.push(s);
        }
    }
    while let Some(v) = stack.pop() {
        for c in g.vertex(v).t_children() {
            if set.insert(c) {
                stack.push(c);
            }
        }
    }
    set
}

/// `GAR = V − R − F` (Property 1).
pub fn garbage(g: &GraphStore, r: &VertexSet) -> VertexSet {
    g.ids()
        .filter(|&v| !r.contains(v) && !g.is_free(v))
        .collect()
}

/// All of the paper's Section 3 sets, computed together on a quiescent
/// graph.
///
/// # Example
///
/// ```
/// use dgr_graph::{GraphStore, NodeLabel, Oracle, PrimOp, RequestKind, TaskEndpoints};
/// # fn main() -> Result<(), dgr_graph::GraphError> {
/// // The deadlocked graph of Figure 3-1: x = x + 1.
/// let mut g = GraphStore::with_capacity(4);
/// let x = g.alloc(NodeLabel::Prim(PrimOp::Add))?;
/// let one = g.alloc(NodeLabel::lit_int(1))?;
/// g.connect(x, x);
/// g.connect(x, one);
/// g.vertex_mut(x).set_request_kind(0, Some(RequestKind::Vital));
/// g.vertex_mut(x).set_request_kind(1, Some(RequestKind::Vital));
/// g.set_root(x);
///
/// // Task activity has ceased: no tasks anywhere.
/// let o = Oracle::compute(&g, &TaskEndpoints::new());
/// assert!(o.deadlocked.contains(x), "x awaits its own value");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Oracle {
    /// `R`: root-reachable vertices.
    pub r: VertexSet,
    /// Per-vertex priority; `Some` exactly for vertices in `R`.
    pub prior: Vec<Option<Priority>>,
    /// `T`: task-reachable vertices.
    pub t: VertexSet,
    /// `GAR = V − R − F`.
    pub garbage: VertexSet,
    /// `DL_v = R_v − T` (Property 2').
    pub deadlocked: VertexSet,
}

impl Oracle {
    /// Computes every set on the given (quiescent) graph and task pool.
    pub fn compute(g: &GraphStore, tasks: &TaskEndpoints) -> Self {
        let r = reachable_r(g);
        let prior = priorities(g);
        let t = reachable_t(g, tasks);
        let gar = garbage(g, &r);
        let deadlocked = g
            .ids()
            .filter(|&v| prior[v.index()] == Some(Priority::Vital) && !t.contains(v))
            .collect();
        Oracle {
            r,
            prior,
            t,
            garbage: gar,
            deadlocked,
        }
    }

    /// `R_v`, `R_e` or `R_r` as a set.
    pub fn priority_class(&self, p: Priority) -> VertexSet {
        self.prior
            .iter()
            .enumerate()
            .filter(|(_, q)| **q == Some(p))
            .map(|(i, _)| VertexId::new(i as u32))
            .collect()
    }

    /// Classifies a task by its destination (Properties 3–6).
    pub fn classify_task(&self, g: &GraphStore, dst: VertexId) -> TaskClass {
        if g.is_free(dst) {
            return TaskClass::Dangling;
        }
        match self.prior[dst.index()] {
            Some(Priority::Vital) => TaskClass::Vital,
            Some(Priority::Eager) => TaskClass::Eager,
            Some(Priority::Reserve) => TaskClass::Reserve,
            None => TaskClass::Irrelevant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{NodeLabel, PrimOp};
    use crate::vertex::Requester;

    fn vid(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn vertex_set_basics() {
        let mut s = VertexSet::with_capacity(4);
        assert!(s.is_empty());
        assert!(s.insert(vid(100)), "grows on demand");
        assert!(s.contains(vid(100)));
        assert!(s.remove(vid(100)));
        assert!(!s.remove(vid(100)));
        assert!(s.is_empty());
    }

    #[test]
    fn vertex_set_iter_in_order() {
        let s: VertexSet = [vid(65), vid(2), vid(2), vid(0)].into_iter().collect();
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![vid(0), vid(2), vid(65)]);
        assert_eq!(s.len(), 3);
    }

    /// root → a → b, with c disconnected.
    fn chain() -> (GraphStore, VertexId, VertexId, VertexId, VertexId) {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let a = g.alloc(NodeLabel::Prim(PrimOp::Neg)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let c = g.alloc(NodeLabel::lit_int(2)).unwrap();
        g.connect(root, a);
        g.connect(a, b);
        g.set_root(root);
        (g, root, a, b, c)
    }

    #[test]
    fn reachable_r_follows_args() {
        let (g, root, a, b, c) = chain();
        let r = reachable_r(&g);
        assert!(r.contains(root) && r.contains(a) && r.contains(b));
        assert!(!r.contains(c));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn reachable_r_handles_cycles() {
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        g.connect(x, x);
        g.set_root(x);
        let r = reachable_r(&g);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn garbage_is_v_minus_r_minus_f() {
        let (g, _, _, _, c) = chain();
        let r = reachable_r(&g);
        let gar = garbage(&g, &r);
        assert!(gar.contains(c));
        assert_eq!(gar.len(), 1, "free slots are not garbage");
    }

    #[test]
    fn priorities_min_along_path() {
        // root -v-> a -e-> b -v-> c : bottleneck of c is eager.
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(root, a);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(a, b);
        g.vertex_mut(a)
            .set_request_kind(0, Some(RequestKind::Eager));
        g.connect(b, c);
        g.vertex_mut(b)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.set_root(root);

        let p = priorities(&g);
        assert_eq!(p[root.index()], Some(Priority::Vital));
        assert_eq!(p[a.index()], Some(Priority::Vital));
        assert_eq!(p[b.index()], Some(Priority::Eager));
        assert_eq!(p[c.index()], Some(Priority::Eager), "eager bottleneck");
    }

    #[test]
    fn priorities_max_over_paths() {
        // Two paths to d: one all-vital, one through an eager arc.
        // The vital path wins (shared subexpressions, Section 3.2).
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let e = g.alloc(NodeLabel::If).unwrap();
        let d = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(root, e);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Eager));
        g.connect(root, d);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.connect(e, d);
        g.vertex_mut(e)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.set_root(root);

        let p = priorities(&g);
        assert_eq!(p[e.index()], Some(Priority::Eager));
        assert_eq!(p[d.index()], Some(Priority::Vital));
    }

    #[test]
    fn priorities_unrequested_arcs_are_reserve() {
        let (g, root, a, b, _) = chain();
        let p = priorities(&g);
        assert_eq!(p[root.index()], Some(Priority::Vital), "root is vital");
        assert_eq!(p[a.index()], Some(Priority::Reserve));
        assert_eq!(p[b.index()], Some(Priority::Reserve));
    }

    #[test]
    fn reachable_t_traces_requested_and_unrequested() {
        // task on b; b has requester a; a has unrequested arc to c.
        let mut g = GraphStore::with_capacity(8);
        let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let c = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let d = g.alloc(NodeLabel::lit_int(3)).unwrap();
        g.connect(a, b);
        g.vertex_mut(a)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(a, c); // unrequested
        g.connect(a, d);
        g.vertex_mut(a)
            .set_request_kind(2, Some(RequestKind::Vital));
        g.vertex_mut(b).add_requester(Requester::Vertex(a));

        let mut tasks = TaskEndpoints::new();
        tasks.push_task(Some(a), b);
        let t = reachable_t(&g, &tasks);
        assert!(t.contains(a), "task source");
        assert!(t.contains(b), "task destination");
        assert!(t.contains(c), "unrequested arc traced");
        assert!(
            !t.contains(d),
            "already-requested arc is not traced forward"
        );
    }

    #[test]
    fn empty_task_pool_gives_empty_t() {
        let (g, ..) = chain();
        let t = reachable_t(&g, &TaskEndpoints::new());
        assert!(t.is_empty());
    }

    #[test]
    fn figure_3_1_deadlock() {
        // x = x + 1 with no tasks left anywhere.
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.vertex_mut(x)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(x, one);
        g.vertex_mut(x)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.set_root(x);
        let o = Oracle::compute(&g, &TaskEndpoints::new());
        assert!(o.deadlocked.contains(x));
        assert!(o.garbage.is_empty());
        assert_eq!(o.classify_task(&g, x), TaskClass::Vital);
    }

    #[test]
    fn classify_task_matches_properties() {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let vital = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let eager = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let reserve = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let gar = g.alloc(NodeLabel::lit_int(3)).unwrap();
        let freed = g.alloc(NodeLabel::lit_int(4)).unwrap();
        g.connect(root, vital);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(root, eager);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Eager));
        g.connect(root, reserve);
        g.set_root(root);
        g.free(freed);

        let o = Oracle::compute(&g, &TaskEndpoints::new());
        assert_eq!(o.classify_task(&g, vital), TaskClass::Vital);
        assert_eq!(o.classify_task(&g, eager), TaskClass::Eager);
        assert_eq!(o.classify_task(&g, reserve), TaskClass::Reserve);
        assert_eq!(o.classify_task(&g, gar), TaskClass::Irrelevant);
        assert_eq!(o.classify_task(&g, freed), TaskClass::Dangling);
    }

    #[test]
    fn priority_classes_partition_r() {
        let (g, ..) = chain();
        let o = Oracle::compute(&g, &TaskEndpoints::new());
        let v = o.priority_class(Priority::Vital);
        let e = o.priority_class(Priority::Eager);
        let r = o.priority_class(Priority::Reserve);
        assert_eq!(v.len() + e.len() + r.len(), o.r.len());
    }

    #[test]
    fn values_keep_components_reachable() {
        // A cons whose arcs were rewritten away but whose value names h, t.
        let mut g = GraphStore::with_capacity(4);
        let cell = g.alloc(NodeLabel::Cons).unwrap();
        let h = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let t = g.alloc(NodeLabel::Lit(crate::Value::Nil)).unwrap();
        g.vertex_mut(cell).value = Some(crate::Value::Cons(h, t));
        g.set_root(cell);
        let r = reachable_r(&g);
        assert!(r.contains(h) && r.contains(t));
        let p = priorities(&g);
        assert_eq!(
            p[h.index()],
            Some(Priority::Reserve),
            "value components are lazily reachable"
        );
    }
}
