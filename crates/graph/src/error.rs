//! Error types for graph operations.

use std::fmt;

use crate::ids::VertexId;

/// Errors produced by [`GraphStore`](crate::GraphStore) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The free list `F` is exhausted and the store was not allowed to grow.
    OutOfVertices {
        /// How many vertices were requested.
        requested: usize,
        /// How many free vertices remained.
        available: usize,
    },
    /// An operation referenced a vertex currently on the free list.
    UseAfterFree(VertexId),
    /// An operation referenced an index outside the store.
    InvalidVertex(VertexId),
    /// `add-reference(a, b, c)` was invoked with `b ∉ children(a)` or
    /// `c ∉ children(b)` (the primitive is only defined for three adjacent
    /// vertices).
    NotAdjacent {
        /// The vertex gaining the reference.
        a: VertexId,
        /// The intermediate vertex.
        b: VertexId,
        /// The grandchild being referenced.
        c: VertexId,
    },
    /// A template referenced a parameter index beyond the supplied actuals.
    BadTemplateParam {
        /// The parameter index the template asked for.
        index: usize,
        /// How many actuals were supplied.
        supplied: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::OutOfVertices {
                requested,
                available,
            } => write!(
                f,
                "free list exhausted: requested {requested} vertices, {available} available"
            ),
            GraphError::UseAfterFree(v) => write!(f, "vertex {v} is on the free list"),
            GraphError::InvalidVertex(v) => write!(f, "vertex {v} does not exist"),
            GraphError::NotAdjacent { a, b, c } => write!(
                f,
                "add-reference requires adjacency: {b} must be a child of {a} and {c} a child of {b}"
            ),
            GraphError::BadTemplateParam { index, supplied } => write!(
                f,
                "template parameter {index} out of range ({supplied} actuals supplied)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::OutOfVertices {
            requested: 4,
            available: 1,
        };
        assert!(e.to_string().contains("free list exhausted"));
        assert!(GraphError::UseAfterFree(VertexId::new(2))
            .to_string()
            .contains("v2"));
        let na = GraphError::NotAdjacent {
            a: VertexId::new(0),
            b: VertexId::new(1),
            c: VertexId::new(2),
        };
        assert!(na.to_string().contains("adjacency"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GraphError::InvalidVertex(VertexId::new(9)));
        assert!(e.to_string().contains("v9"));
    }
}
