//! Identifier newtypes for vertices and processing elements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in the computation graph.
///
/// A `VertexId` is an index into the [`GraphStore`](crate::GraphStore) that
/// allocated it. Identifiers are reused after a vertex is returned to the
/// free list, exactly as cell addresses are in the paper's model.
///
/// # Example
///
/// ```
/// use dgr_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        VertexId(index)
    }

    /// Returns the raw index of this identifier.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` behind this identifier.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for VertexId {
    fn from(index: u32) -> Self {
        VertexId(index)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a processing element (PE).
///
/// Each PE owns a partition of the computation graph and has only local
/// store; work moves between PEs as tasks addressed to vertices.
///
/// # Example
///
/// ```
/// use dgr_graph::PeId;
/// let pe = PeId::new(2);
/// assert_eq!(pe.index(), 2);
/// assert_eq!(pe.to_string(), "pe2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId(u16);

impl PeId {
    /// Creates a PE identifier from a raw index.
    pub const fn new(index: u16) -> Self {
        PeId(index)
    }

    /// Returns the raw index of this identifier.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` behind this identifier.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl From<u16> for PeId {
    fn from(index: u16) -> Self {
        PeId(index)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn vertex_id_ordering_follows_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::new(7), VertexId::new(7));
    }

    #[test]
    fn pe_id_roundtrip() {
        let p = PeId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.raw(), 3);
        assert_eq!(PeId::from(3u16), p);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VertexId::new(0).to_string(), "v0");
        assert_eq!(PeId::new(9).to_string(), "pe9");
    }
}
