//! Subgraph templates instantiated by the `expand-node` mutator primitive.
//!
//! A [`Template`] describes the body of a supercombinator as a small graph
//! of [`TemplateNode`]s. When a function application is reduced, the
//! template is *instantiated*: fresh vertices are taken from the free list,
//! wired up according to the template, and spliced in below the application
//! vertex (`splice-in-subgraph(v, g)` in the paper). The instantiation is
//! performed by `dgr-core`'s cooperating `expand-node` so that marking
//! invariants are preserved.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::ids::VertexId;
use crate::label::NodeLabel;
use crate::store::GraphStore;

/// A reference from a template node to one of its arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateRef {
    /// Another node of the same template, by local index.
    Local(usize),
    /// The `i`-th actual argument of the application being expanded.
    Param(usize),
    /// The vertex being expanded itself (enables cyclic structures such as
    /// `letrec xs = cons 1 xs`).
    SelfRoot,
    /// A fixed vertex in the global graph (e.g. a shared CAF).
    Global(VertexId),
}

/// One node of a template subgraph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateNode {
    /// The label the instantiated vertex receives.
    pub label: NodeLabel,
    /// Arcs of the instantiated vertex, in order.
    pub args: Vec<TemplateRef>,
}

impl TemplateNode {
    /// Creates a template node.
    pub fn new(label: NodeLabel, args: Vec<TemplateRef>) -> Self {
        TemplateNode { label, args }
    }
}

/// The compiled body of a supercombinator.
///
/// Node 0 is the body's root: expansion relabels the application vertex with
/// node 0's label and rewires its args; nodes 1.. are allocated fresh.
///
/// # Example
///
/// ```
/// use dgr_graph::{NodeLabel, PrimOp, Template, TemplateNode, TemplateRef};
/// // \x -> x + 1
/// let tpl = Template::new(
///     "inc",
///     1,
///     vec![
///         TemplateNode::new(
///             NodeLabel::Prim(PrimOp::Add),
///             vec![TemplateRef::Param(0), TemplateRef::Local(1)],
///         ),
///         TemplateNode::new(NodeLabel::lit_int(1), vec![]),
///     ],
/// )
/// .unwrap();
/// assert_eq!(tpl.arity(), 1);
/// assert_eq!(tpl.extra_vertices(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    name: String,
    arity: usize,
    nodes: Vec<TemplateNode>,
}

impl Template {
    /// Creates a template, validating internal references.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadTemplateParam`] if a node references a
    /// parameter `≥ arity`, and [`GraphError::InvalidVertex`] if a local
    /// reference points past the node list.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        nodes: Vec<TemplateNode>,
    ) -> Result<Self, GraphError> {
        for node in &nodes {
            for r in &node.args {
                match *r {
                    TemplateRef::Param(i) if i >= arity => {
                        return Err(GraphError::BadTemplateParam {
                            index: i,
                            supplied: arity,
                        });
                    }
                    TemplateRef::Local(i) if i >= nodes.len() => {
                        return Err(GraphError::InvalidVertex(VertexId::new(i as u32)));
                    }
                    _ => {}
                }
            }
        }
        assert!(!nodes.is_empty(), "a template needs at least a root node");
        Ok(Template {
            name: name.into(),
            arity,
            nodes,
        })
    }

    /// The template's (diagnostic) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters the supercombinator takes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The template's nodes; node 0 is the root.
    pub fn nodes(&self) -> &[TemplateNode] {
        &self.nodes
    }

    /// How many fresh vertices instantiation takes from the free list
    /// (everything except the root, which reuses the expanded vertex).
    pub fn extra_vertices(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Instantiates the template below `target`.
    ///
    /// This is the raw `splice-in-subgraph(v, g)`: `target` is relabeled
    /// with node 0's label and its args replaced by node 0's args; the
    /// remaining nodes are allocated from the free list. The ids of the
    /// freshly allocated vertices are returned (for the cooperating
    /// `expand-node` wrapper in `dgr-core`, which must color them).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfVertices`] if the free list cannot supply
    /// [`Template::extra_vertices`] vertices, and
    /// [`GraphError::BadTemplateParam`] if fewer actuals than the arity are
    /// supplied. On error the graph is unchanged.
    pub fn instantiate(
        &self,
        g: &mut GraphStore,
        target: VertexId,
        actuals: &[VertexId],
    ) -> Result<Vec<VertexId>, GraphError> {
        if actuals.len() < self.arity {
            return Err(GraphError::BadTemplateParam {
                index: self.arity - 1,
                supplied: actuals.len(),
            });
        }
        let fresh = g.alloc_many(self.extra_vertices())?;
        // Local index i maps to: target when i == 0, fresh[i-1] otherwise.
        let resolve = |r: TemplateRef| -> VertexId {
            match r {
                TemplateRef::Local(0) => target,
                TemplateRef::Local(i) => fresh[i - 1],
                TemplateRef::Param(i) => actuals[i],
                TemplateRef::SelfRoot => target,
                TemplateRef::Global(v) => v,
            }
        };
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            let id = fresh[i - 1];
            let args: Vec<VertexId> = node.args.iter().map(|&r| resolve(r)).collect();
            let v = g.vertex_mut(id);
            v.label = node.label.clone();
            v.replace_args(args);
        }
        let root_args: Vec<VertexId> = self.nodes[0].args.iter().map(|&r| resolve(r)).collect();
        let tv = g.vertex_mut(target);
        tv.label = self.nodes[0].label.clone();
        tv.replace_args(root_args);
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::PrimOp;

    fn inc_template() -> Template {
        Template::new(
            "inc",
            1,
            vec![
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Add),
                    vec![TemplateRef::Param(0), TemplateRef::Local(1)],
                ),
                TemplateNode::new(NodeLabel::lit_int(1), vec![]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_param() {
        let err = Template::new(
            "bad",
            1,
            vec![TemplateNode::new(
                NodeLabel::If,
                vec![TemplateRef::Param(3)],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::BadTemplateParam { .. }));
    }

    #[test]
    fn validation_rejects_bad_local() {
        let err = Template::new(
            "bad",
            0,
            vec![TemplateNode::new(
                NodeLabel::If,
                vec![TemplateRef::Local(5)],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidVertex(_)));
    }

    #[test]
    fn instantiate_splices_below_target() {
        let mut g = GraphStore::with_capacity(8);
        let arg = g.alloc(NodeLabel::lit_int(41)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        let tpl = inc_template();
        let fresh = tpl.instantiate(&mut g, app, &[arg]).unwrap();
        assert_eq!(fresh.len(), 1);
        assert_eq!(g.vertex(app).label, NodeLabel::Prim(PrimOp::Add));
        assert_eq!(g.vertex(app).args(), &[arg, fresh[0]]);
        assert_eq!(g.vertex(fresh[0]).label, NodeLabel::lit_int(1));
    }

    #[test]
    fn instantiate_requires_enough_actuals() {
        let mut g = GraphStore::with_capacity(4);
        let app = g.alloc(NodeLabel::Apply).unwrap();
        let tpl = inc_template();
        let err = tpl.instantiate(&mut g, app, &[]).unwrap_err();
        assert!(matches!(err, GraphError::BadTemplateParam { .. }));
        assert_eq!(g.free_count(), 3, "graph unchanged on error");
    }

    #[test]
    fn instantiate_out_of_vertices_leaves_graph_unchanged() {
        let mut g = GraphStore::with_capacity(1);
        let app = g.alloc(NodeLabel::Apply).unwrap();
        let tpl = inc_template();
        let arg = app; // irrelevant; allocation fails first
        let err = tpl.instantiate(&mut g, app, &[arg]).unwrap_err();
        assert!(matches!(err, GraphError::OutOfVertices { .. }));
        assert_eq!(g.vertex(app).label, NodeLabel::Apply);
    }

    #[test]
    fn self_root_enables_cycles() {
        // letrec xs = cons 1 xs
        let tpl = Template::new(
            "cyc",
            0,
            vec![
                TemplateNode::new(
                    NodeLabel::Cons,
                    vec![TemplateRef::Local(1), TemplateRef::SelfRoot],
                ),
                TemplateNode::new(NodeLabel::lit_int(1), vec![]),
            ],
        )
        .unwrap();
        let mut g = GraphStore::with_capacity(4);
        let app = g.alloc(NodeLabel::Apply).unwrap();
        let fresh = tpl.instantiate(&mut g, app, &[]).unwrap();
        assert_eq!(g.vertex(app).args()[1], app, "tail points back at root");
        assert_eq!(g.vertex(app).args()[0], fresh[0]);
    }

    #[test]
    fn global_refs_resolve() {
        let mut g = GraphStore::with_capacity(4);
        let shared = g.alloc(NodeLabel::lit_int(7)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        let tpl = Template::new(
            "useglobal",
            0,
            vec![TemplateNode::new(
                NodeLabel::Prim(PrimOp::Neg),
                vec![TemplateRef::Global(shared)],
            )],
        )
        .unwrap();
        tpl.instantiate(&mut g, app, &[]).unwrap();
        assert_eq!(g.vertex(app).args(), &[shared]);
    }
}
