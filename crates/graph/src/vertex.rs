//! Vertices: labels, the paper's three edge sets, and marking slots.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;
use crate::label::NodeLabel;
use crate::value::Value;

/// How an argument's value was requested.
///
/// The paper refines `req-args(v)` into the disjoint sets `req-args_v(v)`
/// ("vitally requested") and `req-args_e(v)` ("eagerly requested"); the
/// remaining arcs (`req-args_r(v)`) are the arguments not requested at all.
/// An arc with no request is represented here by `None` in
/// [`Vertex::request_kinds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// The value is known to be needed (`req-args_v`).
    Vital,
    /// The value was demanded speculatively (`req-args_e`).
    Eager,
}

impl RequestKind {
    /// The marking priority carried by a request of this kind.
    pub fn priority(self) -> Priority {
        match self {
            RequestKind::Vital => Priority::Vital,
            RequestKind::Eager => Priority::Eager,
        }
    }
}

/// Marking priority, the paper's integers 3 / 2 / 1.
///
/// `M_R` tags each reachable vertex with the *best* (maximum over paths of
/// the minimum over arcs) request type on a root path:
/// [`Priority::Vital`] (3) for vertices in `R_v`, [`Priority::Eager`] (2)
/// for `R_e`, and [`Priority::Reserve`] (1) for `R_r`.
///
/// # Example
///
/// ```
/// use dgr_graph::Priority;
/// assert!(Priority::Vital > Priority::Eager);
/// assert_eq!(Priority::Vital.min(Priority::Eager), Priority::Eager);
/// assert_eq!(Priority::Reserve.level(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Priority {
    /// Priority 1: reachable only through at least one unrequested arc.
    #[default]
    Reserve = 1,
    /// Priority 2: best root path uses requested arcs with ≥ 1 eager arc.
    Eager = 2,
    /// Priority 3: reachable through vitally-requested arcs only.
    Vital = 3,
}

impl Priority {
    /// The paper's integer encoding (3, 2 or 1).
    pub fn level(self) -> u8 {
        self as u8
    }

    /// `request-type(c, v)` from Figure 5-1: the priority contributed by an
    /// arc with the given request kind (`None` means unrequested).
    pub fn of_request(kind: Option<RequestKind>) -> Priority {
        match kind {
            Some(k) => k.priority(),
            None => Priority::Reserve,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Vital => f.write_str("vital"),
            Priority::Eager => f.write_str("eager"),
            Priority::Reserve => f.write_str("reserve"),
        }
    }
}

/// The tri-state marking color of a vertex (paper Section 4.1).
///
/// Similar to Dijkstra's white/gray/black cells, "but subtly different due
/// to the distributed system context": *transient* means a mark task has
/// executed at the vertex but the marks spawned on its children have not all
/// returned (`mt-cnt > 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Color {
    /// No mark task has executed at this vertex.
    #[default]
    Unmarked,
    /// A mark task executed; children's marks have not all returned.
    Transient,
    /// Marking is complete for this vertex.
    Marked,
}

/// The parent of a vertex in the marking tree, or one of the two dummy
/// roots used for termination detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarkParent {
    /// A real vertex parent (`mt-par`).
    Vertex(VertexId),
    /// The dummy `rootpar` above the computation root (process `M_R`).
    RootPar,
    /// The dummy parent above the virtual task root `troot` (process `M_T`).
    TaskRootPar,
}

impl MarkParent {
    /// Returns the vertex, if this parent is a real vertex.
    pub fn as_vertex(self) -> Option<VertexId> {
        match self {
            MarkParent::Vertex(v) => Some(v),
            _ => None,
        }
    }
}

/// Per-vertex, per-marking-process state: the color, `mt-cnt`, `mt-par` and
/// (for `M_R`) the priority field of Section 5.1.
///
/// Each vertex carries **two** independent slots ([`Slot::R`] and
/// [`Slot::T`]) because the paper requires the bits used by `M_T` to be
/// distinct from those used by `M_R`.
///
/// Slots are reset **lazily** via epochs: a store-wide per-slot epoch is
/// bumped to start a marking cycle (O(1) instead of an O(|V|) sweep), and a
/// slot whose [`MarkSlot::epoch`] differs from the current cycle's epoch
/// reads as freshly reset. The predicates below interpret the raw fields
/// and are only meaningful on a slot known to belong to the current cycle;
/// use [`Vertex::mark_at`] / [`crate::GraphStore::mark`] for the
/// epoch-normalized view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MarkSlot {
    /// Marking color.
    pub color: Color,
    /// Number of mark tasks spawned from this vertex that have not returned.
    pub mt_cnt: u32,
    /// Parent in the marking tree, valid while transient or marked.
    pub mt_par: Option<MarkParent>,
    /// Priority this vertex was traced with (only meaningful for `M_R`).
    pub prior: Priority,
    /// The marking cycle this slot's contents belong to. `0` is never a
    /// live epoch (store epochs start at 1), so default slots are stale.
    pub epoch: u32,
}

impl MarkSlot {
    /// Resets the slot to its pre-marking state.
    pub fn reset(&mut self) {
        *self = MarkSlot::default();
    }

    /// A freshly reset slot stamped with the given epoch.
    pub fn fresh(epoch: u32) -> Self {
        MarkSlot {
            epoch,
            ..MarkSlot::default()
        }
    }

    /// `unmarked(v)` from the paper.
    pub fn is_unmarked(&self) -> bool {
        self.color == Color::Unmarked
    }

    /// `transient(v)` from the paper.
    pub fn is_transient(&self) -> bool {
        self.color == Color::Transient
    }

    /// `marked(v)` from the paper.
    pub fn is_marked(&self) -> bool {
        self.color == Color::Marked
    }
}

/// Selects which marking process's slot to operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// The slot used by `M_R` (marking from the root).
    R,
    /// The slot used by `M_T` (marking from tasks).
    T,
}

impl Slot {
    /// Dense index (`R` = 0, `T` = 1), used to key per-slot epoch arrays.
    pub fn index(self) -> usize {
        match self {
            Slot::R => 0,
            Slot::T => 1,
        }
    }
}

/// A party awaiting a vertex's value: either another vertex or an entity
/// outside the graph (the initial task `<-, root>` has no source vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requester {
    /// A vertex that spawned a request task.
    Vertex(VertexId),
    /// An external observer (the "`-`" source of the initial task).
    External,
}

impl Requester {
    /// Returns the vertex, if the requester is a vertex.
    pub fn as_vertex(self) -> Option<VertexId> {
        match self {
            Requester::Vertex(v) => Some(v),
            Requester::External => None,
        }
    }
}

impl From<VertexId> for Requester {
    fn from(v: VertexId) -> Self {
        Requester::Vertex(v)
    }
}

/// A vertex of the computation graph.
///
/// Carries the label, the paper's three outgoing-edge sets, the received
/// argument values (reduction-engine state), the computed value, and the two
/// marking slots. Arcs are kept as parallel vectors:
/// `args[i]` is the target, `request_kinds[i]` records whether (and how) the
/// arc was requested, and `arg_values[i]` holds the returned value once the
/// requested computation replies.
///
/// Edges form a *multiset*: the same target may appear more than once (e.g.
/// `x + x`). The paper treats `args` as a set; reachability is unaffected by
/// the generalization and deletion removes one occurrence at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// The operator/value label.
    pub label: NodeLabel,
    args: Vec<VertexId>,
    request_kinds: Vec<Option<RequestKind>>,
    arg_values: Vec<Option<Value>>,
    requested: Vec<Requester>,
    /// The computed ultimate value, if the reduction process has produced it.
    pub value: Option<Value>,
    /// Marking slot for `M_R`.
    pub mr: MarkSlot,
    /// Marking slot for `M_T`.
    pub mt: MarkSlot,
    /// The *effective demand priority* this vertex is being computed at:
    /// the maximum request kind received so far, refreshed from the `M_R`
    /// priority marks by each GC cycle (the paper's dynamic
    /// prioritization). Sub-requests are scheduled at
    /// `min(demand, request-type)`, so speculative subcomputations never
    /// ride the vital lanes.
    pub demand: Priority,
    /// The touch epoch in force when a task last executed at this vertex
    /// or was spawned targeting it; "touched" means this equals the
    /// store's current touch epoch (see [`crate::GraphStore::is_touched`]).
    /// The stamp set is cleared at the start of each `M_T` pass by bumping
    /// the store epoch (O(1)). A vertex deadlocked before a pass by
    /// definition sees no task activity afterwards, so the deadlock report
    /// `R_v' − T'` additionally requires "not touched" — this screens out
    /// vertices whose task-reachability arose *during* the pass (e.g.
    /// freshly expanded subgraphs), which stale `M_T` marks cannot know
    /// about. `0` is never a live epoch.
    pub(crate) touched_at: u32,
    pub(crate) in_free_list: bool,
}

impl Vertex {
    /// Creates a fresh vertex with the given label and no edges.
    pub fn new(label: NodeLabel) -> Self {
        Vertex {
            label,
            args: Vec::new(),
            request_kinds: Vec::new(),
            arg_values: Vec::new(),
            requested: Vec::new(),
            value: None,
            mr: MarkSlot::default(),
            mt: MarkSlot::default(),
            demand: Priority::Reserve,
            touched_at: 0,
            in_free_list: false,
        }
    }

    /// The `args(v)` edge set (in insertion order; may contain duplicates).
    pub fn args(&self) -> &[VertexId] {
        &self.args
    }

    /// Request kinds parallel to [`Vertex::args`]; `None` = unrequested.
    pub fn request_kinds(&self) -> &[Option<RequestKind>] {
        &self.request_kinds
    }

    /// Received argument values parallel to [`Vertex::args`].
    pub fn arg_values(&self) -> &[Option<Value>] {
        &self.arg_values
    }

    /// `requested(v)`: the parties that have requested this vertex's value
    /// and have not yet been replied to.
    pub fn requested(&self) -> &[Requester] {
        &self.requested
    }

    /// Returns `true` while the vertex sits on the free list `F`.
    pub fn is_free(&self) -> bool {
        self.in_free_list
    }

    /// Selects a marking slot by process.
    pub fn slot(&self, s: Slot) -> &MarkSlot {
        match s {
            Slot::R => &self.mr,
            Slot::T => &self.mt,
        }
    }

    /// Mutably selects a marking slot by process.
    pub fn slot_mut(&mut self, s: Slot) -> &mut MarkSlot {
        match s {
            Slot::R => &mut self.mr,
            Slot::T => &mut self.mt,
        }
    }

    /// The epoch-normalized view of a marking slot: the stored contents if
    /// they belong to marking cycle `epoch`, a fresh (reset) slot
    /// otherwise. This is how slot state must be *read* under lazy epoch
    /// reset — a stale slot still physically holds the previous cycle's
    /// colors.
    pub fn mark_at(&self, s: Slot, epoch: u32) -> MarkSlot {
        let slot = self.slot(s);
        if slot.epoch == epoch {
            *slot
        } else {
            MarkSlot::fresh(epoch)
        }
    }

    /// Mutable access to a marking slot under lazy epoch reset: a slot
    /// from an earlier cycle is reset and stamped with `epoch` before the
    /// reference is handed out, so writes always land in current-cycle
    /// state.
    pub fn mark_at_mut(&mut self, s: Slot, epoch: u32) -> &mut MarkSlot {
        let slot = self.slot_mut(s);
        if slot.epoch != epoch {
            *slot = MarkSlot::fresh(epoch);
        }
        slot
    }

    /// Appends an (unrequested) arc to `args(v)`.
    pub fn push_arg(&mut self, target: VertexId) {
        self.args.push(target);
        self.request_kinds.push(None);
        self.arg_values.push(None);
    }

    /// Removes the first occurrence of `target` from `args(v)`, returning
    /// the arc's request kind if the arc existed.
    pub fn remove_arg(&mut self, target: VertexId) -> Option<Option<RequestKind>> {
        let i = self.args.iter().position(|&a| a == target)?;
        self.args.remove(i);
        self.arg_values.remove(i);
        Some(self.request_kinds.remove(i))
    }

    /// Removes the arc at index `i`, returning its target and request kind.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn remove_arg_at(&mut self, i: usize) -> (VertexId, Option<RequestKind>) {
        let target = self.args.remove(i);
        self.arg_values.remove(i);
        (target, self.request_kinds.remove(i))
    }

    /// Marks arc `i` as requested with the given kind, returning the
    /// previous kind.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_request_kind(&mut self, i: usize, kind: Option<RequestKind>) -> Option<RequestKind> {
        std::mem::replace(&mut self.request_kinds[i], kind)
    }

    /// Records the returned value for arc `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_arg_value(&mut self, i: usize, v: Value) {
        self.arg_values[i] = Some(v);
    }

    /// Adds a requester to `requested(v)`.
    pub fn add_requester(&mut self, r: Requester) {
        self.requested.push(r);
    }

    /// Removes one occurrence of a requester (the paper's *dereference*
    /// partner operation), returning `true` if it was present.
    pub fn remove_requester(&mut self, r: Requester) -> bool {
        if let Some(i) = self.requested.iter().position(|&x| x == r) {
            self.requested.remove(i);
            true
        } else {
            false
        }
    }

    /// Keeps only the requesters for which `keep` returns `true` (used by
    /// the restructuring phase to purge reclaimed requesters). Returns how
    /// many were removed.
    pub fn retain_requesters(&mut self, mut keep: impl FnMut(Requester) -> bool) -> usize {
        let before = self.requested.len();
        self.requested.retain(|&r| keep(r));
        before - self.requested.len()
    }

    /// Drains and returns `requested(v)` (used when replying to all
    /// requesters at once).
    pub fn take_requested(&mut self) -> Vec<Requester> {
        std::mem::take(&mut self.requested)
    }

    /// `req-args(v)`: targets of arcs that have been requested (any kind).
    pub fn req_args(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.args
            .iter()
            .zip(&self.request_kinds)
            .filter(|(_, k)| k.is_some())
            .map(|(&a, _)| a)
    }

    /// `req-args_v(v)` or `req-args_e(v)` depending on `kind`.
    pub fn req_args_of(&self, kind: RequestKind) -> impl Iterator<Item = VertexId> + '_ {
        self.args
            .iter()
            .zip(&self.request_kinds)
            .filter(move |(_, k)| **k == Some(kind))
            .map(|(&a, _)| a)
    }

    /// `args(v) − req-args(v)`: targets of unrequested arcs.
    pub fn unrequested_args(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.args
            .iter()
            .zip(&self.request_kinds)
            .filter(|(_, k)| k.is_none())
            .map(|(&a, _)| a)
    }

    /// The child set traced by `M_T` (Figure 5-3):
    /// `requested(v) ∪ (args(v) − req-args(v))`, plus the vertices a computed
    /// structured value keeps live.
    pub fn t_children(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .requested
            .iter()
            .filter_map(|r| r.as_vertex())
            .collect();
        out.extend(self.unrequested_args());
        if let Some(v) = &self.value {
            out.extend(v.referenced_vertices());
        }
        out
    }

    /// Visits the children [`Vertex::t_children`] returns, in the same
    /// order, without allocating.
    pub fn for_each_t_child(&self, mut f: impl FnMut(VertexId)) {
        for r in &self.requested {
            if let Some(v) = r.as_vertex() {
                f(v);
            }
        }
        for a in self.unrequested_args() {
            f(a);
        }
        if let Some(v) = &self.value {
            v.for_each_referenced(f);
        }
    }

    /// The child set traced by `M_R`: all of `args(v)`, plus the vertices a
    /// computed structured value keeps live (a cons value names its head and
    /// tail even after the arcs are rewritten).
    pub fn r_children(&self) -> Vec<VertexId> {
        let mut out = self.args.clone();
        if let Some(v) = &self.value {
            out.extend(v.referenced_vertices());
        }
        out
    }

    /// Visits the children [`Vertex::r_children`] returns, in the same
    /// order, without allocating — the marking wave's hot path.
    pub fn for_each_r_child(&self, mut f: impl FnMut(VertexId)) {
        for &a in &self.args {
            f(a);
        }
        if let Some(v) = &self.value {
            v.for_each_referenced(f);
        }
    }

    /// The child set traced by `M_R` together with each arc's request kind
    /// (`request-type(c, v)` in Figure 5-1). Vertices referenced by a
    /// computed structured value behave like *unrequested* arcs: a cons
    /// cell's components are exactly the lazily-reachable parts of the
    /// value — nothing has demanded them yet, so they contribute
    /// `Reserve`, and they are promoted the moment a real request arc is
    /// added for them.
    pub fn r_children_kinds(&self) -> Vec<(VertexId, Option<RequestKind>)> {
        let mut out: Vec<(VertexId, Option<RequestKind>)> = self
            .args
            .iter()
            .zip(&self.request_kinds)
            .map(|(&a, &k)| (a, k))
            .collect();
        if let Some(v) = &self.value {
            out.extend(v.referenced_vertices().into_iter().map(|c| (c, None)));
        }
        out
    }

    /// Index of the first arc pointing at `target`, if any.
    pub fn arg_index_of(&self, target: VertexId) -> Option<usize> {
        self.args.iter().position(|&a| a == target)
    }

    /// Number of requested arcs whose values have not yet arrived.
    pub fn pending_arg_values(&self) -> usize {
        self.request_kinds
            .iter()
            .zip(&self.arg_values)
            .filter(|(k, v)| k.is_some() && v.is_none())
            .count()
    }

    /// Clears reduction state and edges, leaving a `Hole` (used when the
    /// vertex is returned to the free list).
    pub fn clear_for_free(&mut self) {
        self.label = NodeLabel::Hole;
        self.args.clear();
        self.request_kinds.clear();
        self.arg_values.clear();
        self.requested.clear();
        self.value = None;
        self.demand = Priority::Reserve;
        self.touched_at = 0;
        // Marking slots are deliberately left alone: the restructuring phase
        // may free vertices while a later cycle's marks are still being
        // consulted; slots are reset when the next marking cycle begins.
    }

    /// Replaces all edges at once (used by `splice-in-subgraph`).
    pub fn replace_args(&mut self, args: Vec<VertexId>) {
        let n = args.len();
        self.args = args;
        self.request_kinds = vec![None; n];
        self.arg_values = vec![None; n];
    }

    /// Internal consistency of the parallel vectors.
    pub fn check_consistency(&self) -> bool {
        self.args.len() == self.request_kinds.len() && self.args.len() == self.arg_values.len()
    }
}

impl Default for Vertex {
    fn default() -> Self {
        Vertex::new(NodeLabel::Hole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::PrimOp;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn priority_order_matches_paper_levels() {
        assert_eq!(Priority::Vital.level(), 3);
        assert_eq!(Priority::Eager.level(), 2);
        assert_eq!(Priority::Reserve.level(), 1);
        assert!(Priority::Vital > Priority::Eager && Priority::Eager > Priority::Reserve);
    }

    #[test]
    fn priority_of_request() {
        assert_eq!(
            Priority::of_request(Some(RequestKind::Vital)),
            Priority::Vital
        );
        assert_eq!(
            Priority::of_request(Some(RequestKind::Eager)),
            Priority::Eager
        );
        assert_eq!(Priority::of_request(None), Priority::Reserve);
    }

    #[test]
    fn mark_slot_state_predicates() {
        let mut s = MarkSlot::default();
        assert!(s.is_unmarked());
        s.color = Color::Transient;
        assert!(s.is_transient());
        s.color = Color::Marked;
        assert!(s.is_marked());
        s.reset();
        assert!(s.is_unmarked());
        assert_eq!(s.mt_cnt, 0);
    }

    #[test]
    fn push_and_remove_args_keep_vectors_parallel() {
        let mut x = Vertex::new(NodeLabel::Prim(PrimOp::Add));
        x.push_arg(v(1));
        x.push_arg(v(2));
        x.push_arg(v(1)); // duplicate arc, multiset semantics
        assert!(x.check_consistency());
        assert_eq!(x.args(), &[v(1), v(2), v(1)]);

        x.set_request_kind(0, Some(RequestKind::Vital));
        let removed = x.remove_arg(v(1)).unwrap();
        assert_eq!(removed, Some(RequestKind::Vital));
        assert_eq!(x.args(), &[v(2), v(1)]);
        assert!(x.check_consistency());
        // remaining duplicate is unrequested
        assert_eq!(x.request_kinds()[1], None);
    }

    #[test]
    fn remove_missing_arg_returns_none() {
        let mut x = Vertex::new(NodeLabel::If);
        x.push_arg(v(5));
        assert!(x.remove_arg(v(9)).is_none());
        assert_eq!(x.args().len(), 1);
    }

    #[test]
    fn req_args_partitions() {
        let mut x = Vertex::new(NodeLabel::If);
        x.push_arg(v(1)); // predicate, vital
        x.push_arg(v(2)); // then, eager
        x.push_arg(v(3)); // else, unrequested
        x.set_request_kind(0, Some(RequestKind::Vital));
        x.set_request_kind(1, Some(RequestKind::Eager));

        let vital: Vec<_> = x.req_args_of(RequestKind::Vital).collect();
        let eager: Vec<_> = x.req_args_of(RequestKind::Eager).collect();
        let unreq: Vec<_> = x.unrequested_args().collect();
        let req: Vec<_> = x.req_args().collect();
        assert_eq!(vital, vec![v(1)]);
        assert_eq!(eager, vec![v(2)]);
        assert_eq!(unreq, vec![v(3)]);
        assert_eq!(req, vec![v(1), v(2)]);
    }

    #[test]
    fn t_children_trace_requested_and_unrequested() {
        let mut x = Vertex::new(NodeLabel::Prim(PrimOp::Add));
        x.push_arg(v(1));
        x.push_arg(v(2));
        x.set_request_kind(0, Some(RequestKind::Vital));
        x.add_requester(Requester::Vertex(v(7)));
        x.add_requester(Requester::External);

        let t = x.t_children();
        // requested(v) ∪ (args − req-args): {7} ∪ {2}; External contributes
        // nothing.
        assert!(t.contains(&v(7)));
        assert!(t.contains(&v(2)));
        assert!(!t.contains(&v(1)));
    }

    #[test]
    fn children_include_value_references() {
        let mut x = Vertex::new(NodeLabel::Cons);
        x.value = Some(Value::Cons(v(4), v(5)));
        assert!(x.r_children().contains(&v(4)));
        assert!(x.r_children().contains(&v(5)));
        assert!(x.t_children().contains(&v(4)));
        // Value components are lazily reachable: unrequested kind.
        let kinds = x.r_children_kinds();
        assert!(kinds.contains(&(v(4), None)) && kinds.contains(&(v(5), None)));
    }

    #[test]
    fn requester_management() {
        let mut x = Vertex::new(NodeLabel::If);
        x.add_requester(v(1).into());
        x.add_requester(v(2).into());
        assert!(x.remove_requester(Requester::Vertex(v(1))));
        assert!(!x.remove_requester(Requester::Vertex(v(1))));
        let drained = x.take_requested();
        assert_eq!(drained, vec![Requester::Vertex(v(2))]);
        assert!(x.requested().is_empty());
    }

    #[test]
    fn pending_arg_values_counts_only_requested() {
        let mut x = Vertex::new(NodeLabel::Prim(PrimOp::Add));
        x.push_arg(v(1));
        x.push_arg(v(2));
        x.set_request_kind(0, Some(RequestKind::Vital));
        x.set_request_kind(1, Some(RequestKind::Vital));
        assert_eq!(x.pending_arg_values(), 2);
        x.set_arg_value(0, Value::Int(1));
        assert_eq!(x.pending_arg_values(), 1);
        x.set_arg_value(1, Value::Int(2));
        assert_eq!(x.pending_arg_values(), 0);
    }

    #[test]
    fn clear_for_free_leaves_hole_but_keeps_marks() {
        let mut x = Vertex::new(NodeLabel::Prim(PrimOp::Add));
        x.push_arg(v(1));
        x.mr.color = Color::Marked;
        x.clear_for_free();
        assert!(x.label.is_hole());
        assert!(x.args().is_empty());
        assert_eq!(x.mr.color, Color::Marked);
    }

    #[test]
    fn replace_args_resets_parallel_state() {
        let mut x = Vertex::new(NodeLabel::Apply);
        x.push_arg(v(1));
        x.set_request_kind(0, Some(RequestKind::Vital));
        x.replace_args(vec![v(8), v(9)]);
        assert_eq!(x.args(), &[v(8), v(9)]);
        assert_eq!(x.request_kinds(), &[None, None]);
        assert!(x.check_consistency());
    }

    #[test]
    fn slot_selection() {
        let mut x = Vertex::new(NodeLabel::Hole);
        x.slot_mut(Slot::R).color = Color::Marked;
        assert!(x.slot(Slot::R).is_marked());
        assert!(x.slot(Slot::T).is_unmarked());
    }

    #[test]
    fn slot_indices_are_dense() {
        assert_eq!(Slot::R.index(), 0);
        assert_eq!(Slot::T.index(), 1);
    }

    #[test]
    fn mark_at_normalizes_stale_epochs() {
        let mut x = Vertex::new(NodeLabel::Hole);
        {
            let s = x.mark_at_mut(Slot::R, 1);
            s.color = Color::Marked;
            s.mt_cnt = 3;
        }
        assert!(x.mark_at(Slot::R, 1).is_marked());
        assert_eq!(x.mark_at(Slot::R, 1).mt_cnt, 3);
        // A later cycle sees a fresh slot without any physical reset.
        let stale_view = x.mark_at(Slot::R, 2);
        assert!(stale_view.is_unmarked());
        assert_eq!(stale_view.mt_cnt, 0);
        // The raw contents are still the old cycle's until written.
        assert!(x.mr.is_marked());
        // First write under the new epoch lazily resets, then applies.
        x.mark_at_mut(Slot::R, 2).color = Color::Transient;
        assert!(x.mr.is_transient());
        assert_eq!(x.mr.mt_cnt, 0, "lazy reset cleared the old count");
        assert_eq!(x.mr.epoch, 2);
    }
}
