//! Struct-of-arrays atomic mark words: the hot per-vertex marking state
//! of one [`Slot`], packed into dense atomic arrays.
//!
//! The lock-based threaded runtime kept a vertex's marking state inside
//! the `Mutex<Vertex>` it shares with the (cold) reduction fields, so the
//! marking wave paid a mutex acquisition *and* a whole-vertex cache line
//! per color transition — and the `Return` half of the wave (one return
//! per mark, exactly half of all marking tasks) took the lock only to
//! decrement `mt_cnt`. This module moves that state out of the vertex
//! structs into two dense arrays:
//!
//! * **state words** — `epoch(32) | mt_cnt(30) | color(2)` per vertex.
//!   Eight vertices share a cache line, so a DFS-numbered subtree's marks
//!   stream through the cache instead of hopping between fat vertices.
//! * **parent words** — `epoch(32) | mt_par(32)` per vertex, written once
//!   when the vertex is claimed and read once when its count drains.
//!
//! Epoch versioning keeps the O(1) between-pass reset: a word whose epoch
//! half differs from the current cycle reads as freshly unmarked, so
//! starting a cycle is still a single counter bump and no sweep.
//!
//! Memory-ordering discipline (enforced by `dgr-check`'s mark-word lint):
//! every access to `mark_words` / `par_words` uses Acquire/Release (or
//! stronger) — the Release on a claim or completion is what publishes the
//! transition to workers that observe the color lock-free, exactly like
//! the `r_words` probe it generalizes.

use dgr_atomic::{AtomicU64Api, Atomics, Ordering, Site, StdAtomics};

use crate::ids::VertexId;
use crate::vertex::{Color, MarkParent, MarkSlot, Vertex};
use crate::Slot;

/// Parent encoding: ordinary vertices use their raw id; the dummy roots
/// and "no parent" take the top ids (a store can therefore hold at most
/// `u32::MAX - 2` vertices, far beyond any other limit in the crate).
const PAR_ROOTPAR: u32 = u32::MAX;
const PAR_TASK_ROOTPAR: u32 = u32::MAX - 1;
const PAR_NONE: u32 = u32::MAX - 2;

/// Maximum encodable `mt_cnt` (30 bits).
const CNT_MAX: u64 = (1 << 30) - 1;

fn color_code(color: Color) -> u64 {
    match color {
        Color::Unmarked => 0,
        Color::Transient => 1,
        Color::Marked => 2,
    }
}

fn code_color(code: u64) -> Color {
    match code & 0b11 {
        0 => Color::Unmarked,
        1 => Color::Transient,
        _ => Color::Marked,
    }
}

fn encode_state(epoch: u32, cnt: u32, color: Color) -> u64 {
    debug_assert!(u64::from(cnt) <= CNT_MAX, "mt_cnt overflows the state word");
    (u64::from(epoch) << 32) | (u64::from(cnt) << 2) | color_code(color)
}

fn state_epoch(word: u64) -> u32 {
    (word >> 32) as u32
}

fn state_cnt(word: u64) -> u32 {
    ((word >> 2) & CNT_MAX) as u32
}

/// Encodes a [`MarkParent`] into the low half of a parent word.
pub fn encode_parent(par: Option<MarkParent>) -> u32 {
    match par {
        Some(MarkParent::Vertex(v)) => v.raw(),
        Some(MarkParent::RootPar) => PAR_ROOTPAR,
        Some(MarkParent::TaskRootPar) => PAR_TASK_ROOTPAR,
        None => PAR_NONE,
    }
}

/// Decodes the low half of a parent word back into a [`MarkParent`].
pub fn decode_parent(code: u32) -> Option<MarkParent> {
    match code {
        PAR_ROOTPAR => Some(MarkParent::RootPar),
        PAR_TASK_ROOTPAR => Some(MarkParent::TaskRootPar),
        PAR_NONE => None,
        v => Some(MarkParent::Vertex(VertexId::new(v))),
    }
}

/// Result of a [`MarkWords::try_claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// This caller performed the Unmarked transition; it now owns the
    /// expansion of the vertex (spawning marks on the children).
    Won(Color),
    /// Another worker already claimed the vertex this cycle.
    Lost,
}

/// Dense struct-of-arrays marking state for one [`Slot`] of every vertex.
///
/// # Example
///
/// ```
/// use dgr_graph::{Color, MarkParent, MarkWords};
/// use dgr_graph::markword::Claim;
///
/// let words: MarkWords = MarkWords::new(4);
/// let epoch = 1;
/// // First claim wins and owns the two-children expansion.
/// assert_eq!(
///     words.try_claim(0, epoch, 2, MarkParent::RootPar),
///     Claim::Won(Color::Transient)
/// );
/// assert_eq!(words.try_claim(0, epoch, 2, MarkParent::RootPar), Claim::Lost);
/// // Children completing drain the count; the last one yields the parent.
/// assert_eq!(words.complete_child(0, epoch), None);
/// assert_eq!(words.complete_child(0, epoch), Some(MarkParent::RootPar));
/// assert_eq!(words.probe(0, epoch), Some(Color::Marked));
/// ```
/// The struct is generic over the [`Atomics`] facade: production code
/// monomorphizes to [`StdAtomics`] (provably the raw `std::sync::atomic`
/// types — see `zero_cost_facade.rs` in `dgr-check`), while the model
/// checker instantiates it with its weak-memory shim and explores the
/// claim/complete protocol under seeded ordering mutations.
#[derive(Debug)]
pub struct MarkWords<A: Atomics = StdAtomics> {
    /// Per-vertex `epoch | mt_cnt | color` state words.
    mark_words: Vec<A::U64>,
    /// Per-vertex `epoch | mt_par` parent words.
    par_words: Vec<A::U64>,
}

impl<A: Atomics> MarkWords<A> {
    /// A fresh array of `capacity` never-written words (epoch half `0`,
    /// which is never a live epoch).
    pub fn new(capacity: usize) -> Self {
        MarkWords {
            mark_words: (0..capacity).map(|_| A::U64::new(0)).collect(),
            par_words: (0..capacity).map(|_| A::U64::new(0)).collect(),
        }
    }

    /// Builds the array from existing vertex slots (entering the shared
    /// form mid-computation must not lose marks a simulator pass wrote).
    pub fn from_slots(verts: &[Vertex], slot: Slot) -> Self {
        let mark_words = verts
            .iter()
            .map(|v| {
                let s = v.slot(slot);
                A::U64::new(encode_state(s.epoch, s.mt_cnt, s.color))
            })
            .collect();
        let par_words = verts
            .iter()
            .map(|v| {
                let s = v.slot(slot);
                A::U64::new((u64::from(s.epoch) << 32) | u64::from(encode_parent(s.mt_par)))
            })
            .collect();
        MarkWords {
            mark_words,
            par_words,
        }
    }

    /// Number of vertex slots covered.
    pub fn len(&self) -> usize {
        self.mark_words.len()
    }

    /// `true` if the array covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.mark_words.is_empty()
    }

    /// Lock-free probe of vertex `i`'s color in cycle `epoch`, or `None`
    /// if nothing was written this cycle (reads as Unmarked, but claiming
    /// requires [`MarkWords::try_claim`]).
    ///
    /// Acquire pairs with the Release stores of claim/complete: a worker
    /// observing a non-Unmarked color happens-after everything the
    /// transitioning worker did first, so settling a duplicate visit on
    /// the probe alone is as sound as doing it under the vertex lock.
    pub fn probe(&self, i: usize, epoch: u32) -> Option<Color> {
        // ordering: Acquire pairs with the claim/complete Release stores
        // (see the method docs above).
        let w = self.mark_words[i].load(Ordering::Acquire);
        (state_epoch(w) == epoch).then(|| code_color(w))
    }

    /// Full current-cycle state of vertex `i`: `(color, mt_cnt)`.
    pub fn probe_state(&self, i: usize, epoch: u32) -> Option<(Color, u32)> {
        // ordering: Acquire — same pairing as `probe`.
        let w = self.mark_words[i].load(Ordering::Acquire);
        (state_epoch(w) == epoch).then(|| (code_color(w), state_cnt(w)))
    }

    /// Attempts the Unmarked → Transient/Marked transition of vertex `i`
    /// in cycle `epoch`: on success the vertex carries `n_children`
    /// outstanding child marks (zero children goes straight to Marked)
    /// and `parent` as its `mt_par`.
    ///
    /// Only the CAS **winner** writes the parent word, after its claim
    /// succeeds — a losing claimant must not touch it, or its parent
    /// would overwrite the winner's and the eventual drain would return
    /// to the wrong vertex (double-decrementing one parent and starving
    /// the real one, which deadlocks the wave). Readers still always see
    /// the winner's store: a `complete_child` on this vertex can only be
    /// reached through return tasks of the children the winner spawned
    /// *after* `try_claim` returned, and every task hand-off on the way
    /// is a release/acquire edge.
    pub fn try_claim(&self, i: usize, epoch: u32, n_children: u32, parent: MarkParent) -> Claim {
        let par_word = (u64::from(epoch) << 32) | u64::from(encode_parent(Some(parent)));
        // Seeded mutation `mw-parent-before-claim`: reintroduce the PR 6
        // parent-clobber bug by publishing the parent word *before* the
        // claim CAS decides a winner — a losing claimant then overwrites
        // the winner's parent and the drain returns to the wrong vertex.
        // Only the model checker's shim ever enables this branch;
        // `StdAtomics::mutated` is a constant `false` the optimizer drops.
        if A::mutated(Site::MwParentPublish) {
            // ordering: Release is irrelevant here — the bug this branch
            // seeds is the *placement* (before the CAS picks a winner),
            // not the strength.
            self.par_words[i].store(par_word, Ordering::Release);
        }
        // ordering: Acquire pairs with a rival's Release-claim — losing
        // settles the duplicate visit on this load alone.
        let mut cur = self.mark_words[i].load(Ordering::Acquire);
        loop {
            if state_epoch(cur) == epoch && code_color(cur) != Color::Unmarked {
                return Claim::Lost;
            }
            let color = if n_children == 0 {
                Color::Marked
            } else {
                Color::Transient
            };
            let next = encode_state(epoch, n_children, color);
            // ordering: AcqRel on success — the Release half publishes the
            // new color to lock-free probes; the Acquire half orders the
            // winner's parent store after every prior transition it must
            // not clobber. The seeded mutation `mw-claim-cas-relaxed`
            // weakens the success ordering to Relaxed.
            match self.mark_words[i].compare_exchange_weak(
                cur,
                next,
                A::remap(Site::MwClaimCas, Ordering::AcqRel),
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if !A::mutated(Site::MwParentPublish) {
                        // ordering: Release — the winner's parent word must
                        // be visible to the `complete_child` that drains the
                        // count (the hand-off chain is release/acquire all
                        // the way, see the method docs).
                        self.par_words[i].store(par_word, Ordering::Release);
                    }
                    return Claim::Won(color);
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records the return of one child mark of vertex `i`: decrements the
    /// outstanding count and, if this was the last one, completes the
    /// vertex (Transient → Marked) and returns its `mt_par` so the caller
    /// can propagate the return.
    ///
    /// Must only be called for a `(i, epoch)` pair that was claimed this
    /// cycle with a nonzero child count — which the marking protocol
    /// guarantees, since return tasks are only spawned by child marks
    /// that the claim itself emitted.
    pub fn complete_child(&self, i: usize, epoch: u32) -> Option<MarkParent> {
        // One child's worth in the count field (the color bits are below).
        // ordering: AcqRel — Release orders this child's subtree effects
        // before the decrement; Acquire makes the siblings' subtrees
        // visible to whichever caller drains the count.
        let prev = self.mark_words[i].fetch_sub(1 << 2, Ordering::AcqRel);
        debug_assert_eq!(state_epoch(prev), epoch, "return for a stale cycle");
        debug_assert!(state_cnt(prev) > 0, "mt_cnt underflow");
        debug_assert_eq!(code_color(prev), Color::Transient);
        if state_cnt(prev) != 1 {
            return None;
        }
        // Count drained: this caller owns the Transient → Marked step.
        // ordering: Release publishes Marked (and the whole subtree's
        // effects) to lock-free probes.
        self.mark_words[i].store(encode_state(epoch, 0, Color::Marked), Ordering::Release);
        // ordering: Acquire pairs with the winner's Release parent store.
        let par = self.par_words[i].load(Ordering::Acquire);
        debug_assert_eq!((par >> 32) as u32, epoch, "parent from a stale cycle");
        decode_parent(par as u32)
    }

    /// Clears vertex `i`'s words to the never-written state (a recycled
    /// slot must not inherit the previous occupant's published marks).
    pub fn clear(&self, i: usize) {
        // ordering: Release — a recycled slot's fresh state must not be
        // reordered behind the old occupant's published marks.
        self.mark_words[i].store(0, Ordering::Release);
        self.par_words[i].store(0, Ordering::Release);
    }

    /// Writes the array's state back into the vertices' slots (leaving
    /// the shared form). A never-written word leaves the slot alone; a
    /// word from the same epoch the slot already carries only refreshes
    /// the fields the marking wave owns (color, count, parent), so
    /// simulator-written extras like the priority survive a round-trip.
    pub fn write_back(&self, verts: &mut [Vertex], slot: Slot) {
        for (i, v) in verts.iter_mut().enumerate() {
            // ordering: Acquire — write-back happens-after every worker's
            // published transitions (same pairing as `probe`).
            let w = self.mark_words[i].load(Ordering::Acquire);
            let epoch = state_epoch(w);
            if epoch == 0 {
                continue;
            }
            // ordering: Acquire pairs with the winner's parent Release.
            let par_w = self.par_words[i].load(Ordering::Acquire);
            let mt_par = if (par_w >> 32) as u32 == epoch {
                decode_parent(par_w as u32)
            } else {
                None
            };
            let s = v.slot_mut(slot);
            if s.epoch != epoch {
                *s = MarkSlot::fresh(epoch);
            }
            s.color = code_color(w);
            s.mt_cnt = state_cnt(w);
            s.mt_par = mt_par;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeLabel;

    #[test]
    fn parent_encoding_roundtrips() {
        for par in [
            None,
            Some(MarkParent::RootPar),
            Some(MarkParent::TaskRootPar),
            Some(MarkParent::Vertex(VertexId::new(0))),
            Some(MarkParent::Vertex(VertexId::new(123_456))),
        ] {
            assert_eq!(decode_parent(encode_parent(par)), par);
        }
    }

    #[test]
    fn claim_complete_lifecycle() {
        let words: MarkWords = MarkWords::new(2);
        assert_eq!(words.probe(0, 1), None, "never written");
        assert_eq!(
            words.try_claim(0, 1, 0, MarkParent::RootPar),
            Claim::Won(Color::Marked),
            "leaf claim goes straight to Marked"
        );
        assert_eq!(
            words.try_claim(1, 1, 3, MarkParent::Vertex(VertexId::new(0))),
            Claim::Won(Color::Transient)
        );
        assert_eq!(words.probe_state(1, 1), Some((Color::Transient, 3)));
        assert_eq!(words.complete_child(1, 1), None);
        assert_eq!(words.complete_child(1, 1), None);
        assert_eq!(
            words.complete_child(1, 1),
            Some(MarkParent::Vertex(VertexId::new(0)))
        );
        assert_eq!(words.probe_state(1, 1), Some((Color::Marked, 0)));
    }

    #[test]
    fn epoch_bump_resets_without_a_sweep() {
        let words: MarkWords = MarkWords::new(1);
        assert_eq!(
            words.try_claim(0, 1, 0, MarkParent::RootPar),
            Claim::Won(Color::Marked)
        );
        assert_eq!(words.probe(0, 2), None, "next cycle reads fresh");
        assert_eq!(
            words.try_claim(0, 2, 1, MarkParent::RootPar),
            Claim::Won(Color::Transient),
            "stale word is claimable"
        );
    }

    #[test]
    fn slots_roundtrip_through_the_array() {
        let mut verts = vec![Vertex::new(NodeLabel::Hole), Vertex::new(NodeLabel::Hole)];
        {
            let s = verts[1].mark_at_mut(Slot::R, 7);
            s.color = Color::Transient;
            s.mt_cnt = 2;
            s.mt_par = Some(MarkParent::Vertex(VertexId::new(0)));
        }
        let words: MarkWords = MarkWords::from_slots(&verts, Slot::R);
        assert_eq!(words.probe_state(1, 7), Some((Color::Transient, 2)));
        assert_eq!(
            words.complete_child(1, 7),
            None,
            "one of two children returned"
        );
        let mut back = verts.clone();
        words.write_back(&mut back, Slot::R);
        let s = back[1].mark_at(Slot::R, 7);
        assert!(s.is_transient());
        assert_eq!(s.mt_cnt, 1);
        assert_eq!(s.mt_par, Some(MarkParent::Vertex(VertexId::new(0))));
        assert!(back[0].mark_at(Slot::R, 7).is_unmarked(), "untouched");
    }

    #[test]
    fn clear_forgets_published_marks() {
        let words: MarkWords = MarkWords::new(1);
        words.try_claim(0, 3, 0, MarkParent::RootPar);
        words.clear(0);
        assert_eq!(words.probe(0, 3), None);
    }

    #[test]
    fn concurrent_claims_have_exactly_one_winner() {
        use std::sync::atomic::{AtomicU32, Ordering as O};
        let words: std::sync::Arc<MarkWords> = std::sync::Arc::new(MarkWords::new(64));
        let wins = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let words = std::sync::Arc::clone(&words);
                let wins = &wins;
                scope.spawn(move || {
                    for i in 0..64 {
                        if let Claim::Won(_) = words.try_claim(i, 1, 1, MarkParent::RootPar) {
                            wins.fetch_add(1, O::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(O::SeqCst), 64);
    }

    #[test]
    fn losing_claim_never_clobbers_the_winning_parent() {
        // Each thread claims with a distinct parent id; the drain must
        // return exactly the parent the *winner* supplied. (A loser that
        // writes the parent word on its way to `Claim::Lost` corrupts the
        // return routing — the original multi-parent race.)
        use std::sync::atomic::{AtomicU32, Ordering as O};
        const SLOTS: usize = 256;
        let words: std::sync::Arc<MarkWords> = std::sync::Arc::new(MarkWords::new(SLOTS));
        let winners: Vec<AtomicU32> = (0..SLOTS).map(|_| AtomicU32::new(u32::MAX)).collect();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let words = std::sync::Arc::clone(&words);
                let winners = &winners;
                scope.spawn(move || {
                    for (i, w) in winners.iter().enumerate() {
                        let parent = MarkParent::Vertex(VertexId::new(1000 + t));
                        if let Claim::Won(_) = words.try_claim(i, 1, 1, parent) {
                            w.store(t, O::SeqCst);
                        }
                    }
                });
            }
        });
        for (i, w) in winners.iter().enumerate() {
            let t = w.load(O::SeqCst);
            assert_ne!(t, u32::MAX, "every slot has a winner");
            assert_eq!(
                words.complete_child(i, 1),
                Some(MarkParent::Vertex(VertexId::new(1000 + t))),
                "slot {i}: drained parent is the winner's"
            );
        }
    }
}
