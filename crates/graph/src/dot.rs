//! Graphviz (DOT) export of computation-graph snapshots.
//!
//! Mirrors the paper's figure notation: solid arcs are `args`
//! (annotated `•v` / `•e` when vitally / eagerly requested), dashed arcs
//! point from a vertex to the parties in its `requested` set. Vertex fill
//! encodes the `M_R` marking state (white = unmarked, gray = transient,
//! green = marked), so a snapshot taken mid-cycle shows the marking wave.

use std::fmt::Write as _;

use crate::store::GraphStore;
use crate::vertex::{Color, RequestKind, Requester, Slot};

/// Options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Color vertices by their `M_R` / `M_T` marking state.
    pub marks: Option<Slot>,
    /// Include vertices on the free list.
    pub include_free: bool,
    /// Emit at most this many vertices (0 = unlimited).
    pub max_vertices: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            marks: Some(Slot::R),
            include_free: false,
            max_vertices: 0,
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the graph as DOT source.
///
/// # Example
///
/// ```
/// use dgr_graph::{dot, GraphStore, NodeLabel, PrimOp};
/// let mut g = GraphStore::with_capacity(2);
/// let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
/// let neg = g.alloc(NodeLabel::Prim(PrimOp::Neg)).unwrap();
/// g.connect(neg, one);
/// g.set_root(neg);
/// let src = dot::to_dot(&g, &dot::DotOptions::default());
/// assert!(src.starts_with("digraph"));
/// assert!(src.contains("v1 -> v0"));
/// ```
pub fn to_dot(g: &GraphStore, opts: &DotOptions) -> String {
    let mut out =
        String::from("digraph computation {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n");
    let mut emitted = 0usize;
    for id in g.ids() {
        if g.is_free(id) && !opts.include_free {
            continue;
        }
        if opts.max_vertices > 0 && emitted >= opts.max_vertices {
            let _ = writeln!(out, "  truncated [shape=plaintext label=\"…\"];");
            break;
        }
        emitted += 1;
        let v = g.vertex(id);
        let mut label = format!("{id}\\n{}", esc(&v.label.to_string()));
        if let Some(val) = &v.value {
            let _ = write!(label, "\\n= {}", esc(&val.to_string()));
        }
        let fill = match opts.marks {
            Some(slot) => match g.mark(id, slot).color {
                Color::Unmarked => "white",
                Color::Transient => "lightgray",
                Color::Marked => "palegreen",
            },
            None => "white",
        };
        let shape = if g.is_free(id) { "box" } else { "circle" };
        let peripheries = if g.root() == Some(id) { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  {id} [label=\"{label}\" style=filled fillcolor={fill} shape={shape} peripheries={peripheries}];"
        );
        for (i, &c) in v.args().iter().enumerate() {
            let ann = match v.request_kinds()[i] {
                Some(RequestKind::Vital) => " [label=\"•v\"]",
                Some(RequestKind::Eager) => " [label=\"•e\" style=bold]",
                None => "",
            };
            let _ = writeln!(out, "  {id} -> {c}{ann};");
        }
        for r in v.requested() {
            if let Requester::Vertex(x) = r {
                let _ = writeln!(out, "  {id} -> {x} [style=dashed color=gray];");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Convenience: DOT for the subgraph reachable from the root only.
pub fn to_dot_reachable(g: &GraphStore, opts: &DotOptions) -> String {
    let reach = crate::oracle::reachable_r(g);
    let mut out =
        String::from("digraph computation {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n");
    for id in g.ids().filter(|&v| reach.contains(v)) {
        let v = g.vertex(id);
        let fill = match opts.marks {
            Some(slot) => match g.mark(id, slot).color {
                Color::Unmarked => "white",
                Color::Transient => "lightgray",
                Color::Marked => "palegreen",
            },
            None => "white",
        };
        let _ = writeln!(
            out,
            "  {id} [label=\"{id}\\n{}\" style=filled fillcolor={fill}];",
            esc(&v.label.to_string())
        );
        for &c in v.args() {
            let _ = writeln!(out, "  {id} -> {c};");
        }
    }
    out.push_str("}\n");
    out
}

/// Vertices rendered by [`to_dot`] under the given options (for sizing).
pub fn rendered_count(g: &GraphStore, opts: &DotOptions) -> usize {
    let candidates = g
        .ids()
        .filter(|&v| opts.include_free || !g.is_free(v))
        .count();
    if opts.max_vertices > 0 {
        candidates.min(opts.max_vertices)
    } else {
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;
    use crate::label::{NodeLabel, PrimOp};

    fn sample() -> (GraphStore, VertexId, VertexId) {
        let mut g = GraphStore::with_capacity(4);
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let add = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        g.connect(add, one);
        g.vertex_mut(add)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.vertex_mut(one).add_requester(Requester::Vertex(add));
        g.set_root(add);
        (g, add, one)
    }

    #[test]
    fn dot_contains_vertices_edges_and_annotations() {
        let (g, add, one) = sample();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains(&format!("{add} [")));
        assert!(dot.contains(&format!("{add} -> {one} [label=\"•v\"]")));
        assert!(dot.contains(&format!("{one} -> {add} [style=dashed")));
        assert!(dot.contains("peripheries=2"), "root is highlighted");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn free_vertices_excluded_by_default() {
        let (mut g, _, one) = sample();
        g.disconnect(g.root().unwrap(), one);
        g.vertex_mut(one).take_requested();
        g.free(one);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(!dot.contains(&format!("{one} [")));
        let dot_all = to_dot(
            &g,
            &DotOptions {
                include_free: true,
                ..Default::default()
            },
        );
        assert!(dot_all.contains(&format!("{one} [")));
    }

    #[test]
    fn truncation_respected() {
        let (g, ..) = sample();
        let opts = DotOptions {
            max_vertices: 1,
            ..Default::default()
        };
        assert_eq!(rendered_count(&g, &opts), 1);
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("truncated"));
    }

    #[test]
    fn reachable_variant_only_renders_r() {
        let (mut g, ..) = sample();
        let stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
        let dot = to_dot_reachable(&g, &DotOptions::default());
        assert!(!dot.contains(&format!("{stray} [")));
    }

    #[test]
    fn marking_colors_reflected() {
        let (mut g, add, _) = sample();
        g.mark_mut(add, Slot::R).color = Color::Marked;
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("palegreen"));
    }
}
