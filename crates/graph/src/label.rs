//! Vertex labels: the primitive operators of the reduction model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A strict primitive operator.
///
/// Strict operators need the values of all their arguments before they can
/// compute (the paper's footnote 4); the reduction engine therefore requests
/// every argument *vitally*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (errors on division by zero).
    Div,
    /// Integer remainder (errors on division by zero).
    Mod,
    /// Integer negation (unary).
    Neg,
    /// Equality on integers and booleans.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than on integers.
    Lt,
    /// Less-or-equal on integers.
    Le,
    /// Greater-than on integers.
    Gt,
    /// Greater-or-equal on integers.
    Ge,
    /// Boolean conjunction (strict in both arguments).
    And,
    /// Boolean disjunction (strict in both arguments).
    Or,
    /// Boolean negation (unary).
    Not,
    /// Head of a cons cell (unary, strict in the spine).
    Head,
    /// Tail of a cons cell (unary, strict in the spine).
    Tail,
    /// Test for the empty list (unary, strict in the spine).
    IsNil,
}

impl PrimOp {
    /// Number of arguments the operator consumes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg | PrimOp::Not | PrimOp::Head | PrimOp::Tail | PrimOp::IsNil => 1,
            _ => 2,
        }
    }

    /// The operator's conventional symbol, for display and parsing.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Mod => "%",
            PrimOp::Neg => "neg",
            PrimOp::Eq => "==",
            PrimOp::Ne => "!=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
            PrimOp::Not => "not",
            PrimOp::Head => "head",
            PrimOp::Tail => "tail",
            PrimOp::IsNil => "isnil",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The label of a vertex in the computation graph.
///
/// Labels drive the reduction process; the marking processes in `dgr-core`
/// never inspect them (marking is purely a matter of graph connectivity,
/// which is the paper's central observation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeLabel {
    /// An already-computed literal value.
    Lit(Value),
    /// A strict primitive; `args` are its operands in order.
    Prim(PrimOp),
    /// A conditional; `args = [predicate, then-branch, else-branch]`.
    /// Only the predicate is demanded vitally; branches may be demanded
    /// *eagerly* under speculative evaluation (paper Section 3.2).
    If,
    /// A lazy cons constructor; `args = [head, tail]`. In weak head normal
    /// form immediately, without demanding either component.
    Cons,
    /// A function application; `args = [function, x1, …, xk]`. Reduction
    /// demands the function vertex, then splices in the supercombinator
    /// body with `expand-node`.
    Apply,
    /// An indirection to another vertex; `args = [target]`. Produced when a
    /// reduction overwrites a vertex with a reference to its result.
    Ind,
    /// An uninitialized vertex on the free list.
    #[default]
    Hole,
}

impl NodeLabel {
    /// Convenience constructor for an integer literal label.
    pub fn lit_int(n: i64) -> Self {
        NodeLabel::Lit(Value::Int(n))
    }

    /// Convenience constructor for a boolean literal label.
    pub fn lit_bool(b: bool) -> Self {
        NodeLabel::Lit(Value::Bool(b))
    }

    /// Returns `true` if this label is a literal.
    pub fn is_lit(&self) -> bool {
        matches!(self, NodeLabel::Lit(_))
    }

    /// Returns `true` if this is the free-list placeholder label.
    pub fn is_hole(&self) -> bool {
        matches!(self, NodeLabel::Hole)
    }
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeLabel::Lit(v) => write!(f, "lit {v}"),
            NodeLabel::Prim(op) => write!(f, "prim {op}"),
            NodeLabel::If => f.write_str("if"),
            NodeLabel::Cons => f.write_str("cons"),
            NodeLabel::Apply => f.write_str("apply"),
            NodeLabel::Ind => f.write_str("ind"),
            NodeLabel::Hole => f.write_str("hole"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Neg.arity(), 1);
        assert_eq!(PrimOp::Head.arity(), 1);
        assert_eq!(PrimOp::Le.arity(), 2);
    }

    #[test]
    fn symbols_unique() {
        use std::collections::HashSet;
        let ops = [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Mod,
            PrimOp::Neg,
            PrimOp::Eq,
            PrimOp::Ne,
            PrimOp::Lt,
            PrimOp::Le,
            PrimOp::Gt,
            PrimOp::Ge,
            PrimOp::And,
            PrimOp::Or,
            PrimOp::Not,
            PrimOp::Head,
            PrimOp::Tail,
            PrimOp::IsNil,
        ];
        let set: HashSet<_> = ops.iter().map(|o| o.symbol()).collect();
        assert_eq!(set.len(), ops.len());
    }

    #[test]
    fn label_constructors() {
        assert!(NodeLabel::lit_int(1).is_lit());
        assert!(NodeLabel::lit_bool(true).is_lit());
        assert!(NodeLabel::Hole.is_hole());
        assert!(!NodeLabel::If.is_hole());
        assert_eq!(NodeLabel::default(), NodeLabel::Hole);
    }

    #[test]
    fn display_is_nonempty() {
        for l in [
            NodeLabel::lit_int(0),
            NodeLabel::Prim(PrimOp::Add),
            NodeLabel::If,
            NodeLabel::Cons,
            NodeLabel::Apply,
            NodeLabel::Ind,
            NodeLabel::Hole,
        ] {
            assert!(!l.to_string().is_empty());
        }
    }
}
