//! The graph store: the vertex universe `V`, the free list `F`, the root,
//! and the partition of vertices among processing elements.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::ids::{PeId, VertexId};
use crate::label::NodeLabel;
use crate::vertex::{MarkSlot, Requester, Slot, Vertex};

/// How vertices are assigned to processing elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// `v mod n`: neighboring indices land on different PEs (fine-grained,
    /// maximizes task traffic between PEs).
    Modulo,
    /// Contiguous blocks of `⌈|V|/n⌉` indices per PE (coarse-grained,
    /// minimizes cross-partition arcs for sequentially-allocated graphs).
    Block,
}

/// Maps vertices to the processing element that owns them.
///
/// # Example
///
/// ```
/// use dgr_graph::{PartitionMap, PartitionStrategy, VertexId};
/// let p = PartitionMap::new(4, 100, PartitionStrategy::Modulo);
/// assert_eq!(p.pe_of(VertexId::new(5)).index(), 1);
/// assert_eq!(p.num_pes(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    num_pes: u16,
    capacity: usize,
    strategy: PartitionStrategy,
}

impl PartitionMap {
    /// Creates a partition of `capacity` vertex slots over `num_pes` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16, capacity: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        PartitionMap {
            num_pes,
            capacity,
            strategy,
        }
    }

    /// The PE owning vertex `v`.
    pub fn pe_of(&self, v: VertexId) -> PeId {
        let n = self.num_pes as usize;
        match self.strategy {
            PartitionStrategy::Modulo => PeId::new((v.index() % n) as u16),
            PartitionStrategy::Block => {
                let block = self.capacity.div_ceil(n).max(1);
                PeId::new(((v.index() / block).min(n - 1)) as u16)
            }
        }
    }

    /// Number of processing elements.
    pub fn num_pes(&self) -> u16 {
        self.num_pes
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }
}

/// A pluggable per-vertex byte-cost model: maps a label to the number of
/// bytes the vertex is modeled to occupy in its PE's local store.
///
/// The store charges the model once at allocation time and remembers the
/// result in a SoA weights array, so later in-place label overwrites (a
/// reduction rewriting a vertex to an indirection) keep the allocation-time
/// weight until the vertex is freed or explicitly
/// [reweighted](GraphStore::set_vertex_weight). ROADMAP item 3's weighted
/// task trees plug in their own model via
/// [`GraphStore::set_cost_model`].
pub type CostModel = fn(&NodeLabel) -> u32;

/// The default arity-derived cost model: a fixed per-vertex base plus one
/// arc slot per argument the label naturally takes (`Prim` → its operator
/// arity, `If` → 3, `Cons`/`Apply` → 2, `Ind` → 1, `Lit`/`Hole` → 0).
pub fn default_cost_model(label: &NodeLabel) -> u32 {
    /// Modeled size of the vertex header (label, marks, stamps).
    const BASE: u32 = 16;
    /// Modeled size of one outgoing arc slot.
    const ARC: u32 = 8;
    let arity = match label {
        NodeLabel::Prim(op) => op.arity(),
        NodeLabel::If => 3,
        NodeLabel::Cons | NodeLabel::Apply => 2,
        NodeLabel::Ind => 1,
        NodeLabel::Lit(_) | NodeLabel::Hole => 0,
    };
    BASE + ARC * arity as u32
}

/// One byte-accounting event, journaled by the store when
/// [`GraphStore::set_heap_journal`] is on so an external observer (the
/// telemetry heap tracker) can replay allocation traffic without hooking
/// every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapDelta {
    /// A vertex left the free list carrying `bytes` modeled bytes.
    Alloc {
        /// The allocated vertex.
        id: VertexId,
        /// Its modeled byte weight at allocation time.
        bytes: u32,
    },
    /// A vertex returned to the free list, releasing `bytes`.
    Free {
        /// The freed vertex.
        id: VertexId,
        /// The modeled byte weight it released.
        bytes: u32,
    },
    /// A live vertex's weight was explicitly changed.
    Reweight {
        /// The reweighted vertex.
        id: VertexId,
        /// The weight before the change.
        old: u32,
        /// The weight after the change.
        new: u32,
    },
}

/// The store-wide epoch counters that implement O(1) lazy resets: one
/// marking epoch per [`Slot`] and one touch epoch for the task-activity
/// stamps. Epochs start at 1 so the all-zero state of a fresh vertex is
/// always stale (= reads as reset / untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epochs {
    /// Current marking cycle per slot, indexed by [`Slot::index`].
    pub mark: [u32; 2],
    /// Current touch epoch.
    pub touch: u32,
}

impl Default for Epochs {
    fn default() -> Self {
        Epochs {
            mark: [1, 1],
            touch: 1,
        }
    }
}

/// The computation-graph store: all vertices (the finite universe `V`), the
/// free list `F`, the distinguished root, and the epoch counters that make
/// between-cycle resets O(1).
///
/// The store itself is runtime-agnostic data; the deterministic simulator
/// holds one directly, and the threaded runtime shards it behind per-vertex
/// locks (see `dgr-sim`).
///
/// # Example
///
/// ```
/// use dgr_graph::{GraphStore, NodeLabel};
/// # fn main() -> Result<(), dgr_graph::GraphError> {
/// let mut g = GraphStore::with_capacity(4);
/// assert_eq!(g.free_count(), 4);
/// let a = g.alloc(NodeLabel::lit_int(1))?;
/// assert_eq!(g.free_count(), 3);
/// g.free(a);
/// assert_eq!(g.free_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStore {
    verts: Vec<Vertex>,
    free: Vec<VertexId>,
    root: Option<VertexId>,
    epochs: Epochs,
    /// Modeled byte weight per vertex slot (SoA, parallel to `verts`);
    /// free slots weigh 0.
    weights: Vec<u32>,
    /// Sum of the weights of all live vertices.
    live_bytes: u64,
    /// Cumulative bytes ever charged by allocations (and upward
    /// reweights); never decreases.
    alloc_bytes_total: u64,
    /// The cost model charged at allocation time.
    cost_model: CostModel,
    /// Byte-accounting journal, appended only while `journal_on`.
    journal: Vec<HeapDelta>,
    journal_on: bool,
}

impl GraphStore {
    /// Creates a store whose free list holds `capacity` fresh vertices.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut verts = Vec::with_capacity(capacity);
        let mut free = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let mut v = Vertex::default();
            v.in_free_list = true;
            verts.push(v);
            free.push(VertexId::new(i as u32));
        }
        // Pop from the low end first so allocation order matches index order,
        // which keeps examples and tests readable.
        free.reverse();
        GraphStore {
            weights: vec![0; capacity],
            verts,
            free,
            root: None,
            epochs: Epochs::default(),
            live_bytes: 0,
            alloc_bytes_total: 0,
            cost_model: default_cost_model,
            journal: Vec::new(),
            journal_on: false,
        }
    }

    /// Creates an empty store (no capacity; grow with [`GraphStore::grow`]).
    pub fn new() -> Self {
        GraphStore::with_capacity(0)
    }

    /// Adds `extra` fresh vertices to the free list.
    pub fn grow(&mut self, extra: usize) {
        let start = self.verts.len();
        for i in 0..extra {
            let mut v = Vertex::default();
            v.in_free_list = true;
            self.verts.push(v);
            self.weights.push(0);
            self.free.push(VertexId::new((start + i) as u32));
        }
    }

    /// Allocates a vertex from the free list `F` with the given label.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfVertices`] if `F` is empty.
    pub fn alloc(&mut self, label: NodeLabel) -> Result<VertexId, GraphError> {
        let id = self.free.pop().ok_or(GraphError::OutOfVertices {
            requested: 1,
            available: 0,
        })?;
        let bytes = (self.cost_model)(&label);
        let v = &mut self.verts[id.index()];
        debug_assert!(v.in_free_list);
        *v = Vertex::new(label);
        self.charge_alloc(id, bytes);
        Ok(id)
    }

    /// Allocates `n` vertices at once (all-or-nothing).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfVertices`] if fewer than `n` vertices are
    /// free; in that case nothing is allocated.
    pub fn alloc_many(&mut self, n: usize) -> Result<Vec<VertexId>, GraphError> {
        if self.free.len() < n {
            return Err(GraphError::OutOfVertices {
                requested: n,
                available: self.free.len(),
            });
        }
        let bytes = (self.cost_model)(&NodeLabel::Hole);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.free.pop().expect("checked length");
            self.verts[id.index()] = Vertex::new(NodeLabel::Hole);
            self.charge_alloc(id, bytes);
            out.push(id);
        }
        Ok(out)
    }

    /// Returns vertex `id` to the free list, clearing its contents.
    ///
    /// Freeing an already-free vertex is a no-op (the restructuring phase
    /// may discover the same garbage vertex through several paths).
    pub fn free(&mut self, id: VertexId) {
        let v = &mut self.verts[id.index()];
        if v.in_free_list {
            return;
        }
        v.clear_for_free();
        v.in_free_list = true;
        self.free.push(id);
        let bytes = std::mem::take(&mut self.weights[id.index()]);
        self.live_bytes -= u64::from(bytes);
        if self.journal_on {
            self.journal.push(HeapDelta::Free { id, bytes });
        }
    }

    // ------------------------------------------------------------------
    // Byte-weighted allocation accounting. Every allocation charges the
    // cost model once; the result lives in a SoA weights array so the
    // running live-bytes clock is one add per alloc and one subtract per
    // free — cheap enough to stay on in every build, which is what lets
    // `GcTrigger::HeapBytes` work with telemetry compiled out.
    // ------------------------------------------------------------------

    fn charge_alloc(&mut self, id: VertexId, bytes: u32) {
        self.weights[id.index()] = bytes;
        self.live_bytes += u64::from(bytes);
        self.alloc_bytes_total += u64::from(bytes);
        if self.journal_on {
            self.journal.push(HeapDelta::Alloc { id, bytes });
        }
    }

    /// Sum of the modeled byte weights of all live vertices.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Cumulative bytes ever charged by allocations and upward
    /// reweights (never decreases).
    pub fn alloc_bytes_total(&self) -> u64 {
        self.alloc_bytes_total
    }

    /// The modeled byte weight of vertex `id` (0 for free slots).
    pub fn vertex_bytes(&self, id: VertexId) -> u32 {
        self.weights[id.index()]
    }

    /// Explicitly reweights live vertex `id` to `bytes`, adjusting the
    /// live-bytes clock by the difference. Upward reweights also count
    /// toward [`GraphStore::alloc_bytes_total`] (they model growth).
    /// No-op on a free slot.
    pub fn set_vertex_weight(&mut self, id: VertexId, bytes: u32) {
        if self.verts[id.index()].in_free_list {
            return;
        }
        let old = std::mem::replace(&mut self.weights[id.index()], bytes);
        self.live_bytes = self.live_bytes - u64::from(old) + u64::from(bytes);
        self.alloc_bytes_total += u64::from(bytes.saturating_sub(old));
        if self.journal_on && old != bytes {
            self.journal.push(HeapDelta::Reweight {
                id,
                old,
                new: bytes,
            });
        }
    }

    /// Installs a different cost model for *future* allocations.
    /// Weights already charged keep their allocation-time values.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.cost_model = model;
    }

    /// Turns the byte-accounting journal on or off. While on, every
    /// alloc/free/reweight appends a [`HeapDelta`]; the observer drains
    /// them with [`GraphStore::take_heap_journal`].
    pub fn set_heap_journal(&mut self, on: bool) {
        self.journal_on = on;
        if !on {
            self.journal.clear();
        }
    }

    /// Drains and returns the accumulated heap journal.
    pub fn take_heap_journal(&mut self) -> Vec<HeapDelta> {
        std::mem::take(&mut self.journal)
    }

    /// Whether any journal entries are waiting to be drained.
    pub fn heap_journal_pending(&self) -> bool {
        !self.journal.is_empty()
    }

    /// Shared access to a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.verts[id.index()]
    }

    /// Exclusive access to a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertex_mut(&mut self, id: VertexId) -> &mut Vertex {
        &mut self.verts[id.index()]
    }

    /// Fallible shared access.
    pub fn try_vertex(&self, id: VertexId) -> Result<&Vertex, GraphError> {
        self.verts
            .get(id.index())
            .ok_or(GraphError::InvalidVertex(id))
    }

    // ------------------------------------------------------------------
    // Epoch-based marking state. Starting a cycle is a single counter
    // bump; per-vertex slots are reset lazily on first access, so the
    // O(|V|) between-pass sweep the paper's `reset` step implies is gone.
    // ------------------------------------------------------------------

    /// The current marking epoch of a slot.
    pub fn mark_epoch(&self, slot: Slot) -> u32 {
        self.epochs.mark[slot.index()]
    }

    /// Begins a new marking cycle for `slot`: every vertex's slot now
    /// reads as freshly reset. O(1).
    pub fn begin_mark_cycle(&mut self, slot: Slot) {
        self.epochs.mark[slot.index()] = self.epochs.mark[slot.index()].wrapping_add(1);
    }

    /// The epoch-normalized marking state of vertex `v` in `slot`: the
    /// stored slot if it belongs to the current cycle, a reset slot
    /// otherwise. This is the canonical way to *read* marks.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn mark(&self, v: VertexId, slot: Slot) -> MarkSlot {
        self.verts[v.index()].mark_at(slot, self.epochs.mark[slot.index()])
    }

    /// Mutable current-cycle marking state of vertex `v` in `slot`,
    /// lazily resetting a stale slot first. This is the canonical way to
    /// *write* marks.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn mark_mut(&mut self, v: VertexId, slot: Slot) -> &mut MarkSlot {
        self.verts[v.index()].mark_at_mut(slot, self.epochs.mark[slot.index()])
    }

    /// Records task activity at `v` (the deadlock report's activity
    /// screen).
    pub fn touch(&mut self, v: VertexId) {
        self.verts[v.index()].touched_at = self.epochs.touch;
    }

    /// Whether `v` has seen task activity since the last
    /// [`GraphStore::clear_touched`].
    pub fn is_touched(&self, v: VertexId) -> bool {
        self.verts[v.index()].touched_at == self.epochs.touch
    }

    /// Clears every vertex's activity stamp. O(1) (epoch bump).
    pub fn clear_touched(&mut self) {
        self.epochs.touch = self.epochs.touch.wrapping_add(1);
    }

    /// The distinguished root vertex, if set.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Declares `id` the root at which the reduction process is initiated.
    pub fn set_root(&mut self, id: VertexId) {
        self.root = Some(id);
    }

    /// Total number of vertex slots (`|V|`).
    pub fn capacity(&self) -> usize {
        self.verts.len()
    }

    /// Number of vertices on the free list (`|F|`).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of vertices *not* on the free list.
    pub fn live_count(&self) -> usize {
        self.verts.len() - self.free.len()
    }

    /// Whether `id` currently sits on the free list.
    pub fn is_free(&self, id: VertexId) -> bool {
        self.verts[id.index()].is_free()
    }

    /// Iterates over all vertex ids (free and allocated).
    pub fn ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.verts.len() as u32).map(VertexId::new)
    }

    /// Iterates over allocated (non-free) vertex ids.
    pub fn live_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.ids().filter(move |&id| !self.is_free(id))
    }

    // ------------------------------------------------------------------
    // Raw (non-cooperating) graph mutations. The *cooperating* versions
    // that splice extra marking activity into the marking tree live in
    // `dgr-core`; these are the bare `connect` / `disconnect` /
    // `splice-in-subgraph` operations of Figure 4-2's prose.
    // ------------------------------------------------------------------

    /// `connect(a, b)`: adds `b` to `children(a)` (an unrequested arc).
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn connect(&mut self, a: VertexId, b: VertexId) {
        debug_assert!(!self.verts[b.index()].is_free(), "connecting to free {b}");
        self.verts[a.index()].push_arg(b);
    }

    /// `disconnect(a, b)`: removes one occurrence of `b` from
    /// `children(a)`. Returns `true` if an arc was removed.
    pub fn disconnect(&mut self, a: VertexId, b: VertexId) -> bool {
        self.verts[a.index()].remove_arg(b).is_some()
    }

    /// Removes `a` from `requested(b)` (the second half of the paper's
    /// *dereference* of an eagerly-requested vertex).
    pub fn remove_requester(&mut self, b: VertexId, a: Requester) -> bool {
        self.verts[b.index()].remove_requester(a)
    }

    /// Decomposes the store into its vertices, free list, root and epoch
    /// counters, for conversion into a shared (per-vertex-locked)
    /// representation by a parallel runtime.
    pub fn into_parts(self) -> (Vec<Vertex>, Vec<VertexId>, Option<VertexId>, Epochs) {
        (self.verts, self.free, self.root, self.epochs)
    }

    /// Rebuilds a store from parts produced by [`GraphStore::into_parts`]
    /// (or assembled by a parallel runtime). Free-list flags are
    /// resynchronized from the `free` vector, and byte weights are
    /// re-derived from each live vertex's current label under the
    /// *default* cost model (the parts carry no model, and a rebuilt
    /// store restarts its allocation accounting).
    pub fn from_parts(
        mut verts: Vec<Vertex>,
        free: Vec<VertexId>,
        root: Option<VertexId>,
        epochs: Epochs,
    ) -> Self {
        for v in verts.iter_mut() {
            v.in_free_list = false;
        }
        for &id in &free {
            verts[id.index()].in_free_list = true;
        }
        let mut weights = vec![0u32; verts.len()];
        let mut live_bytes = 0u64;
        for (w, v) in weights.iter_mut().zip(verts.iter()) {
            if !v.in_free_list {
                *w = default_cost_model(&v.label);
                live_bytes += u64::from(*w);
            }
        }
        GraphStore {
            verts,
            free,
            root,
            epochs,
            weights,
            live_bytes,
            alloc_bytes_total: live_bytes,
            cost_model: default_cost_model,
            journal: Vec::new(),
            journal_on: false,
        }
    }

    /// Verifies store-wide structural invariants (for tests): parallel
    /// vectors consistent, free-list flags in sync, arcs target real slots.
    pub fn check_consistency(&self) -> Result<(), String> {
        for id in self.ids() {
            let v = self.vertex(id);
            if !v.check_consistency() {
                return Err(format!("{id}: parallel vectors out of sync"));
            }
            for &a in v.args() {
                if a.index() >= self.verts.len() {
                    return Err(format!("{id}: arc to nonexistent {a}"));
                }
            }
        }
        let mut free_flags = 0usize;
        for id in self.ids() {
            if self.is_free(id) {
                free_flags += 1;
            }
        }
        if free_flags != self.free.len() {
            return Err(format!(
                "free-list length {} disagrees with {} flagged vertices",
                self.free.len(),
                free_flags
            ));
        }
        if self.weights.len() != self.verts.len() {
            return Err(format!(
                "weights array length {} disagrees with {} vertices",
                self.weights.len(),
                self.verts.len()
            ));
        }
        let mut live_bytes = 0u64;
        for id in self.ids() {
            let w = self.weights[id.index()];
            if self.is_free(id) {
                if w != 0 {
                    return Err(format!("{id}: free slot carries weight {w}"));
                }
            } else {
                live_bytes += u64::from(w);
            }
        }
        if live_bytes != self.live_bytes {
            return Err(format!(
                "live-bytes clock {} disagrees with summed weights {live_bytes}",
                self.live_bytes
            ));
        }
        Ok(())
    }
}

impl Default for GraphStore {
    fn default() -> Self {
        GraphStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::PrimOp;
    use crate::vertex::RequestKind;

    #[test]
    fn alloc_pops_low_indices_first() {
        let mut g = GraphStore::with_capacity(3);
        let a = g.alloc(NodeLabel::Hole).unwrap();
        let b = g.alloc(NodeLabel::Hole).unwrap();
        assert_eq!(a, VertexId::new(0));
        assert_eq!(b, VertexId::new(1));
    }

    #[test]
    fn alloc_exhaustion_errors() {
        let mut g = GraphStore::with_capacity(1);
        g.alloc(NodeLabel::Hole).unwrap();
        let err = g.alloc(NodeLabel::Hole).unwrap_err();
        assert!(matches!(err, GraphError::OutOfVertices { .. }));
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut g = GraphStore::with_capacity(3);
        assert!(g.alloc_many(4).is_err());
        assert_eq!(g.free_count(), 3);
        let ids = g.alloc_many(3).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(g.free_count(), 0);
    }

    #[test]
    fn free_clears_and_recycles() {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(a, b);
        g.free(a);
        assert!(g.is_free(a));
        assert!(g.vertex(a).label.is_hole());
        assert!(g.vertex(a).args().is_empty());
        // Double free is a no-op.
        g.free(a);
        assert_eq!(g.free_count(), 1);
        let again = g.alloc(NodeLabel::If).unwrap();
        assert_eq!(again, a, "freed slot is reused");
    }

    #[test]
    fn grow_extends_free_list() {
        let mut g = GraphStore::with_capacity(1);
        g.alloc(NodeLabel::Hole).unwrap();
        g.grow(5);
        assert_eq!(g.capacity(), 6);
        assert_eq!(g.free_count(), 5);
        assert!(g.alloc(NodeLabel::Hole).is_ok());
    }

    #[test]
    fn connect_disconnect_roundtrip() {
        let mut g = GraphStore::with_capacity(3);
        let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(2)).unwrap();
        g.connect(a, b);
        g.connect(a, b); // multiset arc
        assert_eq!(g.vertex(a).args(), &[b, b]);
        assert!(g.disconnect(a, b));
        assert_eq!(g.vertex(a).args(), &[b]);
        assert!(g.disconnect(a, b));
        assert!(!g.disconnect(a, b));
    }

    #[test]
    fn remove_requester_via_store() {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::lit_int(0)).unwrap();
        g.vertex_mut(b).add_requester(Requester::Vertex(a));
        assert!(g.remove_requester(b, Requester::Vertex(a)));
        assert!(!g.remove_requester(b, Requester::Vertex(a)));
    }

    #[test]
    fn live_ids_excludes_free() {
        let mut g = GraphStore::with_capacity(3);
        let a = g.alloc(NodeLabel::Hole).unwrap();
        let b = g.alloc(NodeLabel::Hole).unwrap();
        g.free(a);
        let live: Vec<_> = g.live_ids().collect();
        assert_eq!(live, vec![b]);
        assert_eq!(g.live_count(), 1);
    }

    #[test]
    fn consistency_check_passes_on_sane_store() {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(a, b);
        g.vertex_mut(a)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.set_root(a);
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn begin_mark_cycle_resets_all_marks_in_o1() {
        use crate::vertex::Color;
        let mut g = GraphStore::with_capacity(3);
        let a = g.alloc(NodeLabel::Hole).unwrap();
        let b = g.alloc(NodeLabel::Hole).unwrap();
        g.mark_mut(a, Slot::R).color = Color::Marked;
        g.mark_mut(b, Slot::R).mt_cnt = 5;
        g.mark_mut(b, Slot::T).color = Color::Transient;
        g.begin_mark_cycle(Slot::R);
        assert!(g.mark(a, Slot::R).is_unmarked());
        assert_eq!(g.mark(b, Slot::R).mt_cnt, 0);
        // The T slot has its own epoch and is untouched by R's reset.
        assert_eq!(g.mark(b, Slot::T).color, Color::Transient);
        // Writing after the reset stamps the new epoch.
        g.mark_mut(a, Slot::R).color = Color::Transient;
        assert_eq!(g.mark(a, Slot::R).color, Color::Transient);
    }

    #[test]
    fn touch_epoch_clears_in_o1() {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::Hole).unwrap();
        let b = g.alloc(NodeLabel::Hole).unwrap();
        assert!(!g.is_touched(a));
        g.touch(a);
        assert!(g.is_touched(a));
        assert!(!g.is_touched(b));
        g.clear_touched();
        assert!(!g.is_touched(a));
        g.touch(b);
        assert!(g.is_touched(b));
    }

    #[test]
    fn parts_roundtrip_preserves_epochs() {
        use crate::vertex::Color;
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::Hole).unwrap();
        g.mark_mut(a, Slot::R).color = Color::Marked;
        g.begin_mark_cycle(Slot::R);
        g.begin_mark_cycle(Slot::R);
        let epoch = g.mark_epoch(Slot::R);
        let (verts, free, root, epochs) = g.into_parts();
        let g2 = GraphStore::from_parts(verts, free, root, epochs);
        assert_eq!(g2.mark_epoch(Slot::R), epoch);
        // The stale pre-reset mark stays invisible after the roundtrip.
        assert!(g2.mark(a, Slot::R).is_unmarked());
    }

    #[test]
    fn byte_accounting_tracks_alloc_and_free() {
        let mut g = GraphStore::with_capacity(4);
        assert_eq!(g.live_bytes(), 0);
        let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap(); // 16 + 2*8
        let b = g.alloc(NodeLabel::lit_int(7)).unwrap(); // 16 + 0
        assert_eq!(g.vertex_bytes(a), 32);
        assert_eq!(g.vertex_bytes(b), 16);
        assert_eq!(g.live_bytes(), 48);
        assert_eq!(g.alloc_bytes_total(), 48);
        g.free(a);
        assert_eq!(g.vertex_bytes(a), 0);
        assert_eq!(g.live_bytes(), 16);
        assert_eq!(g.alloc_bytes_total(), 48, "cumulative never decreases");
        // Double free charges nothing twice.
        g.free(a);
        assert_eq!(g.live_bytes(), 16);
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn reweight_adjusts_the_clock_and_respects_free_slots() {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::If).unwrap(); // 16 + 3*8 = 40
        g.set_vertex_weight(a, 100);
        assert_eq!(g.live_bytes(), 100);
        assert_eq!(g.alloc_bytes_total(), 100, "upward reweight charged");
        g.set_vertex_weight(a, 10);
        assert_eq!(g.live_bytes(), 10);
        assert_eq!(g.alloc_bytes_total(), 100, "downward reweight is free");
        g.free(a);
        g.set_vertex_weight(a, 999);
        assert_eq!(g.live_bytes(), 0, "reweighting a free slot is a no-op");
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn pluggable_cost_model_applies_to_future_allocs() {
        fn flat(_: &NodeLabel) -> u32 {
            64
        }
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::Cons).unwrap();
        g.set_cost_model(flat);
        let b = g.alloc(NodeLabel::Cons).unwrap();
        assert_eq!(g.vertex_bytes(a), 32, "existing weight untouched");
        assert_eq!(g.vertex_bytes(b), 64);
    }

    #[test]
    fn journal_replays_the_byte_traffic() {
        let mut g = GraphStore::with_capacity(3);
        let silent = g.alloc(NodeLabel::Hole).unwrap();
        g.set_heap_journal(true);
        assert!(!g.heap_journal_pending());
        let a = g.alloc(NodeLabel::Ind).unwrap(); // 16 + 8
        g.set_vertex_weight(a, 30);
        g.set_vertex_weight(a, 30); // no change, no entry
        g.free(a);
        g.free(silent);
        let j = g.take_heap_journal();
        assert_eq!(
            j,
            vec![
                HeapDelta::Alloc { id: a, bytes: 24 },
                HeapDelta::Reweight {
                    id: a,
                    old: 24,
                    new: 30
                },
                HeapDelta::Free { id: a, bytes: 30 },
                HeapDelta::Free {
                    id: silent,
                    bytes: 16
                },
            ]
        );
        assert!(!g.heap_journal_pending());
        g.set_heap_journal(false);
        let _ = g.alloc(NodeLabel::Hole).unwrap();
        assert!(!g.heap_journal_pending(), "journal off records nothing");
    }

    #[test]
    fn from_parts_rederives_weights_from_labels() {
        let mut g = GraphStore::with_capacity(3);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.free(b);
        g.set_vertex_weight(a, 7); // custom weight is NOT carried by parts
        let (verts, free, root, epochs) = g.into_parts();
        let g2 = GraphStore::from_parts(verts, free, root, epochs);
        assert_eq!(g2.vertex_bytes(a), 40, "re-derived from the If label");
        assert_eq!(g2.live_bytes(), 40);
        assert_eq!(g2.alloc_bytes_total(), 40);
        assert!(g2.check_consistency().is_ok());
    }

    #[test]
    fn partition_modulo() {
        let p = PartitionMap::new(4, 16, PartitionStrategy::Modulo);
        assert_eq!(p.pe_of(VertexId::new(0)).index(), 0);
        assert_eq!(p.pe_of(VertexId::new(7)).index(), 3);
        assert_eq!(p.pe_of(VertexId::new(9)).index(), 1);
    }

    #[test]
    fn partition_block() {
        let p = PartitionMap::new(4, 16, PartitionStrategy::Block);
        assert_eq!(p.pe_of(VertexId::new(0)).index(), 0);
        assert_eq!(p.pe_of(VertexId::new(3)).index(), 0);
        assert_eq!(p.pe_of(VertexId::new(4)).index(), 1);
        assert_eq!(p.pe_of(VertexId::new(15)).index(), 3);
        // Out-of-range indices clamp to the last PE rather than panic.
        assert_eq!(p.pe_of(VertexId::new(100)).index(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn partition_requires_a_pe() {
        let _ = PartitionMap::new(0, 4, PartitionStrategy::Modulo);
    }
}
