//! Ultimate values computed by the reduction process.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;

/// The *value* of a vertex: its unique ultimate value computed by the
/// reduction process (weak head normal form).
///
/// Scalars are carried directly. Structured data stays in the graph:
/// a [`Value::Cons`] names the head and tail *vertices*, so demanding a list
/// element is a further graph traversal (this is what makes `add-reference`
/// necessary — see `dgr-core`). A [`Value::Fn`] is a (possibly partial)
/// supercombinator application awaiting more arguments.
///
/// [`Value::Bottom`] is the explicit `⊥` produced by the optional
/// `is-bottom`-style deadlock recovery the paper's footnote 5 sketches.
///
/// # Example
///
/// ```
/// use dgr_graph::Value;
/// assert!(Value::Int(3).as_int().is_some());
/// assert!(Value::Bool(true).as_bool().unwrap());
/// assert!(Value::Bottom.is_bottom());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A machine integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A cons cell in weak head normal form; head and tail remain vertices.
    Cons(VertexId, VertexId),
    /// A (possibly partial) function value: supercombinator template plus
    /// the argument vertices captured so far.
    Fn(u32, Vec<VertexId>),
    /// The undefined value `⊥`, produced by deadlock recovery.
    Bottom,
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the head and tail vertices, if this is a [`Value::Cons`].
    pub fn as_cons(&self) -> Option<(VertexId, VertexId)> {
        match self {
            Value::Cons(h, t) => Some((*h, *t)),
            _ => None,
        }
    }

    /// Returns `true` if this is the undefined value `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Value::Bottom)
    }

    /// Vertices this value keeps live (the components of structured data).
    pub fn referenced_vertices(&self) -> Vec<VertexId> {
        match self {
            Value::Cons(h, t) => vec![*h, *t],
            Value::Fn(_, caps) => caps.clone(),
            _ => Vec::new(),
        }
    }

    /// Visits the vertices [`Value::referenced_vertices`] returns, in the
    /// same order, without allocating.
    pub fn for_each_referenced(&self, mut f: impl FnMut(VertexId)) {
        match self {
            Value::Cons(h, t) => {
                f(*h);
                f(*t);
            }
            Value::Fn(_, caps) => {
                for &c in caps {
                    f(c);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Nil => write!(f, "nil"),
            Value::Cons(h, t) => write!(f, "cons({h}, {t})"),
            Value::Fn(tpl, caps) => write!(f, "fn#{tpl}/{}", caps.len()),
            Value::Bottom => write!(f, "⊥"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(false).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let (h, t) = (VertexId::new(1), VertexId::new(2));
        assert_eq!(Value::Cons(h, t).as_cons(), Some((h, t)));
        assert!(Value::Bottom.is_bottom());
        assert!(!Value::Nil.is_bottom());
    }

    #[test]
    fn referenced_vertices_cover_structured_data() {
        let (h, t) = (VertexId::new(1), VertexId::new(2));
        assert_eq!(Value::Cons(h, t).referenced_vertices(), vec![h, t]);
        assert_eq!(Value::Fn(0, vec![h]).referenced_vertices(), vec![h]);
        assert!(Value::Int(0).referenced_vertices().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            Value::Int(-3),
            Value::Bool(true),
            Value::Nil,
            Value::Cons(VertexId::new(0), VertexId::new(1)),
            Value::Fn(2, vec![]),
            Value::Bottom,
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
