//! Computation-graph substrate for distributed graph reduction.
//!
//! This crate implements the graph model of Hudak's *Distributed Task and
//! Memory Management* (PODC 1983). A program is a directed **computation
//! graph** whose vertices carry operator/value labels and whose edges record
//! data dependencies. For every vertex `v` the paper keeps three edge sets
//! current, all of which are first-class here:
//!
//! * [`Vertex::args`] — the original data dependencies of `v`,
//! * `req-args(v) ⊆ args(v)` — the subset whose values `v` has requested,
//!   split into *vitally* and *eagerly* requested arcs
//!   (see [`RequestKind`]), and
//! * [`Vertex::requested`] — the vertices awaiting `v`'s value.
//!
//! Vertices are allocated from an explicit **free list** `F`
//! ([`GraphStore::alloc`] / [`GraphStore::free`]), matching the paper's
//! finite vertex universe `V` in which `R` and `T` grow only by acquiring
//! vertices from `F`.
//!
//! The crate also provides:
//!
//! * per-vertex **marking slots** ([`MarkSlot`]) holding the tri-state color,
//!   `mt-cnt` and `mt-par` fields used by the decentralized marking processes
//!   `M_R` and `M_T` (implemented in `dgr-core`),
//! * subgraph [`Template`]s instantiated by the `expand-node` mutator
//!   primitive, and
//! * a sequential [`oracle`] that computes the paper's reachability sets
//!   (`R`, `R_v`, `R_e`, `R_r`, `T`, `GAR`, `DL_v`) by straightforward
//!   traversal — the ground truth against which the concurrent marking
//!   algorithms are tested.
//!
//! # Example
//!
//! ```
//! use dgr_graph::{GraphStore, NodeLabel, PrimOp};
//!
//! # fn main() -> Result<(), dgr_graph::GraphError> {
//! let mut g = GraphStore::with_capacity(8);
//! let one = g.alloc(NodeLabel::lit_int(1))?;
//! let two = g.alloc(NodeLabel::lit_int(2))?;
//! let add = g.alloc(NodeLabel::Prim(PrimOp::Add))?;
//! g.connect(add, one);
//! g.connect(add, two);
//! g.set_root(add);
//!
//! let r = dgr_graph::oracle::reachable_r(&g);
//! assert!(r.contains(add) && r.contains(one) && r.contains(two));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
mod error;
mod ids;
mod label;
pub mod markword;
pub mod oracle;
mod store;
mod template;
mod value;
mod vertex;

pub use error::GraphError;
pub use ids::{PeId, VertexId};
pub use label::{NodeLabel, PrimOp};
pub use markword::MarkWords;
pub use oracle::{Oracle, TaskClass, TaskEndpoints, VertexSet};
pub use store::{
    default_cost_model, CostModel, Epochs, GraphStore, HeapDelta, PartitionMap, PartitionStrategy,
};
pub use template::{Template, TemplateNode, TemplateRef};
pub use value::Value;
pub use vertex::{Color, MarkParent, MarkSlot, Priority, RequestKind, Requester, Slot, Vertex};
