//! F4-1 micro-benchmarks: one full marking pass (mark1 / mark2 / mark3)
//! over quiescent graphs of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::driver::{run_mark1, run_mark2, run_mark3, MarkRunConfig};
use dgr_graph::TaskEndpoints;
use dgr_workloads::graphs::{random_digraph, sprinkle_request_kinds};

fn bench_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("marking");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut base = random_digraph(n, 3.0, 42);
        sprinkle_request_kinds(&mut base, 0.4, 0.3, 7);
        let cfg = MarkRunConfig::default();

        group.bench_with_input(BenchmarkId::new("mark1", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| run_mark1(&mut g, &cfg),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("mark2", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| run_mark2(&mut g, &cfg),
                criterion::BatchSize::LargeInput,
            )
        });
        let seeds: TaskEndpoints = base.live_ids().take(16).collect();
        group.bench_with_input(BenchmarkId::new("mark3", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| run_mark3(&mut g, &seeds, &cfg),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marking);
criterion_main!(benches);
