//! F5 micro-benchmark: priority marking (`mark2`) versus plain marking
//! (`mark1`) on shared-subexpression DAGs, including the adversarial
//! re-marking case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::driver::{run_mark1, run_mark2, MarkRunConfig};
use dgr_sim::SchedPolicy;
use dgr_workloads::graphs::{shared_dag, sprinkle_request_kinds};

fn bench_priority(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_marking");
    group.sample_size(20);
    for &(levels, width) in &[(6usize, 8usize), (8, 12)] {
        let mut base = shared_dag(levels, width);
        sprinkle_request_kinds(&mut base, 0.4, 0.4, 3);
        for (name, policy) in [("fifo", SchedPolicy::Fifo), ("lifo", SchedPolicy::Lifo)] {
            let cfg = MarkRunConfig {
                policy,
                ..Default::default()
            };
            let id = format!("{levels}x{width}/{name}");
            group.bench_with_input(BenchmarkId::new("mark1", &id), &(), |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut g| run_mark1(&mut g, &cfg),
                    criterion::BatchSize::SmallInput,
                )
            });
            group.bench_with_input(BenchmarkId::new("mark2", &id), &(), |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut g| run_mark2(&mut g, &cfg),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_priority);
criterion_main!(benches);
