//! End-to-end reduction benchmarks: representative programs through the
//! whole pipeline (compile once, reduce per iteration), with and without
//! concurrent GC.

use criterion::{criterion_group, criterion_main, Criterion};
use dgr_gc::{GcConfig, GcDriver};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;

fn bench_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    for (name, src) in [
        ("fib_14", "fib 14"),
        ("sum_squares_100", "sum (map (\\x -> x * x) (range 1 100))"),
        ("primes_40", "length (filter (\\k -> isnil (filter (\\d -> k % d == 0) (range 2 (k - 1)))) (range 2 40))"),
    ] {
        group.bench_function(format!("{name}/plain"), |b| {
            b.iter(|| {
                let mut sys = build_with_prelude(src, SystemConfig::default()).unwrap();
                sys.run()
            })
        });
        group.bench_function(format!("{name}/with_gc"), |b| {
            b.iter(|| {
                let sys = build_with_prelude(src, SystemConfig::default()).unwrap();
                let mut gc = GcDriver::new(
                    sys,
                    GcConfig {
                        period: 500,
                        ..Default::default()
                    },
                );
                gc.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_programs);
criterion_main!(benches);
