//! T1 micro-benchmark: one full mark-and-restructure cycle versus one
//! stop-the-world collection, across live-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_baseline::stw::collect_stw;
use dgr_core::{MarkMsg, MarkState};
use dgr_gc::{GcConfig, GcDriver};
use dgr_reduction::{System, SystemConfig, TemplateStore};
use dgr_workloads::churn::{churn_trace, ChurnReplayer};

fn churned_graph(steps: usize) -> dgr_graph::GraphStore {
    let trace = churn_trace(steps, 6, 0.3, 0.5, 9);
    let mut rep = ChurnReplayer::new(steps * 8);
    let mut state = MarkState::new();
    let mut sink = |_m: MarkMsg| {};
    for op in trace {
        rep.apply(op, &mut state, &mut sink);
    }
    rep.g
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_cycle");
    group.sample_size(15);
    for &steps in &[200usize, 1_000, 4_000] {
        let base = churned_graph(steps);
        group.bench_with_input(
            BenchmarkId::new("concurrent_cycle", steps),
            &steps,
            |b, _| {
                b.iter_batched(
                    || {
                        GcDriver::new(
                            System::new(
                                base.clone(),
                                TemplateStore::new(),
                                SystemConfig::default(),
                            ),
                            GcConfig::default(),
                        )
                    },
                    |mut gc| gc.run_cycle(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(BenchmarkId::new("stop_the_world", steps), &steps, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| collect_stw(&mut g),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
