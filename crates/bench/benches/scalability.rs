//! T5 micro-benchmark: threaded `mark1` wall time across PE counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::threaded::run_mark1_threaded;
use dgr_graph::PartitionStrategy;
use dgr_workloads::graphs::binary_tree;

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_mark1");
    group.sample_size(10);
    let depth = 15; // 65k vertices
    let base = binary_tree(depth);
    for &pes in &[1u16, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &pes| {
            b.iter_batched(
                || base.clone(),
                |g| run_mark1_threaded(g, pes, PartitionStrategy::Modulo),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threaded);
criterion_main!(benches);
