//! T5 micro-benchmark: threaded `mark1` wall time across PE counts.
//!
//! The timed region is the marking pass alone: the shared graph is built
//! once outside the measurement loop and reset between iterations with an
//! O(1) epoch bump, so the numbers track the marking wave rather than
//! graph construction and teardown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::threaded::{reset_shared_r, run_mark1_shared};
use dgr_graph::PartitionStrategy;
use dgr_sim::SharedGraph;
use dgr_workloads::graphs::binary_tree;

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_mark1");
    group.sample_size(10);
    let depth = 15; // 65k vertices
    let shared = SharedGraph::from_store(binary_tree(depth));
    for &pes in &[1u16, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &pes| {
            b.iter(|| {
                reset_shared_r(&shared);
                run_mark1_shared(&shared, pes, PartitionStrategy::Modulo)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threaded);
criterion_main!(benches);
