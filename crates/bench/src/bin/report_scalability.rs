//! Experiment T5: marking scalability across processing elements.
//!
//! Parallel time is measured round-synchronously (BSP): in each round
//! every PE executes one pending marking task, so the number of rounds is
//! the pass's ideal parallel time with that many PEs. (Wall-clock speedup
//! needs more hardware threads than a CI container offers; the threaded
//! runtime's cross-PE message counts are reported instead, showing the
//! communication the partitioning strategy induces.)

use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_core::driver::{run_mark1, run_mark1_bsp, MarkRunConfig};
use dgr_core::threaded::{reset_shared_r, run_mark1_shared};
use dgr_graph::PartitionStrategy;
use dgr_sim::SharedGraph;
use dgr_workloads::graphs::{binary_tree_dfs, random_digraph};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut records = Vec::new();
    // T5a: ideal parallel time (BSP rounds) vs PEs.
    let mut rows = Vec::new();
    let mut base_rounds = 0u64;
    for &pes in &[1u16, 2, 4, 8, 16, 32, 64] {
        let mut g = binary_tree_dfs(15); // 65k vertices
        let stats = run_mark1_bsp(&mut g, pes, PartitionStrategy::Modulo);
        if pes == 1 {
            base_rounds = stats.rounds;
        }
        rows.push(vec![
            pes.to_string(),
            stats.events.to_string(),
            stats.rounds.to_string(),
            f2(base_rounds as f64 / stats.rounds as f64),
        ]);
    }
    print_table(
        "T5a: round-synchronous marking, binary tree depth 15 (65k vertices)",
        &["PEs", "work (tasks)", "parallel time (rounds)", "speedup"],
        &rows,
    );

    // T5b: the chain is the worst case — no parallelism to extract.
    let mut rows = Vec::new();
    for &pes in &[1u16, 8, 64] {
        let mut g = dgr_workloads::graphs::chain(8192);
        let stats = run_mark1_bsp(&mut g, pes, PartitionStrategy::Modulo);
        rows.push(vec![
            pes.to_string(),
            stats.events.to_string(),
            stats.rounds.to_string(),
        ]);
    }
    print_table(
        "T5b: round-synchronous marking, chain of 8192 (the marking tree is a path)",
        &["PEs", "work (tasks)", "parallel time (rounds)"],
        &rows,
    );

    // T5c: threaded runtime — cross-PE messages under each placement, and
    // wall time (flat on a single-core host; the message counts are the
    // hardware-independent signal). The timed region is the marking pass
    // alone: the shared graph is built once and epoch-reset per run.
    for (depth, vertices) in [(15u32, 32767u64 * 2 + 1), (16, 65535 * 2 + 1)] {
        let mut rows = Vec::new();
        let shared = SharedGraph::from_store(binary_tree_dfs(depth as usize));
        for &pes in &[1u16, 2, 4, 8, 16] {
            reset_shared_r(&shared);
            let (stats, ms) = timed(|| run_mark1_shared(&shared, pes, PartitionStrategy::Block));
            rows.push(vec![
                pes.to_string(),
                stats.messages.to_string(),
                stats.envelopes.to_string(),
                f2(ms),
            ]);
            records.push(vec![
                (
                    "benchmark",
                    JsonValue::Str(format!("threaded_mark1_tree_d{depth}")),
                ),
                ("vertices", JsonValue::Int(vertices)),
                ("pes", JsonValue::Int(pes as u64)),
                ("messages", JsonValue::Int(stats.messages)),
                ("wall_us", JsonValue::Float(ms * 1e3)),
            ]);
        }
        print_table(
            &format!(
                "T5c: threaded runtime, DFS-numbered tree depth {depth} + block \
                 partition ({vertices} vertices)"
            ),
            &["PEs", "tasks", "cross-PE messages", "wall ms (1-core host)"],
            &rows,
        );
    }

    // T5d: cross-partition traffic by placement in the event simulator.
    let mut rows = Vec::new();
    for &pes in &[2u16, 8, 32] {
        for (name, strat) in [
            ("modulo", PartitionStrategy::Modulo),
            ("block", PartitionStrategy::Block),
        ] {
            let mut g = random_digraph(50_000, 3.0, 17);
            let cfg = MarkRunConfig {
                num_pes: pes,
                partition: strat,
                ..Default::default()
            };
            let stats = run_mark1(&mut g, &cfg);
            rows.push(vec![
                pes.to_string(),
                name.to_string(),
                stats.events.to_string(),
                stats.remote_messages.to_string(),
                f2(stats.remote_messages as f64 / stats.events.max(1) as f64 * 100.0) + "%",
            ]);
        }
    }
    print_table(
        "T5d: cross-partition marking traffic (random digraph 50k, degree 3)",
        &["PEs", "partition", "events", "remote", "remote share"],
        &rows,
    );
    println!(
        "\nShape check: parallel time falls near-linearly with PEs on the tree \
         and not at all on the chain (the marking wavefront is the available \
         parallelism); locality-aware placement (DFS + block) needs orders of \
         magnitude fewer cross-PE messages than hashed placement."
    );

    emit_json(json, "BENCH_scalability.json", &records);
}
