//! Experiment T5: marking scalability across processing elements.
//!
//! Parallel time is measured two ways. Round-synchronously (BSP): in each
//! round every PE executes one pending marking task, so the number of
//! rounds is the pass's ideal parallel time with that many PEs. And in
//! wall time on the work-stealing threaded runtime, where the derived
//! `speedup` column is `wall[1 PE] / wall[N PEs]`. Wall-clock speedup
//! needs real hardware threads; on a single-core CI container every PE
//! count time-slices one core, so the report asserts only a loose
//! "monotone-ish" profile (no anti-scaling collapse) and leaves strict
//! minimum-speedup gating to `bench_gate --min-speedup`, which caps its
//! requirement at `available_parallelism`.
//!
//! `--small` runs a reduced T5c only (small tree + small digraph, PEs
//! 1/4/16) for the CI scalability smoke job; `--json` writes
//! `BENCH_scalability.json` either way.

use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_core::driver::{run_mark1, run_mark1_bsp, MarkRunConfig};
use dgr_core::threaded::{reset_shared_r, run_mark1_shared};
use dgr_graph::PartitionStrategy;
use dgr_sim::SharedGraph;
use dgr_workloads::graphs::{binary_tree_dfs, random_digraph};

/// Repetitions per (workload, PEs) cell; the minimum wall time is kept.
/// Two is enough to shed the worst scheduling outliers on shared runners
/// without doubling the report's runtime budget.
const REPS: usize = 2;

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Asserts the wall-time profile of one workload is monotone-ish.
///
/// Two guards, separating two failure modes:
///
/// * **Floor** (every host) — the *best* multi-PE point must keep at
///   least `floor` of serial throughput. Local workloads (DFS trees
///   under block placement, near-zero envelopes) get a tight floor; the
///   random digraph is communication-bound (~50-95% remote share), pays
///   the full envelope tax with no parallel payback when PEs time-slice
///   one core, and its floor only rules out collapse. Using the best
///   point rather than the last keeps the guard robust to single-point
///   scheduling outliers (2x swings are routine on shared runners).
/// * **Decay** (hosts with real parallelism only) — among the multi-PE
///   points, the speedup at N PEs must never fall more than `1 - decay`
///   below the best at any smaller multi-PE count. This is the
///   anti-scaling guard: it is what the old one-channel-per-PE runtime
///   failed on tree_d15 past 4 PEs. On a single hardware thread every
///   point is noise around 1.0, so per-point comparisons are skipped.
///
/// Thresholds are deliberately loose: strict minimums belong to
/// `bench_gate --min-speedup`, which caps by the host's parallelism.
fn assert_monotone_ish(name: &str, profile: &[(u16, f64)], floor: f64, decay: f64, para: usize) {
    let base = profile[0].1;
    let mut best = f64::MIN;
    for &(pes, wall) in profile.iter().filter(|&&(pes, _)| pes > 1) {
        let s = base / wall;
        if para > 1 {
            assert!(
                s >= decay * best,
                "{name}: anti-scaling at {pes} PEs: speedup {s:.2} fell below \
                 {decay} x best-so-far ({best:.2})"
            );
        }
        best = best.max(s);
    }
    assert!(
        best >= floor,
        "{name}: best multi-PE speedup is {best:.2}, below the {floor} floor"
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let small = std::env::args().any(|a| a == "--small");
    let mut records = Vec::new();

    if !small {
        // T5a: ideal parallel time (BSP rounds) vs PEs.
        let mut rows = Vec::new();
        let mut base_rounds = 0u64;
        for &pes in &[1u16, 2, 4, 8, 16, 32, 64] {
            let mut g = binary_tree_dfs(15); // 65k vertices
            let stats = run_mark1_bsp(&mut g, pes, PartitionStrategy::Modulo);
            if pes == 1 {
                base_rounds = stats.rounds;
            }
            rows.push(vec![
                pes.to_string(),
                stats.events.to_string(),
                stats.rounds.to_string(),
                f2(base_rounds as f64 / stats.rounds as f64),
            ]);
        }
        print_table(
            "T5a: round-synchronous marking, binary tree depth 15 (65k vertices)",
            &["PEs", "work (tasks)", "parallel time (rounds)", "speedup"],
            &rows,
        );

        // T5b: the chain is the worst case — no parallelism to extract.
        let mut rows = Vec::new();
        for &pes in &[1u16, 8, 64] {
            let mut g = dgr_workloads::graphs::chain(8192);
            let stats = run_mark1_bsp(&mut g, pes, PartitionStrategy::Modulo);
            rows.push(vec![
                pes.to_string(),
                stats.events.to_string(),
                stats.rounds.to_string(),
            ]);
        }
        print_table(
            "T5b: round-synchronous marking, chain of 8192 (the marking tree is a path)",
            &["PEs", "work (tasks)", "parallel time (rounds)"],
            &rows,
        );
    }

    // T5c: the work-stealing threaded runtime — wall time, derived
    // speedup, and cross-PE envelope counts under block placement. The
    // timed region is the marking pass alone: the shared graph is built
    // once and epoch-reset per run. Envelope counts stay the
    // hardware-independent signal; wall speedup is meaningful only up to
    // the host's available parallelism (printed in the table title).
    // Each entry: (name, vertices, graph, floor, decay) — see
    // `assert_monotone_ish` for the threshold semantics. Small mode uses
    // looser floors: its workloads are short enough that thread spawn
    // overhead is a visible fraction of the 16-PE run.
    let workloads: Vec<(&str, u64, dgr_graph::GraphStore, f64, f64)> = if small {
        vec![
            ("tree_d14", 32767, binary_tree_dfs(14), 0.40, 0.6),
            (
                "digraph_200k",
                200_000,
                random_digraph(200_000, 3.0, 17),
                0.25,
                0.4,
            ),
        ]
    } else {
        vec![
            ("tree_d15", 65535, binary_tree_dfs(15), 0.70, 0.8),
            ("tree_d16", 131071, binary_tree_dfs(16), 0.70, 0.8),
            (
                "digraph_1m",
                1_000_000,
                random_digraph(1_000_000, 3.0, 17),
                0.30,
                0.4,
            ),
        ]
    };
    let pe_list: &[u16] = if small {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let para = available_parallelism();

    for (name, vertices, store, floor, decay) in workloads {
        let mut rows = Vec::new();
        let mut profile: Vec<(u16, f64)> = Vec::new();
        let shared = SharedGraph::from_store(store);
        for &pes in pe_list {
            let mut best_ms = f64::INFINITY;
            let mut best_stats = None;
            for _ in 0..REPS {
                reset_shared_r(&shared);
                let (stats, ms) =
                    timed(|| run_mark1_shared(&shared, pes, PartitionStrategy::Block));
                if ms < best_ms {
                    best_ms = ms;
                    best_stats = Some(stats);
                }
            }
            let stats = best_stats.expect("REPS >= 1");
            let speedup = profile.first().map_or(1.0, |&(_, base)| base / best_ms);
            profile.push((pes, best_ms));
            rows.push(vec![
                pes.to_string(),
                stats.messages.to_string(),
                stats.envelopes.to_string(),
                f2(best_ms),
                f2(speedup),
            ]);
            records.push(vec![
                (
                    "benchmark",
                    JsonValue::Str(format!("threaded_mark1_{name}")),
                ),
                ("vertices", JsonValue::Int(vertices)),
                ("pes", JsonValue::Int(pes as u64)),
                ("messages", JsonValue::Int(stats.messages)),
                ("wall_us", JsonValue::Float(best_ms * 1e3)),
            ]);
        }
        print_table(
            &format!(
                "T5c: work-stealing runtime, {name} + block partition \
                 ({vertices} vertices, best of {REPS}, {para} hardware threads)"
            ),
            &["PEs", "tasks", "cross-PE envelopes", "wall ms", "speedup"],
            &rows,
        );
        assert_monotone_ish(name, &profile, floor, decay, para);
    }

    if !small {
        // T5d: cross-partition traffic by placement in the event simulator.
        let mut rows = Vec::new();
        for &pes in &[2u16, 8, 32] {
            for (name, strat) in [
                ("modulo", PartitionStrategy::Modulo),
                ("block", PartitionStrategy::Block),
            ] {
                let mut g = random_digraph(50_000, 3.0, 17);
                let cfg = MarkRunConfig {
                    num_pes: pes,
                    partition: strat,
                    ..Default::default()
                };
                let stats = run_mark1(&mut g, &cfg);
                rows.push(vec![
                    pes.to_string(),
                    name.to_string(),
                    stats.events.to_string(),
                    stats.remote_messages.to_string(),
                    f2(stats.remote_messages as f64 / stats.events.max(1) as f64 * 100.0) + "%",
                ]);
            }
        }
        print_table(
            "T5d: cross-partition marking traffic (random digraph 50k, degree 3)",
            &["PEs", "partition", "events", "remote", "remote share"],
            &rows,
        );
        println!(
            "\nShape check: parallel time falls near-linearly with PEs on the tree \
             and not at all on the chain (the marking wavefront is the available \
             parallelism); locality-aware placement (DFS + block) needs orders of \
             magnitude fewer cross-PE messages than hashed placement."
        );
    }

    emit_json(json, "BENCH_scalability.json", &records);
}
