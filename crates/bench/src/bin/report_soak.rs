//! Soak harness for the live observability plane.
//!
//! Churns prelude programs through continuous reduction + GC cycles and
//! periodic threaded `mark1` passes with the `dgr-observe` exporter and
//! watchdog attached, so `/metrics`, `/status`, `/healthz` and
//! `/graph.dot` can be scraped against a live, changing system. Each
//! iteration publishes fresh snapshots (metrics, census, GC progress,
//! bounded DOT, event tail) into the hub and self-scrapes `/metrics`
//! over real HTTP to measure end-to-end scrape latency.
//!
//! Emits `BENCH_soak.json`: iterations, cycles completed, reclaim
//! totals, watchdog incidents, scrape latency quantiles, and (with
//! `--inject-stall`) the result of forcing a stalled marking phase —
//! `/healthz` must flip to 503 and a flight dump must land in
//! `$DGR_FLIGHT_DIR`.
//!
//! Flags:
//!
//! * `--small` — CI-sized workloads and a short default duration;
//! * `--seconds <n>` — soak duration (default 20, `--small` default 5);
//! * `--addr <ip:port>` — exporter bind address (default `127.0.0.1:0`,
//!   the chosen port is printed);
//! * `--inject-stall` — after the soak, hold a marking phase silent past
//!   the watchdog deadline and verify degradation + recovery.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dgr_bench::{emit_json, f2, print_table, JsonRecord, JsonValue};
use dgr_core::threaded::{reset_shared_r, run_mark1_shared_observed};
use dgr_gc::{GcConfig, GcDriver};
use dgr_graph::{dot, PartitionStrategy};
use dgr_lang::build_with_prelude;
use dgr_observe::{watchdog, CensusSnapshot, GcProgress, ObserveHub, Server, WatchdogConfig};
use dgr_reduction::{RunOutcome, SystemConfig};
use dgr_sim::SharedGraph;
use dgr_telemetry::{flight_path, Phase, Registry, TELEMETRY_ENABLED};
use dgr_workloads::graphs::binary_tree_dfs;

/// Rotated soak programs: list churn (steady garbage), arithmetic
/// recursion, and speculative choice (irrelevant-task census fodder).
const SOURCES: [&str; 3] = [
    "sum (map (\\x -> x * x) (range 1 80))",
    "sum (map (\\x -> x + 1) (range 1 120))",
    "sum (append (range 1 60) (range 1 40))",
];

/// One blocking HTTP GET against the exporter; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("exporter reachable");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("request written");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let inject_stall = std::env::args().any(|a| a == "--inject-stall");
    let seconds: u64 = arg_value("--seconds")
        .map(|s| s.parse().expect("--seconds takes an integer"))
        .unwrap_or(if small { 5 } else { 20 });
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());

    if !TELEMETRY_ENABLED {
        println!(
            "note: built without the `telemetry` feature — the exporter serves \
             empty metrics and the heartbeat never beats (watchdog stays idle)"
        );
    }

    let hub = Arc::new(ObserveHub::new());
    let server = Server::bind(addr.as_str(), Arc::clone(&hub)).expect("exporter binds");
    let addr = server.addr();
    println!("dgr-observe exporter listening on http://{addr}");
    println!("  curl http://{addr}/metrics   # Prometheus text exposition");
    println!("  curl http://{addr}/status    # JSON status");
    println!("  curl http://{addr}/healthz   # 200 ok / 503 degraded");
    println!("  curl http://{addr}/graph.dot # live graph snapshot");
    let wd_cfg = WatchdogConfig {
        // Tight deadline when the point is to trip it; generous for the
        // steady-state soak so a slow CI box cannot false-alarm.
        stall_timeout_ms: if inject_stall { 300 } else { 5_000 },
        ..Default::default()
    };
    let dog = watchdog::spawn(Arc::clone(&hub), wd_cfg);

    // The threaded passes share one registry (counters accumulate; the
    // per-PE mailbox gauges drain back toward zero after every pass) and
    // one tree, epoch-reset between passes.
    let pes: u16 = 4;
    let threaded_telem = Registry::new(pes);
    let shared = SharedGraph::from_store(binary_tree_dfs(if small { 10 } else { 13 }));

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut totals = GcProgress::default();
    let mut iterations = 0u64;
    let mut scrape_us: Vec<u64> = Vec::new();
    while Instant::now() < deadline {
        let src = SOURCES[(iterations % SOURCES.len() as u64) as usize];
        let sys = build_with_prelude(src, SystemConfig::default()).expect("workload builds");
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: if small { 120 } else { 250 },
                mt_every: 2,
                ..Default::default()
            },
        );
        gc.attach_heartbeat(hub.heartbeat_handle());
        let out = gc.run();
        assert!(
            matches!(out, RunOutcome::Value(_)),
            "soak workload: {out:?}"
        );
        totals.cycles += u64::from(gc.stats().cycles);
        totals.aborted += u64::from(gc.stats().aborted_cycles);
        totals.reclaimed += gc.stats().reclaimed_total as u64;
        totals.expunged += gc.stats().expunged_total as u64;
        totals.relaned += gc.stats().relaned_total as u64;
        totals.deadlocked += gc.stats().deadlocks_total as u64;

        // A threaded mark1 pass per iteration: populates the per-PE
        // mailbox/batch metrics and beats the pulse from real threads.
        reset_shared_r(&shared);
        run_mark1_shared_observed(
            &shared,
            pes,
            PartitionStrategy::Block,
            &threaded_telem,
            &hub.heartbeat_handle(),
        );

        // Publish: threaded per-PE shards, with the GC driver's
        // single-shard tallies folded into PE 0. A no-op registry
        // (default build) snapshots zero shards — publish empty ones so
        // the exposition still lists every PE.
        let mut snap = threaded_telem.snapshot();
        if snap.per_pe.is_empty() {
            snap.per_pe.resize(usize::from(pes), Default::default());
        }
        snap.per_pe[0].merge(&gc.sys.telemetry().snapshot().merged());
        hub.publish_metrics(snap);
        let c = gc.last_report().census;
        hub.publish_census(CensusSnapshot {
            vital: c.vital,
            eager: c.eager,
            reserve: c.reserve,
            irrelevant: c.irrelevant,
            dangling: c.dangling,
        });
        hub.publish_gc(totals);
        hub.publish_lifecycle(gc.lifecycle_snapshot());
        hub.publish_dot(dot::to_dot(
            &gc.sys.graph,
            &dot::DotOptions {
                max_vertices: 200,
                ..Default::default()
            },
        ));
        hub.publish_events(gc.sys.telemetry().drain_events());

        // Self-scrape over real HTTP: end-to-end render + serve latency.
        let t = Instant::now();
        let (code, body) = http_get(addr, "/metrics");
        scrape_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(code, 200, "/metrics scrape failed mid-soak");
        assert!(
            body.contains("dgr_uptime_seconds"),
            "/metrics body incomplete"
        );
        iterations += 1;
    }

    let incidents_steady = hub.incidents();
    let (healthz_steady, _) = http_get(addr, "/healthz");
    scrape_us.sort_unstable();
    print_table(
        &format!("soak: {iterations} iterations over {seconds}s"),
        &[
            "gc cycles",
            "reclaimed",
            "expunged",
            "relaned",
            "incidents",
            "healthz",
            "scrape p50 us",
            "scrape p99 us",
        ],
        &[vec![
            totals.cycles.to_string(),
            totals.reclaimed.to_string(),
            totals.expunged.to_string(),
            totals.relaned.to_string(),
            incidents_steady.to_string(),
            healthz_steady.to_string(),
            quantile_us(&scrape_us, 0.5).to_string(),
            quantile_us(&scrape_us, 0.99).to_string(),
        ]],
    );
    assert_eq!(healthz_steady, 200, "steady-state soak must stay healthy");

    // Optional stall injection: hold a marking phase silent past the
    // watchdog deadline, observe 503 + flight dump, then recover.
    let mut stall_record: Option<(u64, bool, u16)> = None;
    if inject_stall {
        let pulse = hub.heartbeat_handle();
        pulse.begin_phase(u32::MAX, Phase::Mr);
        // A no-op pulse cannot stall, so don't wait long proving it.
        let window = Duration::from_secs(if TELEMETRY_ENABLED { 10 } else { 1 });
        let t = Instant::now();
        let mut degraded_status = 0u16;
        while t.elapsed() < window {
            let (code, _) = http_get(addr, "/healthz");
            if code == 503 {
                degraded_status = code;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let dump_exists = flight_path(0).exists();
        pulse.end_phase();
        // The next poll must see the fresh beat and recover.
        let mut recovered = 0u16;
        let t = Instant::now();
        while t.elapsed() < window {
            let (code, _) = http_get(addr, "/healthz");
            if code == 200 {
                recovered = code;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        println!(
            "inject-stall: healthz={degraded_status} during stall, flight dump {} at {}, \
             healthz={recovered} after recovery",
            if dump_exists { "present" } else { "MISSING" },
            flight_path(0).display(),
        );
        if TELEMETRY_ENABLED {
            assert_eq!(degraded_status, 503, "stall must flip /healthz to 503");
            assert!(dump_exists, "stall must produce a flight dump");
            assert_eq!(recovered, 200, "ending the phase must recover health");
        }
        stall_record = Some((
            hub.incidents() - incidents_steady,
            dump_exists,
            degraded_status,
        ));
    }

    let mut records: Vec<JsonRecord> = vec![vec![
        ("benchmark", JsonValue::Str("soak".into())),
        ("seconds", JsonValue::Int(seconds)),
        ("iterations", JsonValue::Int(iterations)),
        ("gc_cycles", JsonValue::Int(totals.cycles)),
        ("gc_cycles_aborted", JsonValue::Int(totals.aborted)),
        ("reclaimed", JsonValue::Int(totals.reclaimed)),
        ("expunged", JsonValue::Int(totals.expunged)),
        ("relaned", JsonValue::Int(totals.relaned)),
        ("deadlocked", JsonValue::Int(totals.deadlocked)),
        ("watchdog_incidents", JsonValue::Int(incidents_steady)),
        ("healthz", JsonValue::Int(u64::from(healthz_steady))),
        ("scrapes", JsonValue::Int(hub.scrapes())),
        (
            "scrape_p50_us",
            JsonValue::Int(quantile_us(&scrape_us, 0.5)),
        ),
        (
            "scrape_p90_us",
            JsonValue::Int(quantile_us(&scrape_us, 0.9)),
        ),
        (
            "scrape_p99_us",
            JsonValue::Int(quantile_us(&scrape_us, 0.99)),
        ),
        (
            "scrape_max_us",
            JsonValue::Int(scrape_us.last().copied().unwrap_or(0)),
        ),
        (
            "scrape_mean_us",
            JsonValue::Float(if scrape_us.is_empty() {
                0.0
            } else {
                scrape_us.iter().sum::<u64>() as f64 / scrape_us.len() as f64
            }),
        ),
        ("telemetry", JsonValue::Int(u64::from(TELEMETRY_ENABLED))),
    ]];
    if let Some((incidents, dump, status)) = stall_record {
        records.push(vec![
            ("benchmark", JsonValue::Str("soak_inject_stall".into())),
            ("incidents", JsonValue::Int(incidents)),
            ("flight_dump", JsonValue::Int(u64::from(dump))),
            ("healthz_during_stall", JsonValue::Int(u64::from(status))),
        ]);
    }
    emit_json(true, "BENCH_soak.json", &records);
    println!(
        "scrape latency: mean {} us over {} self-scrapes",
        f2(scrape_us.iter().sum::<u64>() as f64 / scrape_us.len().max(1) as f64),
        scrape_us.len(),
    );

    server.shutdown();
    dog.join().expect("watchdog joins");
}
