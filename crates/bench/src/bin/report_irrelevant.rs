//! Experiment T3: expunging irrelevant tasks bounds speculative waste.
//!
//! Speculative evaluation of a recursive program breeds an unbounded
//! irrelevant workload (Section 3.2: "the subcomputation may be
//! non-terminating"). With GC expunging, the computation converges and
//! wasted work is bounded; without it, the event budget blows up (or the
//! run never finishes).

use dgr_bench::{f2, print_table};
use dgr_gc::{GcConfig, GcDriver};
use dgr_lang::build_with_prelude;
use dgr_reduction::{RunOutcome, SystemConfig};
use dgr_sim::SchedPolicy;

fn run(src: &str, label: &str, expunge: bool, reclaim: bool, budget: u64) -> Vec<String> {
    let cfg = SystemConfig {
        speculation: true,
        policy: SchedPolicy::Random { marking_bias: 0.5 },
        seed: 5,
        max_events: budget,
        ..Default::default()
    };
    let sys = build_with_prelude(src, cfg).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 300,
            expunge,
            reclaim,
            max_total_events: budget,
            ..Default::default()
        },
    );
    let out = gc.run();
    vec![
        label.to_string(),
        match out {
            RunOutcome::Value(v) => format!("{v}"),
            RunOutcome::Quiescent => "quiescent".into(),
            RunOutcome::Budget => "BUDGET BLOWN".into(),
        },
        gc.sys.events().to_string(),
        gc.sys.stats.dereferences.to_string(),
        gc.stats().expunged_total.to_string(),
        gc.stats().reclaimed_total.to_string(),
        gc.sys.stats.dangling_requests.to_string(),
        f2(gc.sys.stats.total_tasks() as f64 / 1000.0) + "k",
    ]
}

fn main() {
    // fib under speculation: every `fib k, k<2` speculates an infinite
    // descent that the predicate then cancels — an unbounded irrelevant
    // workload unless the restructuring phase intervenes.
    let src = "fib 10";
    let budget = 2_000_000;
    let rows = vec![
        run(src, "expunge + reclaim", true, true, budget),
        run(src, "reclaim only", false, true, budget),
        run(src, "neither", false, false, budget),
    ];
    print_table(
        "T3: speculative `fib 10` under three restructuring policies \
         (budget 2M events)",
        &[
            "restructuring",
            "outcome",
            "events",
            "derefs",
            "expunged",
            "reclaimed",
            "dangling",
            "tasks",
        ],
        &rows,
    );
    println!(
        "\nShape check: with expunging the irrelevant tasks die in the pools \
         (dangling = 0) and the program converges fastest; with reclaim only, \
         the orphaned tasks run until they hit reclaimed vertices (dangling > \
         0) and more work is wasted; with neither, the speculative descent is \
         never cut and the budget is exhausted."
    );
}
