//! Experiment T4: space overhead of the marking machinery (the Section 6
//! remark).

use dgr_bench::{f2, print_table};
use dgr_core::footprint;

fn main() {
    let f = footprint::measure();
    let rows = vec![
        vec![
            "one marking slot (color, mt-cnt, mt-par, prior)".to_string(),
            f.slot_bytes.to_string(),
        ],
        vec![
            "marking overhead per vertex (M_R slot + M_T slot)".to_string(),
            f.per_vertex_marking_bytes.to_string(),
        ],
        vec![
            "whole vertex record".to_string(),
            f.vertex_bytes.to_string(),
        ],
        vec![
            "marking fraction of vertex".to_string(),
            f2(f.marking_fraction * 100.0) + "%",
        ],
        vec![
            "paper's compressed design (per PE, any |V|)".to_string(),
            f.compressed_per_pe_bytes.to_string(),
        ],
    ];
    print_table(
        "T4: marking-state footprint (bytes)",
        &["field", "bytes"],
        &rows,
    );
    for &n in &[10_000usize, 100_000, 1_000_000] {
        println!(
            "|V| = {n:>9}: {:>12} bytes of marking state uncompressed, \
             {} bytes per PE compressed",
            n * f.per_vertex_marking_bytes,
            f.compressed_per_pe_bytes
        );
    }
    // The compressed variant is implemented (dgr_core::compressed):
    // measure what the space saving costs in messages.
    use dgr_core::compressed::run_mark1_compressed;
    use dgr_core::driver::{run_mark1, MarkRunConfig};
    use dgr_graph::PartitionStrategy;
    let mut rows = Vec::new();
    for &pes in &[4u16, 16] {
        let mut g = dgr_workloads::graphs::random_digraph(30_000, 3.0, 5);
        let cfg = MarkRunConfig {
            num_pes: pes,
            ..Default::default()
        };
        let full = run_mark1(&mut g, &cfg);
        let mut g2 = dgr_workloads::graphs::random_digraph(30_000, 3.0, 5);
        let comp = run_mark1_compressed(&mut g2, pes, PartitionStrategy::Modulo);
        assert_eq!(full.marked, comp.marked, "both mark exactly R");
        rows.push(vec![
            pes.to_string(),
            full.marked.to_string(),
            format!("{} ({} remote)", full.events, full.remote_messages),
            format!("{} remote + {} acks", comp.remote_marks, comp.acks),
            format!("{}B/vertex", f.per_vertex_marking_bytes),
            "1 bit/vertex + 2 words/PE".to_string(),
        ]);
    }
    print_table(
        "T4b: full vs compressed marking (Section 6) — same 30k-vertex graph",
        &[
            "PEs",
            "marked",
            "full msgs",
            "compressed msgs",
            "full space",
            "compressed space",
        ],
        &rows,
    );
    println!(
        "\nShape check: the compressed scheme (Dijkstra–Scholten engagement \
         over PEs) erases the per-vertex mt-cnt/mt-par fields at the cost of \
         one acknowledgement per cross-PE mark; the paper deems the full \
         per-vertex form acceptable when object granularity is large."
    );
}
