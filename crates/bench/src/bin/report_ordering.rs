//! Experiment T7: why `M_T` must execute before `M_R` (Theorem 2).
//!
//! The right-hand containment of Theorem 2 (nothing is *erroneously*
//! flagged deadlocked) is "the only part that requires M_T to execute
//! before M_R". This report constructs the failing interleaving: a
//! subgraph is vitally reachable when one phase runs, then dereferenced
//! (becoming garbage, its tasks drained) before the other phase runs.
//!
//! * Wrong order (`M_R` then `M_T`): the stale R marks still say "vital",
//!   the fresh T marks say "no tasks" — the garbage is reported
//!   deadlocked.
//! * Paper's order (`M_T` then `M_R`): the fresh R marks already exclude
//!   the dereferenced region, so nothing is misreported.

use dgr_bench::print_table;
use dgr_core::driver::{run_mark2, run_mark3, MarkRunConfig};
use dgr_gc::deadlocked_vertices;
use dgr_graph::{oracle, GraphStore, NodeLabel, PrimOp, RequestKind, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds: root vitally requests a chain of `depth` strict vertices (the
/// "speculation region") plus one always-live leaf. Returns the graph and
/// the arc index of the region so it can be dereferenced later.
fn build(depth: usize, seed: u64) -> (GraphStore, VertexId, Vec<VertexId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphStore::with_capacity(depth + 4);
    let root = g.alloc(NodeLabel::If).unwrap();
    let live = g.alloc(NodeLabel::lit_int(1)).unwrap();
    g.connect(root, live);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Vital));
    let mut region = Vec::new();
    let mut prev = root;
    for i in 0..depth {
        let v = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        g.connect(prev, v);
        let idx = g.vertex(prev).args().len() - 1;
        g.vertex_mut(prev)
            .set_request_kind(idx, Some(RequestKind::Vital));
        region.push(v);
        prev = v;
        // Sprinkle extra internal arcs for variety.
        if i > 2 && rng.gen_bool(0.4) {
            let back = region[rng.gen_range(0..i)];
            g.connect(v, back);
        }
    }
    g.set_root(root);
    (g, root, region)
}

/// Dereference the region: the root drops its (only) arc into it, so all
/// its vertices become garbage and all its (here: none pending) task
/// activity is gone.
fn deref_region(g: &mut GraphStore, root: VertexId, region: &[VertexId]) {
    g.disconnect(root, region[0]);
    g.remove_requester(region[0], dgr_graph::Requester::Vertex(root));
}

fn main() {
    const RUNS: u64 = 25;
    let cfg = MarkRunConfig::default();
    let mut rows = Vec::new();
    for order in ["M_T then M_R (paper)", "M_R then M_T (wrong)"] {
        let wrong = order.starts_with("M_R");
        let mut false_pos = 0usize;
        let mut flagged_total = 0usize;
        for seed in 0..RUNS {
            let (mut g, root, region) = build(24, seed);
            let tasks = dgr_graph::TaskEndpoints::new(); // activity has ceased
            if wrong {
                run_mark2(&mut g, &cfg);
                // The graph mutates between the phases: the region is
                // dereferenced (this is what concurrency amounts to).
                deref_region(&mut g, root, &region);
                run_mark3(&mut g, &tasks, &cfg);
            } else {
                run_mark3(&mut g, &tasks, &cfg);
                deref_region(&mut g, root, &region);
                run_mark2(&mut g, &cfg);
            }
            let flagged = deadlocked_vertices(&g);
            flagged_total += flagged.len();
            // Ground truth *now*: the region is garbage, not deadlocked.
            let o = oracle::Oracle::compute(&g, &tasks);
            false_pos += flagged
                .iter()
                .filter(|&&v| !o.deadlocked.contains(v))
                .count();
        }
        rows.push(vec![
            order.to_string(),
            RUNS.to_string(),
            flagged_total.to_string(),
            false_pos.to_string(),
        ]);
        if !wrong {
            assert_eq!(false_pos, 0, "the paper's order must not misreport");
        }
    }
    print_table(
        "T7: phase order and deadlock misreporting \
         (24-vertex vital region dereferenced between phases, 25 runs)",
        &["order", "runs", "vertices flagged", "false positives"],
        &rows,
    );
    println!(
        "\nShape check: the wrong order fabricates deadlocks out of garbage \
         (stale `R_v` ∩ fresh `¬T`); the paper's order reports none — \
         exactly the asymmetry Theorem 2's proof part (b) isolates."
    );
}
