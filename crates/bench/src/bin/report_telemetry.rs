//! Phase-resolved observability report.
//!
//! Runs the GC driver over a list-heavy reduction workload with the
//! telemetry layer on (the default feature of this crate) and emits:
//!
//! * `BENCH_telemetry.json` — per-cycle records plus per-phase (`M_T`,
//!   `M_R`, `classify`) duration totals, machine-readable;
//! * `BENCH_telemetry_trace.json` — the drained event ring in Chrome
//!   `trace_event` format, loadable in `chrome://tracing` or Perfetto;
//! * `BENCH_telemetry_events.jsonl` — the same events as JSON Lines.
//!
//! A second section drives the threaded marking runtime and reports its
//! counters (task deliveries, batches, parks, local/remote sends) and the
//! batch-size histogram. Pass `--small` for a CI-sized workload.

use dgr_bench::{emit_json, f2, print_table, JsonRecord, JsonValue};
use dgr_core::threaded::{reset_shared_r, run_mark1_shared_with};
use dgr_gc::{GcConfig, GcDriver};
use dgr_graph::PartitionStrategy;
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_sim::SharedGraph;
use dgr_telemetry::{
    bucket_label, chrome_trace_json, events_jsonl, timeline_text, CounterId, GaugeId, HistId,
    Registry, TELEMETRY_ENABLED,
};
use dgr_workloads::graphs::binary_tree_dfs;

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", contents.len());
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    if !TELEMETRY_ENABLED {
        println!(
            "note: built without the `telemetry` feature — durations and cycle \
             census are still reported, message counters and traces are empty"
        );
    }

    // Phase-resolved GC cycles over a reduction that allocates and drops
    // one cons cell per element (steady garbage for the collector).
    let n = if small { 60 } else { 250 };
    let src = format!("sum (map (\\x -> x * x) (range 1 {n}))");
    let sys = build_with_prelude(&src, SystemConfig::default()).expect("workload builds");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: if small { 150 } else { 300 },
            mt_every: 2,
            ..Default::default()
        },
    );
    let out = gc.run();
    assert!(
        matches!(out, dgr_reduction::RunOutcome::Value(_)),
        "workload finished: {out:?}"
    );

    let cycles: Vec<_> = gc.timeline().iter().cloned().collect();
    println!("\n== per-cycle timeline (sum of squares 1..{n}) ==");
    println!("{}", timeline_text(&cycles));

    let mut records: Vec<JsonRecord> = Vec::new();
    for c in &cycles {
        records.push(vec![
            ("benchmark", JsonValue::Str("gc_cycle".into())),
            ("cycle", JsonValue::Int(u64::from(c.cycle))),
            ("mt_us", JsonValue::Int(c.mt_us)),
            ("mr_us", JsonValue::Int(c.mr_us)),
            ("settle_us", JsonValue::Int(c.settle_us)),
            ("classify_us", JsonValue::Int(c.restructure_us)),
            ("total_us", JsonValue::Int(c.total_us)),
            ("mark_events", JsonValue::Int(c.mark_events)),
            (
                "red_events_during_marking",
                JsonValue::Int(c.red_events_during_marking),
            ),
            ("sends_local", JsonValue::Int(c.sends_local)),
            ("sends_remote", JsonValue::Int(c.sends_remote)),
            ("mark_backlog_hw", JsonValue::Int(c.mark_backlog_hw)),
            ("marked_t", JsonValue::Int(c.marked_t as u64)),
            ("marked_r", JsonValue::Int(c.marked_r() as u64)),
            ("garbage", JsonValue::Int(c.garbage as u64)),
            ("reclaimed", JsonValue::Int(c.reclaimed as u64)),
            ("expunged", JsonValue::Int(c.expunged as u64)),
            ("relaned", JsonValue::Int(c.relaned as u64)),
        ]);
    }
    // The per-phase totals the trajectory tooling plots: M_T (synchronous
    // deadlock-detection pass), M_R (concurrent marking incl. settling),
    // classify (census + restructuring).
    let phase_totals = [
        ("M_T", cycles.iter().map(|c| c.mt_us).sum::<u64>()),
        (
            "M_R",
            cycles.iter().map(|c| c.mr_us + c.settle_us).sum::<u64>(),
        ),
        ("classify", cycles.iter().map(|c| c.restructure_us).sum()),
    ];
    let mut rows = Vec::new();
    for (phase, us) in phase_totals {
        rows.push(vec![
            phase.to_string(),
            us.to_string(),
            f2(us as f64 / cycles.len().max(1) as f64),
        ]);
        records.push(vec![
            ("benchmark", JsonValue::Str("phase_total".into())),
            ("phase", JsonValue::Str(phase.into())),
            ("total_us", JsonValue::Int(us)),
            ("cycles", JsonValue::Int(cycles.len() as u64)),
        ]);
    }
    print_table(
        &format!("phase totals over {} cycles", cycles.len()),
        &["phase", "total us", "us/cycle"],
        &rows,
    );

    let events = gc.sys.telemetry().drain_events();
    write_file("BENCH_telemetry_trace.json", &chrome_trace_json(&events));
    write_file("BENCH_telemetry_events.jsonl", &events_jsonl(&events));
    println!(
        "trace: {} events ({} dropped by the ring)",
        events.len(),
        gc.sys.telemetry().dropped_events()
    );

    // Threaded marking runtime: counters and the outbox batch-size
    // histogram across a DFS-numbered tree with block placement.
    let depth = if small { 12 } else { 15 };
    let pes: u16 = 4;
    let shared = SharedGraph::from_store(binary_tree_dfs(depth));
    reset_shared_r(&shared);
    let telem = Registry::new(pes);
    let stats = run_mark1_shared_with(&shared, pes, PartitionStrategy::Block, &telem);
    let snap = gather(&telem);
    print_table(
        &format!("threaded mark1, tree depth {depth}, {pes} PEs, block partition"),
        &[
            "tasks",
            "batches",
            "parks",
            "local",
            "remote",
            "batch avg",
            "mbox hw",
        ],
        &[vec![
            snap.counter(CounterId::Tasks).to_string(),
            snap.counter(CounterId::Batches).to_string(),
            snap.counter(CounterId::Parks).to_string(),
            snap.counter(CounterId::SendsLocal).to_string(),
            snap.counter(CounterId::SendsRemote).to_string(),
            f2(snap.hist(HistId::BatchSize).mean()),
            snap.gauge(GaugeId::MailboxHighWater).to_string(),
        ]],
    );
    let batch = snap.hist(HistId::BatchSize);
    let batch_rows: Vec<Vec<String>> = batch
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, &count)| vec![bucket_label(i), count.to_string()])
        .collect();
    if !batch_rows.is_empty() {
        print_table("outbox batch sizes", &["bucket", "batches"], &batch_rows);
    }
    records.push(vec![
        ("benchmark", JsonValue::Str("threaded_mark1".into())),
        ("pes", JsonValue::Int(u64::from(pes))),
        ("messages", JsonValue::Int(stats.messages)),
        ("tasks", JsonValue::Int(snap.counter(CounterId::Tasks))),
        ("batches", JsonValue::Int(snap.counter(CounterId::Batches))),
        ("parks", JsonValue::Int(snap.counter(CounterId::Parks))),
        (
            "sends_local",
            JsonValue::Int(snap.counter(CounterId::SendsLocal)),
        ),
        (
            "sends_remote",
            JsonValue::Int(snap.counter(CounterId::SendsRemote)),
        ),
        (
            "batch_mean",
            JsonValue::Float(snap.hist(HistId::BatchSize).mean()),
        ),
    ]);

    emit_json(true, "BENCH_telemetry.json", &records);
}

/// Merged view over all PE shards of a registry.
fn gather(telem: &Registry) -> dgr_telemetry::PeSnapshot {
    telem.snapshot().merged()
}
