//! Experiment T9: per-PE utilization and speedup-gap attribution.
//!
//! Runs the work-stealing threaded runtime over the scalability
//! workloads with the per-PE scheduler state clock recording, then
//! feeds the emitted `sched_*` instants straight into the `dgr-trace`
//! blame analyzer and prints, per (workload, PEs) cell, where the
//! non-working PE-time went: steal overhead, mailbox delay, parking,
//! true span limit, or load imbalance.
//!
//! The span estimate piggybacks on the BSP round counter: with `W` the
//! serial round count (one task per round on one PE) and `R_P` the
//! round count at `P` PEs, the workload's inherent span is approximated
//! as `serial_wall * R_P / W` and injected into the event stream as a
//! `bsp_span_us` instant, which `blame` uses when no flow edges exist
//! (the steal runtime does not flow-stamp its envelopes).
//!
//! Every measured rep gets a **fresh registry**: the state clock
//! accumulates across passes, and blame wants pass-exact clocks.
//!
//! Outputs: `BENCH_utilization.json` (under `--json`) with one record
//! per cell carrying `utilization_pct` for `bench_gate
//! --min-utilization`, plus `BENCH_utilization_events_<cell>.jsonl`
//! streams that `dgr-trace blame` reads back — both in the repo root,
//! which is gitignored. `--small` shrinks the workloads for the CI
//! `utilization-smoke` job.

use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_core::driver::run_mark1_bsp;
use dgr_core::threaded::{reset_shared_r, run_mark1_shared_with, ThreadedMarkStats};
use dgr_graph::{GraphStore, PartitionStrategy};
use dgr_sim::SharedGraph;
use dgr_telemetry::{events_jsonl, Phase, Registry, TELEMETRY_ENABLED};
use dgr_trace::{attribution, blame, blame_text, parse_events};
use dgr_workloads::graphs::{binary_tree_dfs, random_digraph};

/// Repetitions per cell; the rep with the minimum wall time is kept,
/// and its event stream (not a mixture) is what blame analyzes.
const REPS: usize = 2;

/// One measured cell: best-of-REPS wall time, run stats, and the best
/// rep's drained event stream.
struct Cell {
    wall_ms: f64,
    stats: ThreadedMarkStats,
    events_jsonl: String,
}

/// Measures one (workload, PEs) cell with a fresh registry per rep.
fn measure(shared: &SharedGraph, pes: u16) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..REPS {
        reset_shared_r(shared);
        let telem = Registry::new(pes);
        let (stats, ms) =
            timed(|| run_mark1_shared_with(shared, pes, PartitionStrategy::Block, &telem));
        if best.as_ref().is_none_or(|b| ms < b.wall_ms) {
            best = Some(Cell {
                wall_ms: ms,
                stats,
                events_jsonl: events_jsonl(&telem.drain_events()),
            });
        }
    }
    best.expect("REPS >= 1")
}

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let small = std::env::args().any(|a| a == "--small");
    if !TELEMETRY_ENABLED {
        println!(
            "note: built without the `telemetry` feature — state clocks are \
             zero-sized no-ops, so utilization and blame are unavailable; \
             wall times and message counts are still reported"
        );
    }
    let mut records = Vec::new();

    // (name, vertices, store) — the scalability families, headline cells
    // tree_d16 @ 16 PEs and digraph_1m @ 4 PEs in full mode.
    let workloads: Vec<(&str, u64, GraphStore)> = if small {
        vec![
            ("tree_d14", 32767, binary_tree_dfs(14)),
            ("digraph_200k", 200_000, random_digraph(200_000, 3.0, 17)),
        ]
    } else {
        vec![
            ("tree_d16", 131_071, binary_tree_dfs(16)),
            ("digraph_1m", 1_000_000, random_digraph(1_000_000, 3.0, 17)),
        ]
    };
    let pe_list: &[u16] = if small { &[1, 4] } else { &[1, 4, 16] };

    for (name, vertices, store) in workloads {
        // BSP round counts feed the span estimate; run_mark1_bsp resets
        // the R slot itself, so one mutable store serves every PE count.
        let mut bsp_store = store.clone();
        let serial_rounds = run_mark1_bsp(&mut bsp_store, 1, PartitionStrategy::Block).rounds;
        let shared = SharedGraph::from_store(store);
        let mut rows = Vec::new();
        let mut serial_wall_us = 0.0f64;
        for &pes in pe_list {
            let cell = measure(&shared, pes);
            let wall_us = cell.wall_ms * 1e3;
            if pes == 1 {
                serial_wall_us = wall_us;
            }
            // Inherent-span estimate: serial wall scaled by the ideal
            // parallel-time fraction the BSP rounds measure.
            let mut stream = cell.events_jsonl;
            let span_est_us = if pes > 1 && serial_rounds > 0 && TELEMETRY_ENABLED {
                let rounds = run_mark1_bsp(&mut bsp_store, pes, PartitionStrategy::Block).rounds;
                let est = (serial_wall_us * rounds as f64 / serial_rounds as f64) as u64;
                // Same schema events_jsonl produces, appended by hand so
                // the estimate travels with the stream.
                stream.push_str(&format!(
                    "{{\"ts_us\": 0, \"pe\": 0, \"cycle\": 0, \"phase\": \"{}\", \
                     \"kind\": \"instant\", \"name\": \"bsp_span_us\", \"value\": {est}, \
                     \"lamport\": 0}}\n",
                    Phase::Mr.name()
                ));
                Some(est)
            } else {
                None
            };
            let cell_key = format!("{name}_p{pes}");
            if TELEMETRY_ENABLED {
                write_file(
                    &format!("BENCH_utilization_events_{cell_key}.jsonl"),
                    &stream,
                );
            }
            let report = blame(&parse_events(&stream));
            let attr = attribution(&report);
            let util_pct = attr.work * 100.0;
            if pes > 1 && TELEMETRY_ENABLED {
                println!("\n-- {cell_key} --");
                print!("{}", blame_text(&report));
            }
            rows.push(vec![
                pes.to_string(),
                cell.stats.messages.to_string(),
                cell.stats.steals.to_string(),
                cell.stats.parks.to_string(),
                f2(cell.wall_ms),
                f2(serial_wall_us / wall_us.max(1e-9)),
                f2(util_pct),
                span_est_us.map_or("-".to_string(), |us| us.to_string()),
            ]);
            let mut rec = vec![
                ("benchmark", JsonValue::Str(format!("utilization_{name}"))),
                ("vertices", JsonValue::Int(vertices)),
                ("pes", JsonValue::Int(u64::from(pes))),
                ("messages", JsonValue::Int(cell.stats.messages)),
                ("steals", JsonValue::Int(cell.stats.steals)),
                ("parks", JsonValue::Int(cell.stats.parks)),
                ("wall_us", JsonValue::Float(wall_us)),
            ];
            if TELEMETRY_ENABLED {
                rec.push(("utilization_pct", JsonValue::Float(util_pct)));
                if report.pes.len() == pes as usize {
                    // The exact-sum invariant of the state clock: every
                    // PE's wall-clock is fully charged to some state.
                    assert!(
                        attr.min_accounted >= 0.95,
                        "{cell_key}: state clock accounts for only {:.1}% of \
                         the worst PE's wall-clock",
                        attr.min_accounted * 100.0
                    );
                }
            }
            records.push(rec);
        }
        print_table(
            &format!(
                "T9: per-PE utilization, {name} + block partition \
                 ({vertices} vertices, best of {REPS})"
            ),
            &[
                "PEs",
                "tasks",
                "steals",
                "parks",
                "wall ms",
                "speedup",
                "util %",
                "span est us",
            ],
            &rows,
        );
    }

    emit_json(json, "BENCH_utilization.json", &records);
}
