//! Experiment T1: concurrent collection versus stop-the-world.
//!
//! Both collectors do tracing work proportional to the live set; the
//! difference is *where the mutator is* while it happens. The
//! stop-the-world pause admits zero reduction; the concurrent cycle
//! interleaves reduction tasks throughout (the overlap column), so the
//! mutator never observes a pause longer than one task execution.

use dgr_baseline::stw::collect_stw;
use dgr_bench::{f2, print_table};
use dgr_gc::{GcConfig, GcDriver};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;

fn main() {
    let mut rows = Vec::new();
    for &n in &[50i64, 150, 400, 1000] {
        // The same program twice: once under the concurrent collector,
        // once pausing for stop-the-world collections at the same period.
        let src = format!("sum (map (\\x -> x * x) (range 1 {n}))");

        let sys = build_with_prelude(&src, SystemConfig::default()).unwrap();
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 400,
                // M_T (deadlock detection) is a synchronous pass, so it is
                // run only occasionally, exactly as Section 6 recommends;
                // M_R and restructuring stay concurrent every cycle.
                mt_every: 4,
                ..Default::default()
            },
        );
        let out = gc.run();
        assert!(matches!(out, dgr_reduction::RunOutcome::Value(_)));
        let cc_cycles = gc.stats().cycles.max(1);
        let cc_mark = gc.stats().mark_events_total;
        let cc_max_cycle = gc.stats().max_cycle_mark_events;
        let cc_reclaimed = gc.stats().reclaimed_total;
        // Overlap: reduction tasks executed *during* marking phases.
        let overlap = gc.last_report().reduction_events_during_marking;

        // Stop-the-world at the same cadence.
        let mut sys = build_with_prelude(&src, SystemConfig::default()).unwrap();
        sys.demand_root();
        let mut stw_pause_max = 0usize;
        let mut stw_reclaimed = 0usize;
        loop {
            let mut n_ev = 0;
            while n_ev < 400 && sys.result.is_none() {
                if !sys.step() {
                    break;
                }
                n_ev += 1;
            }
            // World stopped: nothing runs during this call.
            let rep = collect_stw(&mut sys.graph);
            stw_pause_max = stw_pause_max.max(rep.pause_units);
            stw_reclaimed += rep.reclaimed;
            if sys.result.is_some() || n_ev == 0 {
                break;
            }
        }

        rows.push(vec![
            n.to_string(),
            cc_cycles.to_string(),
            cc_reclaimed.to_string(),
            f2(cc_mark as f64 / cc_cycles as f64),
            cc_max_cycle.to_string(),
            overlap.to_string(),
            stw_reclaimed.to_string(),
            stw_pause_max.to_string(),
            "0".to_string(),
        ]);
    }
    print_table(
        "T1: concurrent cycles vs stop-the-world pauses (sum of squares 1..n)",
        &[
            "n",
            "cc cycles",
            "cc reclaimed",
            "cc mark/cycle",
            "cc max cycle",
            "cc overlap",
            "stw reclaimed",
            "stw max pause",
            "stw overlap",
        ],
        &rows,
    );
    println!(
        "\nShape check: both collectors' tracing work grows with the live set, \
         but the concurrent collector's overlap column is nonzero (reduction \
         keeps executing during M_R and restructuring) while stop-the-world is \
         zero by definition. The occasional M_T pass is the one synchronous \
         piece (Section 6 runs it rarely for exactly that reason)."
    );
}
