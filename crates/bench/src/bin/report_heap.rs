//! Experiment T11: heap pressure observatory — the coupling curve
//! between the GC trigger's byte bound and the heap's waterline.
//!
//! Two workload families run under a pure-pressure trigger
//! (`GcTrigger::Either` with the period effectively disabled), sweeping
//! the byte bound tight → loose:
//!
//! * `sumsq` — `sum (map (\x -> x * x) (range 1 n))`: steady list
//!   production and consumption, the repo's standard reduction workload.
//! * `churn` — `sum (map (\x -> sum (range 1 x)) (range 1 m))`: each
//!   element builds and exhausts its own list, so allocation churns far
//!   past the working set.
//!
//! Each family first runs **uncollected** to measure its natural peak
//! live bytes (the graph's always-on byte clock — feature-independent
//! and deterministic); the sweep bounds interpolate between the built
//! graph's live bytes and that peak, with a final bound far above it as
//! the no-pressure anchor. The coupling contract, hard-asserted: on
//! both families tightening the bound monotonically increases the
//! marking-cycle count and (under a telemetry build, where the tracker
//! records exact waterlines) the tightest bound holds a strictly lower
//! peak than the no-pressure anchor; on the `churn` family the peak is
//! additionally monotone in the bound. (`sumsq` is exempt from the
//! per-step monotonicity because reclamation lag — floating garbage
//! survives into the next cycle — puts a floor under its waterline
//! that the two tightest bounds both sit on.)
//!
//! Under a telemetry build the report also hard-asserts that ≥ 95 % of
//! all reclaimed **bytes** carry an exact allocation stamp — the
//! tracker stamps at allocation via the graph's journal, so a drop
//! means bytes were freed that no stamp ever covered.
//!
//! Outputs: `BENCH_heap.json` (under `--json`) with one record per
//! (family, bound) cell carrying `peak_live_bytes` for
//! `bench_gate --max-peak-bytes`, plus `BENCH_heap_events.jsonl` (the
//! tightest `sumsq` cell's event stream) for `dgr-trace heap` — both in
//! the repo root, which is gitignored. `--small` shrinks the workloads
//! for the CI `heap-smoke` job.

use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_gc::{GcConfig, GcDriver, GcTrigger};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_telemetry::{events_jsonl, HeapSnapshot, TriggerCause, TELEMETRY_ENABLED};

/// The period used while pressure drives the sweep: high enough that the
/// byte bound decides every cycle, low enough to bound a cell where the
/// collector cannot get back under its bound.
const SWEEP_PERIOD: u64 = 1 << 40;

/// One measured (family, bound) cell.
struct Cell {
    family: &'static str,
    bound: u64,
    vertices: u64,
    /// Total deliveries (deterministic, gate-diffable).
    messages: u64,
    wall_ms: f64,
    cycles: u64,
    /// Peak live bytes: the tracker's exact waterline under telemetry,
    /// the per-cycle sampled maximum of the graph clock otherwise.
    peak: u64,
    live_end: u64,
    snap: HeapSnapshot,
}

/// Runs a family's program uncollected, sampling the graph's byte clock
/// every step: returns `(built live bytes, peak live bytes)` — both
/// deterministic and feature-independent.
fn probe(src: &str) -> (u64, u64) {
    let mut sys = build_with_prelude(src, SystemConfig::default()).unwrap();
    let live0 = sys.graph.live_bytes();
    let mut peak = live0;
    sys.demand_root();
    while sys.result.is_none() && sys.step() {
        peak = peak.max(sys.graph.live_bytes());
    }
    assert!(sys.result.is_some(), "probe reached a value");
    (live0, peak)
}

/// Runs one sweep cell: the same loop as `GcDriver::run`, but draining
/// the event ring after every cycle when `drain` is set — the ring is
/// overwrite-oldest, and a full run's reduction spans would evict the
/// early cycles' `hp_*` instants before an end-of-run drain saw them.
fn run_cell(
    family: &'static str,
    src: &str,
    vertices: u64,
    bound: u64,
    drain: bool,
) -> (Cell, String) {
    let sys = build_with_prelude(src, SystemConfig::default()).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: SWEEP_PERIOD,
            trigger: GcTrigger::Either(bound),
            mt_every: 4,
            ..Default::default()
        },
    );
    let mut events = String::new();
    let mut sampled_peak = gc.sys.graph.live_bytes();
    let (_, wall_ms) = timed(|| {
        gc.sys.demand_root();
        loop {
            let mut n = 0u64;
            let mut cause = None;
            while gc.sys.result.is_none() {
                if n > 0 {
                    cause = gc
                        .config()
                        .trigger
                        .fired(n, SWEEP_PERIOD, gc.sys.graph.live_bytes());
                    if cause.is_some() {
                        break;
                    }
                }
                if !gc.sys.step() {
                    break;
                }
                n += 1;
            }
            sampled_peak = sampled_peak.max(gc.sys.graph.live_bytes());
            if gc.sys.result.is_some() {
                break;
            }
            let was_quiescent = gc.sys.sim().is_empty();
            gc.run_cycle_as(cause.unwrap_or(TriggerCause::Period));
            if drain {
                events.push_str(&events_jsonl(&gc.sys.telemetry().drain_events()));
            }
            if gc.sys.result.is_some() || (was_quiescent && gc.sys.sim().is_empty()) {
                break;
            }
        }
    });
    assert!(
        gc.sys.result.is_some(),
        "{family}: reduction reached a value"
    );
    if drain {
        events.push_str(&events_jsonl(&gc.sys.telemetry().drain_events()));
    }
    let snap = gc.sys.heap_snapshot();
    let peak = if TELEMETRY_ENABLED {
        snap.peak
    } else {
        sampled_peak
    };
    (
        Cell {
            family,
            bound,
            vertices,
            messages: gc.sys.events(),
            wall_ms,
            cycles: u64::from(gc.stats().cycles),
            peak,
            live_end: gc.sys.graph.live_bytes(),
            snap,
        },
        events,
    )
}

/// The sweep bounds for one family, tight → loose: three waypoints
/// interpolated between the built graph's live bytes and the
/// uncollected peak, plus a no-pressure anchor far above the peak.
fn sweep_bounds(live0: u64, peak: u64) -> [u64; 4] {
    let span = peak.saturating_sub(live0).max(4);
    [
        live0 + span / 4,
        live0 + span / 2,
        live0 + span * 3 / 4,
        peak * 2,
    ]
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let small = std::env::args().any(|a| a == "--small");
    if !TELEMETRY_ENABLED {
        println!(
            "note: built without the `telemetry` feature — the heap tracker \
             is a zero-sized no-op, so peak bytes fall back to per-cycle \
             samples of the graph clock and the exactness columns read zero"
        );
    }

    let (sum_n, churn_m) = if small { (120i64, 14i64) } else { (300, 30) };
    let sumsq_src = format!("sum (map (\\x -> x * x) (range 1 {sum_n}))");
    let churn_src = format!("sum (map (\\x -> sum (range 1 x)) (range 1 {churn_m}))");
    let families: [(&'static str, &str, u64); 2] = [
        ("sumsq", &sumsq_src, sum_n as u64),
        ("churn", &churn_src, churn_m as u64),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    let mut events_written = false;
    for (family, src, vertices) in families {
        let (live0, probe_peak) = probe(src);
        for (i, bound) in sweep_bounds(live0, probe_peak).into_iter().enumerate() {
            // The tightest sumsq cell is the representative event stream
            // for the dgr-trace heap round trip.
            let drain = TELEMETRY_ENABLED && family == "sumsq" && i == 0;
            let (cell, events) = run_cell(family, src, vertices, bound, drain);
            if drain {
                std::fs::write("BENCH_heap_events.jsonl", &events)
                    .unwrap_or_else(|e| panic!("writing BENCH_heap_events.jsonl: {e}"));
                events_written = true;
            }
            cells.push(cell);
        }
    }

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let s = &cell.snap;
        rows.push(vec![
            cell.family.to_string(),
            cell.bound.to_string(),
            cell.cycles.to_string(),
            s.trigger_heap.to_string(),
            cell.peak.to_string(),
            cell.live_end.to_string(),
            s.alloc_bytes.to_string(),
            f2(s.exact_fraction() * 100.0),
            f2(cell.wall_ms),
        ]);
        let mut rec = vec![
            (
                "benchmark",
                JsonValue::Str(format!("heap_{}_b{}", cell.family, i % 4)),
            ),
            ("vertices", JsonValue::Int(cell.vertices)),
            ("pes", JsonValue::Int(1)),
            ("messages", JsonValue::Int(cell.messages)),
            ("wall_us", JsonValue::Float(cell.wall_ms * 1e3)),
            ("bound_bytes", JsonValue::Int(cell.bound)),
            ("cycles", JsonValue::Int(cell.cycles)),
        ];
        if TELEMETRY_ENABLED {
            // The exactness contract: every byte the tracker frees was
            // stamped when the graph journaled its allocation, so
            // (nearly) all reclaimed bytes carry an exact stamp.
            if s.freed_bytes > 0 {
                assert!(
                    s.exact_fraction() >= 0.95,
                    "{} bound {}: only {:.1}% of {} freed bytes carry an \
                     exact allocation stamp",
                    cell.family,
                    cell.bound,
                    s.exact_fraction() * 100.0,
                    s.freed_bytes
                );
            }
            rec.push(("peak_live_bytes", JsonValue::Int(cell.peak)));
            rec.push(("live_end_bytes", JsonValue::Int(cell.live_end)));
            rec.push(("alloc_bytes", JsonValue::Int(s.alloc_bytes)));
            rec.push(("exact_pct", JsonValue::Float(s.exact_fraction() * 100.0)));
            rec.push(("trigger_heap", JsonValue::Int(s.trigger_heap)));
            rec.push(("trigger_period", JsonValue::Int(s.trigger_period)));
        }
        records.push(rec);
    }

    print_table(
        &format!(
            "T11: pressure-coupled GC — byte bound vs cycles and peak \
             ({} workloads)",
            if small { "small" } else { "full" }
        ),
        &[
            "family",
            "bound",
            "cycles",
            "trig heap",
            "peak",
            "live end",
            "alloc b",
            "exact %",
            "wall ms",
        ],
        &rows,
    );

    // The coupling contract, per family (4 cells each, tight → loose):
    // more pressure means more cycles, and pressure lowers the
    // waterline below the no-pressure anchor. On churn the waterline is
    // additionally monotone in the bound; sumsq's two tightest bounds
    // share a reclamation-lag floor, so it is held only to the
    // tight-vs-anchor drop.
    for fam in cells.chunks(4) {
        let name = fam[0].family;
        for w in fam.windows(2) {
            assert!(
                w[0].cycles >= w[1].cycles,
                "{name}: tightening the bound must not reduce the cycle \
                 count: bound {} ran {} cycles, bound {} ran {}",
                w[0].bound,
                w[0].cycles,
                w[1].bound,
                w[1].cycles
            );
        }
        assert!(
            fam[0].cycles > fam[3].cycles,
            "{name}: the tightest bound must out-cycle the no-pressure \
             anchor ({} vs {})",
            fam[0].cycles,
            fam[3].cycles
        );
        if TELEMETRY_ENABLED {
            assert!(
                fam[0].peak < fam[3].peak,
                "{name}: the tightest bound must hold a lower waterline \
                 than the no-pressure anchor ({} vs {})",
                fam[0].peak,
                fam[3].peak
            );
            if name == "churn" {
                for w in fam.windows(2) {
                    assert!(
                        w[0].peak <= w[1].peak,
                        "churn: tightening the bound must not raise the \
                         waterline: bound {} peaked at {}, bound {} at {}",
                        w[0].bound,
                        w[0].peak,
                        w[1].bound,
                        w[1].peak
                    );
                }
            }
            println!(
                "\ncoupling holds on {name}: {} cycles at bound {} \
                 (peak {}) vs {} cycles unpressured (peak {})",
                fam[0].cycles, fam[0].bound, fam[0].peak, fam[3].cycles, fam[3].peak
            );
        }
    }
    if events_written {
        println!(
            "\nwrote BENCH_heap_events.jsonl (tightest sumsq cell) — fold it \
             back with: dgr-trace heap BENCH_heap_events.jsonl"
        );
    }

    emit_json(json, "BENCH_heap.json", &records);
}
