//! Experiments F4-2 and T-abl: mutator cooperation during marking.
//!
//! A stream of reachability-preserving *move* mutations runs concurrently
//! with a `mark1` pass. With the cooperating primitives of Figure 4-2, no
//! live vertex is ever lost; with cooperation disabled (the static-graph
//! assumption of Chandy–Misra-style algorithms), live vertices end up
//! unmarked at any nonzero mutation rate — a collector trusting those
//! marks would reclaim them.

use dgr_baseline::noncoop::mark_under_mutation;
use dgr_bench::{f2, print_table};
use dgr_workloads::graphs::binary_tree;

fn main() {
    const SEEDS: u64 = 20;
    let mut rows = Vec::new();
    for &period in &[0u64, 16, 8, 4, 2, 1] {
        for coop in [true, false] {
            let mut lost_total = 0usize;
            let mut lost_runs = 0usize;
            let mut mutations = 0u64;
            let mut live = 0usize;
            for seed in 0..SEEDS {
                let mut g = binary_tree(9);
                let r = mark_under_mutation(&mut g, coop, period, seed);
                lost_total += r.lost_live;
                lost_runs += usize::from(r.lost_live > 0);
                mutations += r.mutations;
                live = r.live;
            }
            rows.push(vec![
                if period == 0 {
                    "none".into()
                } else {
                    format!("1/{period}")
                },
                if coop { "on" } else { "off" }.to_string(),
                f2(mutations as f64 / SEEDS as f64),
                live.to_string(),
                f2(lost_total as f64 / SEEDS as f64),
                format!("{lost_runs}/{SEEDS}"),
            ]);
            if coop {
                assert_eq!(lost_total, 0, "cooperation must never lose a live vertex");
            }
        }
    }
    print_table(
        "F4-2 / T-abl: live vertices lost by marking under mutation \
         (binary tree d=9, 20 seeds)",
        &[
            "mutation rate",
            "cooperation",
            "avg mutations",
            "live",
            "avg lost",
            "runs w/ loss",
        ],
        &rows,
    );
    println!(
        "\nShape check: cooperation ON loses 0 at every rate; cooperation OFF \
         loses vertices increasingly often as the mutation rate rises."
    );
}
