//! Experiment T8: heap behavior over time — the practical payoff of
//! Property 1, now in bytes.
//!
//! The same program runs with and without the collector; we sample the
//! graph's live-byte clock (plus the vertex count and capacity) as
//! reduction proceeds. With collection, the heap stays bounded near the
//! true working set; without it, every exhausted subcomputation stays
//! resident and live bytes grow with total allocation. The byte clock
//! is always on (it feeds the `GcTrigger::HeapBytes` pressure trigger),
//! so the comparison is feature-independent; under a telemetry build
//! the heap tracker's waterline and exact-stamp accounting ride along
//! in the summary and the JSON records.
//!
//! Output: `BENCH_memory.json` (under `--json`) with one record per
//! run mode. The boundedness contract is hard-asserted: the collected
//! run must end with both a smaller heap capacity and fewer live bytes
//! than the uncollected run.

use dgr_bench::{emit_json, print_table, timed, JsonValue};
use dgr_gc::{GcConfig, GcDriver};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_telemetry::TELEMETRY_ENABLED;

const SRC: &str = "sum (map (\\x -> x * x) (range 1 200))";
const SAMPLE_EVERY: u64 = 2_000;

/// One sampled point: `(events, live vertices, capacity, live bytes)`.
type Sample = (u64, usize, usize, u64);

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // With GC.
    let sys = build_with_prelude(SRC, SystemConfig::default()).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 300,
            mt_every: 4,
            ..Default::default()
        },
    );
    let mut gc_samples: Vec<Sample> = Vec::new();
    let mut gc_peak = gc.sys.graph.live_bytes();
    let (_, gc_wall_ms) = timed(|| {
        gc.sys.demand_root();
        loop {
            for _ in 0..300 {
                if !gc.sys.step() {
                    break;
                }
            }
            gc_peak = gc_peak.max(gc.sys.graph.live_bytes());
            if gc.sys.events() / SAMPLE_EVERY > gc_samples.len() as u64 {
                gc_samples.push((
                    gc.sys.events(),
                    gc.sys.graph.live_count(),
                    gc.sys.graph.capacity(),
                    gc.sys.graph.live_bytes(),
                ));
            }
            if gc.sys.result.is_some() {
                break;
            }
            gc.run_cycle();
        }
    });
    let gc_final: Sample = (
        gc.sys.events(),
        gc.sys.graph.live_count(),
        gc.sys.graph.capacity(),
        gc.sys.graph.live_bytes(),
    );
    let snap = gc.sys.heap_snapshot();

    // Without GC.
    let mut plain = build_with_prelude(SRC, SystemConfig::default()).unwrap();
    let mut plain_samples: Vec<Sample> = Vec::new();
    let (_, plain_wall_ms) = timed(|| {
        plain.demand_root();
        while plain.result.is_none() && plain.step() {
            if plain.events().is_multiple_of(SAMPLE_EVERY) {
                plain_samples.push((
                    plain.events(),
                    plain.graph.live_count(),
                    plain.graph.capacity(),
                    plain.graph.live_bytes(),
                ));
            }
        }
    });
    let plain_final: Sample = (
        plain.events(),
        plain.graph.live_count(),
        plain.graph.capacity(),
        plain.graph.live_bytes(),
    );

    let rows: Vec<Vec<String>> = gc_samples
        .iter()
        .zip(plain_samples.iter().chain(std::iter::repeat(&plain_final)))
        .map(|(&(ev, gl, gcap, gb), &(_, pl, pcap, pb))| {
            vec![
                ev.to_string(),
                gl.to_string(),
                gcap.to_string(),
                gb.to_string(),
                pl.to_string(),
                pcap.to_string(),
                pb.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("T8: heap over time for `{SRC}`"),
        &[
            "events",
            "gc live",
            "gc heap",
            "gc bytes",
            "no-gc live",
            "no-gc heap",
            "no-gc bytes",
        ],
        &rows,
    );
    println!(
        "\nfinal: with GC live={} heap={} bytes={} ({} events); \
         without GC live={} heap={} bytes={} ({} events)",
        gc_final.1,
        gc_final.2,
        gc_final.3,
        gc_final.0,
        plain_final.1,
        plain_final.2,
        plain_final.3,
        plain_final.0
    );
    if TELEMETRY_ENABLED {
        println!(
            "tracker: peak {} bytes, {} allocated, {} freed ({:.1}% exact stamps)",
            snap.peak,
            snap.alloc_bytes,
            snap.freed_bytes,
            snap.exact_fraction() * 100.0
        );
    }
    assert!(
        gc_final.2 < plain_final.2,
        "the collected heap must end smaller (capacity)"
    );
    assert!(
        gc_final.3 < plain_final.3,
        "the collected heap must end smaller (live bytes)"
    );
    println!(
        "Shape check: under collection the live set (and hence the heap) stays \
         bounded near the working set; without it both grow monotonically with \
         total allocation — memory equal to the entire history of the program."
    );

    let mut with_gc = vec![
        ("benchmark", JsonValue::Str("memory_with_gc".to_string())),
        ("vertices", JsonValue::Int(200)),
        ("pes", JsonValue::Int(1)),
        ("messages", JsonValue::Int(gc_final.0)),
        ("wall_us", JsonValue::Float(gc_wall_ms * 1e3)),
        ("final_live_bytes", JsonValue::Int(gc_final.3)),
        ("final_capacity", JsonValue::Int(gc_final.2 as u64)),
        ("sampled_peak_bytes", JsonValue::Int(gc_peak)),
    ];
    if TELEMETRY_ENABLED {
        with_gc.push(("peak_live_bytes", JsonValue::Int(snap.peak)));
        with_gc.push(("alloc_bytes", JsonValue::Int(snap.alloc_bytes)));
        with_gc.push(("exact_pct", JsonValue::Float(snap.exact_fraction() * 100.0)));
    }
    let without_gc = vec![
        ("benchmark", JsonValue::Str("memory_without_gc".to_string())),
        ("vertices", JsonValue::Int(200)),
        ("pes", JsonValue::Int(1)),
        ("messages", JsonValue::Int(plain_final.0)),
        ("wall_us", JsonValue::Float(plain_wall_ms * 1e3)),
        ("final_live_bytes", JsonValue::Int(plain_final.3)),
        ("final_capacity", JsonValue::Int(plain_final.2 as u64)),
    ];
    emit_json(json, "BENCH_memory.json", &[with_gc, without_gc]);
}
