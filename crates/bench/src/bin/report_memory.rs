//! Experiment T8: heap behavior over time — the practical payoff of
//! Property 1.
//!
//! The same program runs with and without the collector; we sample the
//! live vertex count and the heap capacity as reduction proceeds. With
//! collection, the heap stays bounded near the true live set; without it,
//! every exhausted subcomputation stays resident and the heap grows with
//! total allocation.

use dgr_bench::print_table;
use dgr_gc::{GcConfig, GcDriver};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;

const SRC: &str = "sum (map (\\x -> x * x) (range 1 200))";
const SAMPLE_EVERY: u64 = 2_000;

fn main() {
    // With GC.
    let sys = build_with_prelude(SRC, SystemConfig::default()).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 300,
            mt_every: 4,
            ..Default::default()
        },
    );
    gc.sys.demand_root();
    let mut gc_samples: Vec<(u64, usize, usize)> = Vec::new();
    loop {
        for _ in 0..300 {
            if !gc.sys.step() {
                break;
            }
        }
        if gc.sys.events() / SAMPLE_EVERY > gc_samples.len() as u64 {
            gc_samples.push((
                gc.sys.events(),
                gc.sys.graph.live_count(),
                gc.sys.graph.capacity(),
            ));
        }
        if gc.sys.result.is_some() {
            break;
        }
        gc.run_cycle();
    }
    let gc_final = (
        gc.sys.events(),
        gc.sys.graph.live_count(),
        gc.sys.graph.capacity(),
    );

    // Without GC.
    let mut plain = build_with_prelude(SRC, SystemConfig::default()).unwrap();
    plain.demand_root();
    let mut plain_samples: Vec<(u64, usize, usize)> = Vec::new();
    while plain.result.is_none() && plain.step() {
        if plain.events().is_multiple_of(SAMPLE_EVERY) {
            plain_samples.push((
                plain.events(),
                plain.graph.live_count(),
                plain.graph.capacity(),
            ));
        }
    }
    let plain_final = (
        plain.events(),
        plain.graph.live_count(),
        plain.graph.capacity(),
    );

    let rows: Vec<Vec<String>> = gc_samples
        .iter()
        .zip(plain_samples.iter().chain(std::iter::repeat(&plain_final)))
        .map(|(&(ev, gl, gcap), &(_, pl, pcap))| {
            vec![
                ev.to_string(),
                gl.to_string(),
                gcap.to_string(),
                pl.to_string(),
                pcap.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("T8: heap over time for `{SRC}`"),
        &["events", "gc live", "gc heap", "no-gc live", "no-gc heap"],
        &rows,
    );
    println!(
        "\nfinal: with GC live={} heap={} ({} events); without GC live={} heap={} ({} events)",
        gc_final.1, gc_final.2, gc_final.0, plain_final.1, plain_final.2, plain_final.0
    );
    assert!(
        gc_final.2 < plain_final.2,
        "the collected heap must end smaller"
    );
    println!(
        "Shape check: under collection the live set (and hence the heap) stays \
         bounded near the working set; without it both grow monotonically with \
         total allocation — memory equal to the entire history of the program."
    );
}
