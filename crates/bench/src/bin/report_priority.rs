//! Experiments F5-1/F5-2 and T6: priority marking and dynamic upgrades.
//!
//! Part A measures `mark2`'s re-marking overhead: when a low-priority
//! path reaches a shared subgraph first, a later higher-priority path
//! must re-mark it (Figure 5-1's `prior > prior(v)` case). An adversarial
//! "ladder" graph maximizes this; the overhead is the ratio of `mark2`
//! events to plain `mark1` events.
//!
//! Part B measures upgrade latency end to end (T6): a speculated branch
//! becomes vital; the following GC cycles re-mark it, re-lane its pending
//! tasks, and refresh the vertices' demand priority.

use dgr_bench::{f2, print_table};
use dgr_core::driver::{run_mark1, run_mark2, MarkRunConfig};
use dgr_gc::{GcConfig, GcDriver};
use dgr_graph::{oracle, GraphStore, NodeLabel, RequestKind, Slot};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_sim::SchedPolicy;

/// Ladder: root has an *eager* shortcut to every rung and a *vital*
/// chain through them. FIFO delivery marks every rung Eager via the
/// shortcuts before the vital chain arrives and upgrades each in turn.
fn ladder(n: usize) -> GraphStore {
    let mut g = GraphStore::with_capacity(n + 1);
    let root = g.alloc(NodeLabel::If).unwrap();
    let rungs: Vec<_> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &r in &rungs {
        g.connect(root, r);
        let idx = g.vertex(root).args().len() - 1;
        g.vertex_mut(root)
            .set_request_kind(idx, Some(RequestKind::Eager));
    }
    let mut prev = root;
    for &r in &rungs {
        if prev == root {
            g.connect(prev, r);
            let idx = g.vertex(prev).args().len() - 1;
            g.vertex_mut(prev)
                .set_request_kind(idx, Some(RequestKind::Vital));
        } else {
            g.connect(prev, r);
            g.vertex_mut(prev)
                .set_request_kind(0, Some(RequestKind::Vital));
        }
        prev = r;
    }
    g.set_root(root);
    g
}

fn main() {
    // Part A: re-marking overhead.
    let mut rows = Vec::new();
    for &n in &[64usize, 256, 1024] {
        for (policy_name, policy) in [
            ("fifo (adversarial)", SchedPolicy::Fifo),
            ("lifo", SchedPolicy::Lifo),
        ] {
            let mut g = ladder(n);
            let cfg = MarkRunConfig {
                policy,
                ..Default::default()
            };
            let base = run_mark1(&mut g, &cfg);
            let m2 = run_mark2(&mut g, &cfg);
            // Verify priorities against the oracle.
            let want = oracle::priorities(&g);
            for v in g.live_ids() {
                let got = g
                    .mark(v, Slot::R)
                    .is_marked()
                    .then(|| g.mark(v, Slot::R).prior);
                assert_eq!(got, want[v.index()], "priority mismatch at {v}");
            }
            rows.push(vec![
                n.to_string(),
                policy_name.to_string(),
                base.events.to_string(),
                m2.events.to_string(),
                f2(m2.events as f64 / base.events.max(1) as f64),
            ]);
        }
    }
    print_table(
        "F5-1/2: mark2 re-marking overhead on the eager-shortcut ladder",
        &[
            "rungs",
            "policy",
            "mark1 events",
            "mark2 events",
            "overhead",
        ],
        &rows,
    );

    // Part B: upgrade latency under the GC driver (T6).
    let mut rows = Vec::new();
    for &period in &[100u64, 400, 1600] {
        let cfg = SystemConfig {
            speculation: true,
            policy: SchedPolicy::PriorityFirst,
            ..Default::default()
        };
        let sys = build_with_prelude(
            "if true then (let rec sumto = \\n -> if n == 0 then 0 else n + sumto (n - 1) \
                           in sumto 400) else 0",
            cfg,
        )
        .unwrap();
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period,
                ..Default::default()
            },
        );
        let out = gc.run();
        rows.push(vec![
            period.to_string(),
            format!("{out:?}"),
            gc.sys.stats.upgrades.to_string(),
            gc.stats().relaned_total.to_string(),
            gc.stats().cycles.to_string(),
            gc.sys.events().to_string(),
        ]);
    }
    print_table(
        "T6: eager→vital upgrade propagation (speculated chosen branch, \
         PriorityFirst starves the eager lane between cycles)",
        &[
            "GC period",
            "outcome",
            "upgrades",
            "relaned",
            "cycles",
            "events",
        ],
        &rows,
    );
    println!(
        "\nShape check: mark2's overhead factor grows with ladder size under \
         the adversarial schedule and stays near 1 otherwise; shorter GC \
         periods re-lane upgraded work sooner, finishing in fewer events."
    );
}
