//! Bench regression gate: diffs a freshly generated `BENCH_*.json`
//! against the committed baseline.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--tolerance-pct N]
//! # e.g. bench_gate baselines/BENCH_marking.json BENCH_marking.json
//! ```
//!
//! The committed reference copies live under `baselines/` (tracked);
//! freshly regenerated reports land in the repo root, which is
//! gitignored so regeneration never dirties the tree.
//!
//! Records are keyed by `(benchmark, vertices, pes)`. Message counts are
//! deterministic (fixed seeds, fixed schedules) and must match exactly;
//! `wall_us` may drift up to the tolerance (default 50% — shared CI
//! runners are noisy; tighten locally with `--tolerance-pct 15`). The
//! committed baselines are hot-path numbers: regenerate the fresh side
//! with `--no-default-features` (telemetry off), since recording and
//! flow stamping carry a real, intended cost the gate must not count as
//! a regression. Exit
//! code is non-zero on any regression, missing record, or count
//! mismatch, so CI can surface it — the workflow step is marked
//! non-blocking and the exit code shows up as an annotation rather than
//! a failed build.

use std::process::ExitCode;

/// One benchmark record: identity key plus the two measures we gate.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    key: String,
    messages: u64,
    wall_us: f64,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"benchmark\"") {
            continue;
        }
        let (Some(bench), Some(messages), Some(wall)) = (
            field(line, "benchmark"),
            field(line, "messages").and_then(|v| v.parse::<u64>().ok()),
            field(line, "wall_us").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        let vertices = field(line, "vertices").unwrap_or("?");
        let pes = field(line, "pes").unwrap_or("?");
        out.push(Record {
            key: format!("{bench}/v{vertices}/pe{pes}"),
            messages,
            wall_us: wall,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance_pct: f64 = args
        .iter()
        .position(|a| a == "--tolerance-pct")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let files: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .collect();
    let [baseline_path, fresh_path] = files[..] else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--tolerance-pct N]");
        return ExitCode::FAILURE;
    };
    let (baseline, fresh) = match (parse(baseline_path), parse(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!("bench gate: {fresh_path} vs baseline {baseline_path} (tolerance {tolerance_pct}%)");
    println!(
        "{:<44} {:>12} {:>12} {:>8}  status",
        "benchmark", "base us", "fresh us", "delta"
    );
    let mut failures = 0u32;
    for base in &baseline {
        let Some(new) = fresh.iter().find(|r| r.key == base.key) else {
            println!(
                "{:<44} {:>12} {:>12} {:>8}  MISSING",
                base.key, base.wall_us, "-", "-"
            );
            failures += 1;
            continue;
        };
        let delta_pct = if base.wall_us > 0.0 {
            (new.wall_us - base.wall_us) / base.wall_us * 100.0
        } else {
            0.0
        };
        let status = if new.messages != base.messages {
            failures += 1;
            format!("COUNT {} != {}", new.messages, base.messages)
        } else if delta_pct > tolerance_pct {
            failures += 1;
            "REGRESSED".to_string()
        } else {
            "ok".to_string()
        };
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>+7.1}%  {status}",
            base.key, base.wall_us, new.wall_us, delta_pct
        );
    }
    for new in &fresh {
        if !baseline.iter().any(|r| r.key == new.key) {
            println!(
                "{:<44} {:>12} {:>12.1} {:>8}  NEW (not gated)",
                new.key, "-", new.wall_us, "-"
            );
        }
    }
    if failures > 0 {
        eprintln!("bench gate: {failures} regression(s) beyond {tolerance_pct}%");
        return ExitCode::FAILURE;
    }
    println!("bench gate: all within tolerance");
    ExitCode::SUCCESS
}
