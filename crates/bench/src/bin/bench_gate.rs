//! Bench regression gate: diffs a freshly generated `BENCH_*.json`
//! against the committed baseline, and gates the derived `speedup`
//! metric of multi-PE benchmarks.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--tolerance-pct N] [--min-speedup X]
//! bench_gate --speedup-only <fresh.json> [--min-speedup X]
//! # e.g. bench_gate baselines/BENCH_scalability.json BENCH_scalability.json --min-speedup 4
//! ```
//!
//! The committed reference copies live under `baselines/` (tracked);
//! freshly regenerated reports land in the repo root, which is
//! gitignored so regeneration never dirties the tree.
//!
//! Records are keyed by `(benchmark, vertices, pes)`. Message counts are
//! deterministic (fixed seeds, fixed schedules) and must match exactly;
//! `wall_us` may drift up to the tolerance (default 50% — shared CI
//! runners are noisy; tighten locally with `--tolerance-pct 15`). The
//! committed baselines are hot-path numbers: regenerate the fresh side
//! with `--no-default-features` (telemetry off), since recording and
//! flow stamping carry a real, intended cost the gate must not count as
//! a regression.
//!
//! For benchmark families that vary only in `pes`, the gate derives
//! `speedup(N) = wall_us[1 PE] / wall_us[N PEs]` from the fresh file and,
//! under `--min-speedup X`, requires the best multi-PE speedup of each
//! family to reach `min(X, available_parallelism)` — wall-clock speedup
//! physically cannot exceed the host's hardware threads, so a 4x target
//! degrades to a no-anti-scaling check on a single-core container
//! (`min(4, 1) = 1`, met by any profile that does not lose to serial).
//! `--speedup-family <substr>` restricts the gate to families whose name
//! contains the substring (others still print, ungated): the tree
//! workloads are the locality showcase the 4x target is about, while the
//! random digraph is communication-bound by construction and cannot beat
//! serial on a time-sliced host. `--speedup-only` skips the baseline
//! diff entirely (a fresh file is the only input) — the CI scalability
//! smoke job uses this mode.
//!
//! `--min-utilization PCT` additionally gates records that carry a
//! `utilization_pct` field (the utilization report under a
//! telemetry-enabled build): the best cell of each family must keep the
//! floor. The serial cell normally clears it alone, so the floor
//! catches a state-clock accounting collapse, not parallel efficiency
//! on a time-sliced host.
//!
//! `--max-reclaim-latency CYC` gates records that carry a
//! `mean_latency_cycles` field (the gclat report under a
//! telemetry-enabled build): the worst cell of each family must keep
//! its mean reclamation latency at or under the ceiling, catching a
//! collector that starts letting garbage float across cycles.
//!
//! `--max-peak-bytes B` gates records that carry a `peak_live_bytes`
//! field (the heap report under a telemetry-enabled build): the worst
//! cell of each family must keep its peak live bytes at or under the
//! ceiling, catching a pressure trigger that stops holding the
//! waterline.
//!
//! Exit code is non-zero on any regression, missing record, count
//! mismatch, or failed speedup gate, so CI can surface it — the
//! workflow step is marked non-blocking and the exit code shows up as
//! an annotation rather than a failed build.

use std::process::ExitCode;

/// One benchmark record: identity key plus the measures we gate.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    key: String,
    /// Benchmark family (key minus the `/peN` suffix): records in one
    /// family differ only in PE count and form one speedup curve.
    family: String,
    pes: u64,
    messages: u64,
    wall_us: f64,
    /// Per-PE utilization percentage, present only in records the
    /// utilization report emits from a telemetry-enabled build.
    utilization_pct: Option<f64>,
    /// Mean reclamation latency in cycles, present only in records the
    /// gclat report emits from a telemetry-enabled build.
    mean_latency_cycles: Option<f64>,
    /// Peak live bytes over the run, present only in records the heap
    /// report emits from a telemetry-enabled build.
    peak_live_bytes: Option<f64>,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"benchmark\"") {
            continue;
        }
        let (Some(bench), Some(messages), Some(wall)) = (
            field(line, "benchmark"),
            field(line, "messages").and_then(|v| v.parse::<u64>().ok()),
            field(line, "wall_us").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        let vertices = field(line, "vertices").unwrap_or("?");
        let pes = field(line, "pes")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        out.push(Record {
            key: format!("{bench}/v{vertices}/pe{pes}"),
            family: format!("{bench}/v{vertices}"),
            pes,
            messages,
            wall_us: wall,
            utilization_pct: field(line, "utilization_pct").and_then(|v| v.parse().ok()),
            mean_latency_cycles: field(line, "mean_latency_cycles").and_then(|v| v.parse().ok()),
            peak_live_bytes: field(line, "peak_live_bytes").and_then(|v| v.parse().ok()),
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(out)
}

/// Derived speedup curve of one benchmark family: the serial wall time
/// and the best `(pes, speedup)` among the multi-PE records.
struct Curve {
    family: String,
    serial_us: f64,
    best_pes: u64,
    best_speedup: f64,
}

/// Derives `wall[1 PE] / wall[N PEs]` per family. Families without a
/// 1-PE record or without any multi-PE record have no curve.
fn speedup_curves(records: &[Record]) -> Vec<Curve> {
    let mut out: Vec<Curve> = Vec::new();
    for r in records {
        if r.pes != 1 || r.wall_us <= 0.0 {
            continue;
        }
        let mut best: Option<(u64, f64)> = None;
        for m in records.iter().filter(|m| m.family == r.family && m.pes > 1) {
            let s = r.wall_us / m.wall_us;
            if best.is_none_or(|(_, b)| s > b) {
                best = Some((m.pes, s));
            }
        }
        if let Some((best_pes, best_speedup)) = best {
            out.push(Curve {
                family: r.family.clone(),
                serial_us: r.wall_us,
                best_pes,
                best_speedup,
            });
        }
    }
    out
}

const USAGE: &str = "usage: bench_gate <baseline.json> <fresh.json> [--tolerance-pct N] \
                     [--min-speedup X] [--speedup-family SUBSTR] [--min-utilization PCT] \
                     [--max-reclaim-latency CYC] [--max-peak-bytes B]\n       \
                     bench_gate --speedup-only <fresh.json> [--min-speedup X] \
                     [--speedup-family SUBSTR] [--min-utilization PCT] \
                     [--max-reclaim-latency CYC] [--max-peak-bytes B]";

fn main() -> ExitCode {
    let mut tolerance_pct = 50.0;
    let mut min_speedup: Option<f64> = None;
    let mut min_utilization: Option<f64> = None;
    let mut max_reclaim_latency: Option<f64> = None;
    let mut max_peak_bytes: Option<f64> = None;
    let mut family_filter: Option<String> = None;
    let mut speedup_only = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance-pct" => {
                tolerance_pct = it.next().and_then(|v| v.parse().ok()).unwrap_or(50.0);
            }
            "--min-speedup" => min_speedup = it.next().and_then(|v| v.parse().ok()),
            "--min-utilization" => min_utilization = it.next().and_then(|v| v.parse().ok()),
            "--max-reclaim-latency" => {
                max_reclaim_latency = it.next().and_then(|v| v.parse().ok());
            }
            "--max-peak-bytes" => max_peak_bytes = it.next().and_then(|v| v.parse().ok()),
            "--speedup-family" => family_filter = it.next(),
            "--speedup-only" => speedup_only = true,
            _ if a.starts_with("--") => {
                eprintln!("bench_gate: unknown flag {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ => files.push(a),
        }
    }

    let mut failures = 0u32;
    let fresh = if speedup_only {
        let [fresh_path] = &files[..] else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        match parse(fresh_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let [baseline_path, fresh_path] = &files[..] else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        let (baseline, fresh) = match (parse(baseline_path), parse(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for e in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("{e}");
                }
                return ExitCode::FAILURE;
            }
        };
        println!(
            "bench gate: {fresh_path} vs baseline {baseline_path} (tolerance {tolerance_pct}%)"
        );
        println!(
            "{:<44} {:>12} {:>12} {:>8}  status",
            "benchmark", "base us", "fresh us", "delta"
        );
        for base in &baseline {
            let Some(new) = fresh.iter().find(|r| r.key == base.key) else {
                println!(
                    "{:<44} {:>12} {:>12} {:>8}  MISSING",
                    base.key, base.wall_us, "-", "-"
                );
                failures += 1;
                continue;
            };
            let delta_pct = if base.wall_us > 0.0 {
                (new.wall_us - base.wall_us) / base.wall_us * 100.0
            } else {
                0.0
            };
            let status = if new.messages != base.messages {
                failures += 1;
                format!("COUNT {} != {}", new.messages, base.messages)
            } else if delta_pct > tolerance_pct {
                failures += 1;
                "REGRESSED".to_string()
            } else {
                "ok".to_string()
            };
            println!(
                "{:<44} {:>12.1} {:>12.1} {:>+7.1}%  {status}",
                base.key, base.wall_us, new.wall_us, delta_pct
            );
        }
        for new in &fresh {
            if !baseline.iter().any(|r| r.key == new.key) {
                println!(
                    "{:<44} {:>12} {:>12.1} {:>8}  NEW (not gated)",
                    new.key, "-", new.wall_us, "-"
                );
            }
        }
        fresh
    };

    let curves = speedup_curves(&fresh);
    if !curves.is_empty() {
        let para = std::thread::available_parallelism()
            .map(|n| n.get() as f64)
            .unwrap_or(1.0);
        let effective_min = min_speedup.map(|m| m.min(para));
        match (min_speedup, effective_min) {
            (Some(want), Some(eff)) => println!(
                "\nderived speedup (wall[1 PE] / wall[N PEs]); gate: best >= \
                 min({want}, {para} hardware threads) = {eff:.2}{}",
                family_filter
                    .as_deref()
                    .map(|f| format!(" for families matching \"{f}\""))
                    .unwrap_or_default()
            ),
            _ => println!(
                "\nderived speedup (wall[1 PE] / wall[N PEs]); no gate (--min-speedup unset)"
            ),
        }
        println!(
            "{:<36} {:>12} {:>8} {:>9}  status",
            "family", "serial us", "best@pe", "speedup"
        );
        for c in &curves {
            let gated = family_filter
                .as_deref()
                .is_none_or(|f| c.family.contains(f));
            let status = match effective_min {
                Some(eff) if gated && c.best_speedup < eff => {
                    failures += 1;
                    "TOO SLOW"
                }
                Some(_) if gated => "ok",
                _ => "-",
            };
            println!(
                "{:<36} {:>12.1} {:>8} {:>9.2}  {status}",
                c.family, c.serial_us, c.best_pes, c.best_speedup
            );
        }
    } else if min_speedup.is_some() {
        eprintln!("bench gate: --min-speedup set but no multi-PE benchmark family found");
        failures += 1;
    }

    // Utilization floor: among the records that carry a per-PE
    // utilization percentage (the utilization report under a
    // telemetry-enabled build), the best cell of each family must keep
    // the floor. The serial cell normally clears it by itself, so the
    // floor rules out a state-clock accounting collapse rather than
    // demanding parallel efficiency from a time-sliced CI host.
    if let Some(floor) = min_utilization {
        let with_util: Vec<&Record> = fresh
            .iter()
            .filter(|r| r.utilization_pct.is_some())
            .collect();
        if with_util.is_empty() {
            eprintln!(
                "bench gate: --min-utilization set but no record carries \
                 utilization_pct (telemetry-off build?)"
            );
            failures += 1;
        } else {
            println!("\nutilization floor: best cell per family >= {floor}%");
            println!("{:<36} {:>8} {:>8}  status", "family", "best@pe", "util %");
            let mut families: Vec<&str> = with_util.iter().map(|r| r.family.as_str()).collect();
            families.dedup();
            for fam in families {
                let best = with_util
                    .iter()
                    .filter(|r| r.family == fam)
                    .max_by(|a, b| {
                        a.utilization_pct
                            .partial_cmp(&b.utilization_pct)
                            .expect("utilization is finite")
                    })
                    .expect("family came from a non-empty record");
                let util = best.utilization_pct.expect("filtered to Some");
                let status = if util < floor {
                    failures += 1;
                    "TOO IDLE"
                } else {
                    "ok"
                };
                println!("{fam:<36} {:>8} {util:>8.1}  {status}", best.pes);
            }
        }
    }

    // Reclamation-latency ceiling: among the records that carry a mean
    // reclamation latency (the gclat report under a telemetry-enabled
    // build), the worst cell of each family must stay at or under the
    // ceiling — a drift above it means a collector started letting
    // garbage float across cycles instead of reclaiming promptly.
    if let Some(ceiling) = max_reclaim_latency {
        let with_lat: Vec<&Record> = fresh
            .iter()
            .filter(|r| r.mean_latency_cycles.is_some())
            .collect();
        if with_lat.is_empty() {
            eprintln!(
                "bench gate: --max-reclaim-latency set but no record carries \
                 mean_latency_cycles (telemetry-off build?)"
            );
            failures += 1;
        } else {
            println!("\nreclaim-latency ceiling: worst cell per family <= {ceiling} cycles");
            println!("{:<36} {:>8} {:>10}  status", "family", "pes", "mean lat");
            let mut families: Vec<&str> = with_lat.iter().map(|r| r.family.as_str()).collect();
            families.dedup();
            for fam in families {
                let worst = with_lat
                    .iter()
                    .filter(|r| r.family == fam)
                    .max_by(|a, b| {
                        a.mean_latency_cycles
                            .partial_cmp(&b.mean_latency_cycles)
                            .expect("latency is finite")
                    })
                    .expect("family came from a non-empty record");
                let lat = worst.mean_latency_cycles.expect("filtered to Some");
                let status = if lat > ceiling {
                    failures += 1;
                    "TOO FLOATY"
                } else {
                    "ok"
                };
                println!("{fam:<36} {:>8} {lat:>10.2}  {status}", worst.pes);
            }
        }
    }

    // Peak-bytes ceiling: among the records that carry a peak live
    // bytes reading (the heap report under a telemetry-enabled build),
    // the worst cell of each family must stay at or under the ceiling —
    // a drift above it means the pressure trigger stopped holding the
    // waterline it was configured to hold.
    if let Some(ceiling) = max_peak_bytes {
        let with_peak: Vec<&Record> = fresh
            .iter()
            .filter(|r| r.peak_live_bytes.is_some())
            .collect();
        if with_peak.is_empty() {
            eprintln!(
                "bench gate: --max-peak-bytes set but no record carries \
                 peak_live_bytes (telemetry-off build?)"
            );
            failures += 1;
        } else {
            println!("\npeak-bytes ceiling: worst cell per family <= {ceiling} bytes");
            println!("{:<36} {:>8} {:>12}  status", "family", "pes", "peak bytes");
            let mut families: Vec<&str> = with_peak.iter().map(|r| r.family.as_str()).collect();
            families.dedup();
            for fam in families {
                let worst = with_peak
                    .iter()
                    .filter(|r| r.family == fam)
                    .max_by(|a, b| {
                        a.peak_live_bytes
                            .partial_cmp(&b.peak_live_bytes)
                            .expect("peak is finite")
                    })
                    .expect("family came from a non-empty record");
                let peak = worst.peak_live_bytes.expect("filtered to Some");
                let status = if peak > ceiling {
                    failures += 1;
                    "TOO HIGH"
                } else {
                    "ok"
                };
                println!("{fam:<36} {:>8} {peak:>12.0}  {status}", worst.pes);
            }
        }
    }

    if failures > 0 {
        eprintln!("bench gate: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("bench gate: all gates passed");
    ExitCode::SUCCESS
}
