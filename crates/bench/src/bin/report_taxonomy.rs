//! Experiments F3-2 / F3-3: the task taxonomy over a live speculative
//! computation, and the Venn relationships of Figure 3-3.
//!
//! Every GC cycle classifies the pending tasks (Properties 3–6). The
//! table shows the taxonomy evolving: eager tasks while speculation is
//! undecided, irrelevant tasks after predicates resolve, vital tasks
//! along the needed spine. After each cycle the Figure 3-3 relationships
//! are checked against the sequential oracle.

use dgr_bench::print_table;
use dgr_gc::{classify_pending_tasks, GcConfig, GcDriver};
use dgr_graph::oracle;
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_sim::SchedPolicy;

fn main() {
    let src = "
        let rec spin = \\n -> if n == 0 then 0 else spin (n - 1) + nfib 5
        in (if nfib 9 > 0 then 1 + nfib 7 else spin 500)
           + (if nfib 9 > 1000 then spin 500 else 2)
    ";
    let cfg = SystemConfig {
        speculation: true,
        policy: SchedPolicy::Random { marking_bias: 0.5 },
        seed: 3,
        ..Default::default()
    };
    let sys = build_with_prelude(src, cfg).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 300,
            ..Default::default()
        },
    );
    gc.sys.demand_root();

    let mut rows = Vec::new();
    for cycle in 1..=100 {
        for _ in 0..300 {
            if !gc.sys.step() {
                break;
            }
        }
        if gc.sys.result.is_some() {
            break;
        }
        let census_before = classify_pending_tasks(&gc.sys);
        let report = gc.run_cycle();

        // ---- Figure 3-3 Venn checks against the oracle ----
        let tasks = gc.sys.pending_task_endpoints();
        let o = oracle::Oracle::compute(&gc.sys.graph, &tasks);
        // GAR is disjoint from R and from F.
        for v in o.garbage.iter() {
            assert!(!o.r.contains(v) && !gc.sys.graph.is_free(v));
        }
        // DL_v ⊆ R_v.
        for v in o.deadlocked.iter() {
            assert_eq!(o.prior[v.index()], Some(dgr_graph::Priority::Vital));
        }
        // The marked garbage set is a subset of the oracle's garbage NOW
        // (Theorem 1's right-hand containment, read at restructure time:
        // reclaimed vertices were freed, so here we check nothing live by
        // the oracle was unmarked).
        for v in gc.sys.graph.live_ids() {
            if o.r.contains(v) {
                // live now ⇒ was not reclaimed: trivially true since it
                // is still live; the reclaim-safety is asserted by the
                // engine's dangling counter staying zero below.
            }
        }
        assert_eq!(
            gc.sys.stats.dangling_requests, 0,
            "no task ever reached a freed vertex"
        );

        if rows.len() >= 30 {
            continue; // table stays readable; the run continues to the result
        }
        rows.push(vec![
            cycle.to_string(),
            census_before.vital.to_string(),
            census_before.eager.to_string(),
            census_before.reserve.to_string(),
            census_before.irrelevant.to_string(),
            report.expunged.to_string(),
            report.reclaimed.to_string(),
            report.relaned.to_string(),
        ]);
    }
    print_table(
        "F3-2: pending-task census per cycle (speculative two-branch program)",
        &[
            "cycle",
            "vital",
            "eager",
            "reserve",
            "irrelevant",
            "expunged",
            "reclaimed",
            "relaned",
        ],
        &rows,
    );
    println!("\nresult: {:?}", gc.sys.result);
    println!(
        "Shape check: eager tasks dominate while the predicates are \
         undecided; once they resolve, the dead branches' tasks show up as \
         irrelevant and are expunged, vital tasks carry the spine, and the \
         Figure 3-3 set relationships hold at every cycle."
    );
}
