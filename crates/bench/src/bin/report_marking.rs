//! Experiment F4-1: the simplified marking algorithm (Figure 4-1) on
//! quiescent graphs — correctness against the oracle and cost/shape of
//! the marking wave across graph sizes, degrees and schedules.

use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_core::driver::{run_mark1, MarkRunConfig};
use dgr_graph::{oracle, Slot};
use dgr_sim::SchedPolicy;
use dgr_workloads::graphs::{binary_tree, chain, random_digraph};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut records = Vec::new();

    // Size sweep on random digraphs.
    let mut rows = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        for &deg in &[2.0, 4.0] {
            let mut g = random_digraph(n, deg, 42);
            let reach = oracle::reachable_r(&g);
            let cfg = MarkRunConfig::default();
            let (stats, ms) = timed(|| run_mark1(&mut g, &cfg));
            // Verify against the oracle.
            let agree = g
                .live_ids()
                .all(|v| reach.contains(v) == g.mark(v, Slot::R).is_marked());
            assert!(agree, "marking disagrees with the oracle");
            rows.push(vec![
                n.to_string(),
                f2(deg),
                reach.len().to_string(),
                stats.marked.to_string(),
                stats.events.to_string(),
                f2(stats.events as f64 / reach.len().max(1) as f64),
                stats.remote_messages.to_string(),
                f2(ms),
            ]);
            records.push(vec![
                (
                    "benchmark",
                    JsonValue::Str(format!("detsim_fifo_random_digraph_deg{deg:.0}")),
                ),
                ("vertices", JsonValue::Int(n as u64)),
                ("pes", JsonValue::Int(cfg.num_pes as u64)),
                ("messages", JsonValue::Int(stats.events)),
                ("wall_us", JsonValue::Float(ms * 1e3)),
            ]);
        }
    }
    print_table(
        "F4-1a: mark1 on random digraphs (4 PEs, FIFO)",
        &[
            "|V|",
            "degree",
            "|R|",
            "marked",
            "events",
            "events/|R|",
            "remote",
            "ms",
        ],
        &rows,
    );

    // Shape sweep: tree vs chain (parallel wavefront vs sequential path),
    // plus the depth-15 tree (65k vertices) — the scalability experiments'
    // reference workload — under the det-sim FIFO schedule.
    let mut rows = Vec::new();
    for (name, slug, mut g) in [
        ("tree d=14", "detsim_fifo_tree_d14", binary_tree(14)),
        ("tree d=15", "detsim_fifo_tree_d15", binary_tree(15)),
        ("chain 32k", "detsim_fifo_chain_32k", chain(32_768)),
    ] {
        let vertices = g.live_ids().count() as u64;
        let cfg = MarkRunConfig::default();
        let (stats, ms) = timed(|| run_mark1(&mut g, &cfg));
        rows.push(vec![
            name.to_string(),
            stats.marked.to_string(),
            stats.events.to_string(),
            f2(ms),
        ]);
        records.push(vec![
            ("benchmark", JsonValue::Str(slug.to_string())),
            ("vertices", JsonValue::Int(vertices)),
            ("pes", JsonValue::Int(cfg.num_pes as u64)),
            ("messages", JsonValue::Int(stats.events)),
            ("wall_us", JsonValue::Float(ms * 1e3)),
        ]);
    }
    print_table(
        "F4-1b: marking-tree shape (tree wavefront vs sequential chain)",
        &["graph", "marked", "events", "ms"],
        &rows,
    );

    // Schedule robustness: every policy yields the same mark set.
    let mut rows = Vec::new();
    for (name, policy) in [
        ("fifo", SchedPolicy::Fifo),
        ("lifo", SchedPolicy::Lifo),
        ("round-robin", SchedPolicy::RoundRobin),
        ("priority", SchedPolicy::PriorityFirst),
        ("random", SchedPolicy::Random { marking_bias: 0.5 }),
    ] {
        let mut g = random_digraph(20_000, 3.0, 7);
        let cfg = MarkRunConfig {
            policy,
            seed: 11,
            ..Default::default()
        };
        let stats = run_mark1(&mut g, &cfg);
        rows.push(vec![
            name.to_string(),
            stats.marked.to_string(),
            stats.events.to_string(),
        ]);
    }
    let marked: Vec<&String> = rows.iter().map(|r| &r[1]).collect();
    assert!(
        marked.windows(2).all(|w| w[0] == w[1]),
        "mark set must be schedule-independent"
    );
    print_table(
        "F4-1c: schedule independence (|V|=20k, degree 3)",
        &["policy", "marked", "events"],
        &rows,
    );

    emit_json(json, "BENCH_marking.json", &records);
}
