//! Experiment T10: GC lifecycle observatory — reclamation latency,
//! floating-garbage census, and message-complexity accounting.
//!
//! Every collector in the repo drives the **same** `LifecycleTracker`
//! meters (census → reclaim → message meter per cycle), so their
//! latency and float histograms are directly comparable:
//!
//! * `gcdriver` — the concurrent collector over a reduction program
//!   (its natural workload); the one backend whose census can see a
//!   vertex float across cycles, and the one that emits the `lc_*`
//!   instants `dgr-trace lifecycle` folds back into this table.
//! * `rc` — reference counting over a churn trace: reclaims at latency
//!   zero, but every cyclic cluster it strands is censused as
//!   *permanent* float (the T2 deficiency, now measured in the same
//!   units as everything else).
//! * `stw` — stop-the-world over mutating tree/digraph stores: exact
//!   and float-free by construction (census and reclaim are the same
//!   traversal), at the price T1 measures.
//! * `noncoop` — the decentralized marking pass without mutator
//!   cooperation, metered against the paper's Section 4 bound of
//!   `2 × marked` messages.
//!
//! Under a telemetry build the report hard-asserts that ≥ 95 % of all
//! reclaimed vertices carry an **exact** latency stamp — the census
//! taps the very garbage sets the collectors compute, so a drop below
//! that means a backend reclaimed vertices its census never saw.
//!
//! Outputs: `BENCH_gclat.json` (under `--json`) with one record per
//! (backend, workload) cell carrying `mean_latency_cycles` for
//! `bench_gate --max-reclaim-latency`, plus `BENCH_gclat_events.jsonl`
//! (the gcdriver cell's event stream) for `dgr-trace lifecycle` — both
//! in the repo root, which is gitignored. `--small` shrinks the
//! workloads for the CI `gclat-smoke` job.

use dgr_baseline::noncoop::mark_under_mutation_observed;
use dgr_baseline::refcount::replay_churn_rc_observed;
use dgr_baseline::stw::collect_stw_observed;
use dgr_bench::{emit_json, f2, print_table, timed, JsonValue};
use dgr_gc::{GcConfig, GcDriver};
use dgr_graph::{GraphStore, VertexId};
use dgr_lang::build_with_prelude;
use dgr_reduction::SystemConfig;
use dgr_telemetry::{
    bucket_label, events_jsonl, LifecycleSnapshot, LifecycleTracker, HIST_BUCKETS,
    TELEMETRY_ENABLED,
};
use dgr_workloads::churn::churn_trace;
use dgr_workloads::graphs::{binary_tree, random_digraph};

/// One measured (backend, workload) cell. All lifecycle numbers come
/// from the same `LifecycleSnapshot` type regardless of backend.
struct Cell {
    /// `<backend>_<workload>`, the benchmark key suffix.
    name: &'static str,
    /// Workload-size parameter (deterministic, feature-independent).
    vertices: u64,
    /// Backend-native message/work count (deterministic, gate-diffable).
    messages: u64,
    wall_ms: f64,
    snap: LifecycleSnapshot,
}

/// Deterministically severs up to `count` outgoing arcs from random
/// live vertices (xorshift64 — the bench crate carries no RNG dep),
/// turning the orphaned substructures into garbage for the next
/// collection to census.
fn sever_arcs(g: &mut GraphStore, rng: &mut u64, count: usize) {
    let ids: Vec<VertexId> = g.live_ids().collect();
    if ids.is_empty() {
        return;
    }
    for _ in 0..count {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let v = ids[(*rng as usize) % ids.len()];
        let Some(&t) = g.vertex(v).args().first() else {
            continue;
        };
        g.disconnect(v, t);
    }
}

/// The concurrent collector over a reduction program. Returns the cell
/// and the drained event stream carrying the per-cycle `lc_*` instants.
fn run_gcdriver(n: i64) -> (Cell, String) {
    let src = format!("sum (map (\\x -> x * x) (range 1 {n}))");
    let sys = build_with_prelude(&src, SystemConfig::default()).unwrap();
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 300,
            mt_every: 4,
            ..Default::default()
        },
    );
    // Same loop as `GcDriver::run`, but draining the event ring after
    // every cycle: the ring is overwrite-oldest, and a full run's
    // reduction spans would evict the early cycles' `lc_*` instants
    // before a single end-of-run drain could see them.
    let mut events = String::new();
    let (_, wall_ms) = timed(|| {
        gc.sys.demand_root();
        loop {
            let mut n = 0;
            while n < gc.config().period && gc.sys.result.is_none() {
                if !gc.sys.step() {
                    break;
                }
                n += 1;
            }
            if gc.sys.result.is_some() {
                break;
            }
            let was_quiescent = gc.sys.sim().is_empty();
            gc.run_cycle();
            events.push_str(&events_jsonl(&gc.sys.telemetry().drain_events()));
            if gc.sys.result.is_some() || (was_quiescent && gc.sys.sim().is_empty()) {
                break;
            }
        }
    });
    assert!(gc.sys.result.is_some(), "the reduction reached a value");
    events.push_str(&events_jsonl(&gc.sys.telemetry().drain_events()));
    (
        Cell {
            name: "gcdriver_sum",
            vertices: u64::try_from(n).expect("n > 0"),
            messages: gc.stats().mark_events_total,
            wall_ms,
            snap: gc.lifecycle_snapshot(),
        },
        events,
    )
}

/// Reference counting over a churn trace (brackets its own cycles:
/// one churn op = one cycle).
fn run_rc(steps: usize) -> Cell {
    let trace = churn_trace(steps, 3, 0.3, 0.6, 11);
    let mut lc = LifecycleTracker::new();
    let (r, wall_ms) = timed(|| replay_churn_rc_observed(&trace, &mut lc));
    Cell {
        name: "rc_churn",
        vertices: u64::try_from(steps).expect("steps fit"),
        messages: r.count_messages,
        wall_ms,
        snap: lc.snapshot(),
    }
}

/// Stop-the-world over a mutating store: each cycle severs arcs and
/// collects; the caller owns the cycle bracket so all collections
/// share one ledger.
fn run_stw(
    name: &'static str,
    mut g: GraphStore,
    vertices: u64,
    cycles: u64,
    sever: usize,
) -> Cell {
    let mut lc = LifecycleTracker::new();
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut traced = 0u64;
    let (_, wall_ms) = timed(|| {
        for c in 0..cycles {
            sever_arcs(&mut g, &mut rng, sever);
            lc.begin_cycle(c);
            let r = collect_stw_observed(&mut g, &mut lc);
            lc.end_cycle();
            traced += r.traced as u64;
        }
    });
    Cell {
        name,
        vertices,
        messages: traced,
        wall_ms,
        snap: lc.snapshot(),
    }
}

/// The non-cooperating marking pass, repeated: arcs are severed between
/// passes (a tree's internal move-mutations orphan nothing on their
/// own), and each pass censuses and reclaims the resulting garbage.
fn run_noncoop(
    name: &'static str,
    mut g: GraphStore,
    vertices: u64,
    cycles: u64,
    period: u64,
) -> Cell {
    let mut lc = LifecycleTracker::new();
    let mut rng = 0x2545f4914f6cdd1du64;
    let mut mark_events = 0u64;
    let (_, wall_ms) = timed(|| {
        for c in 0..cycles {
            sever_arcs(&mut g, &mut rng, 8);
            lc.begin_cycle(c);
            let r = mark_under_mutation_observed(&mut g, false, period, 5 + c, &mut lc);
            lc.end_cycle();
            mark_events += r.mark_events;
        }
    });
    Cell {
        name,
        vertices,
        messages: mark_events,
        wall_ms,
        snap: lc.snapshot(),
    }
}

/// One-line rendering of a power-of-two histogram: only the occupied
/// buckets, labeled by their cycle range.
fn hist_line(buckets: &[u64; HIST_BUCKETS]) -> String {
    let parts: Vec<String> = (0..HIST_BUCKETS)
        .filter(|&i| buckets[i] > 0)
        .map(|i| format!("[{}]={}", bucket_label(i), buckets[i]))
        .collect();
    if parts.is_empty() {
        "(empty)".to_string()
    } else {
        parts.join("  ")
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let small = std::env::args().any(|a| a == "--small");
    if !TELEMETRY_ENABLED {
        println!(
            "note: built without the `telemetry` feature — the lifecycle \
             tracker is a zero-sized no-op, so latency/float/message columns \
             read zero; wall times and message counts are still reported"
        );
    }

    let (sum_n, churn_steps, tree_depth, digraph_n, cycles) = if small {
        (150i64, 400usize, 8usize, 2_000usize, 8u64)
    } else {
        (400, 2_000, 12, 20_000, 12)
    };

    let (gc_cell, gc_events) = run_gcdriver(sum_n);
    if TELEMETRY_ENABLED {
        std::fs::write("BENCH_gclat_events.jsonl", &gc_events)
            .unwrap_or_else(|e| panic!("writing BENCH_gclat_events.jsonl: {e}"));
    }
    let cells = [
        gc_cell,
        run_rc(churn_steps),
        run_stw(
            "stw_tree",
            binary_tree(tree_depth),
            (1u64 << (tree_depth + 1)) - 1,
            cycles,
            8,
        ),
        run_stw(
            "stw_digraph",
            random_digraph(digraph_n, 2.5, 7),
            digraph_n as u64,
            cycles,
            16,
        ),
        run_noncoop(
            "noncoop_tree",
            binary_tree(tree_depth),
            (1u64 << (tree_depth + 1)) - 1,
            cycles.min(8),
            16,
        ),
        run_noncoop(
            "noncoop_digraph",
            random_digraph(digraph_n, 2.5, 7),
            digraph_n as u64,
            cycles.min(8),
            16,
        ),
    ];

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for cell in &cells {
        let s = &cell.snap;
        let (_, mr) = s.msgs_per_reclaimed();
        rows.push(vec![
            cell.name.to_string(),
            s.cycles.to_string(),
            s.reclaimed.to_string(),
            f2(s.exact_fraction() * 100.0),
            f2(s.mean_latency()),
            s.latency_quantile(0.99).to_string(),
            s.float_now.to_string(),
            f2(mr),
            f2(s.efficiency()),
            f2(cell.wall_ms),
        ]);
        let mut rec = vec![
            ("benchmark", JsonValue::Str(format!("gclat_{}", cell.name))),
            ("vertices", JsonValue::Int(cell.vertices)),
            ("pes", JsonValue::Int(1)),
            ("messages", JsonValue::Int(cell.messages)),
            ("wall_us", JsonValue::Float(cell.wall_ms * 1e3)),
        ];
        if TELEMETRY_ENABLED {
            // The exactness contract: the census taps the very garbage
            // set each backend computes, so (nearly) every reclaim
            // carries a stamp. A miss means a backend freed vertices
            // its census never saw.
            if s.reclaimed > 0 {
                assert!(
                    s.exact_fraction() >= 0.95,
                    "{}: only {:.1}% of {} reclaimed vertices carry an exact \
                     latency stamp",
                    cell.name,
                    s.exact_fraction() * 100.0,
                    s.reclaimed
                );
            }
            rec.push(("reclaimed", JsonValue::Int(s.reclaimed)));
            rec.push(("exact_pct", JsonValue::Float(s.exact_fraction() * 100.0)));
            rec.push(("mean_latency_cycles", JsonValue::Float(s.mean_latency())));
            rec.push((
                "p99_latency_cycles",
                JsonValue::Int(s.latency_quantile(0.99)),
            ));
            rec.push(("float_now", JsonValue::Int(s.float_now)));
            rec.push(("msgs_per_reclaimed_mr", JsonValue::Float(mr)));
        }
        records.push(rec);
    }
    print_table(
        &format!(
            "T10: reclamation latency / float / message cost per backend \
             ({} workloads)",
            if small { "small" } else { "full" }
        ),
        &[
            "cell",
            "cycles",
            "reclaimed",
            "exact %",
            "mean lat",
            "p99 lat",
            "float now",
            "msgs/rec",
            "eff",
            "wall ms",
        ],
        &rows,
    );

    if TELEMETRY_ENABLED {
        println!("\nhistograms (reclamation-latency cycles / float-age cycles):");
        for cell in &cells {
            println!(
                "  {:<16} latency  {}",
                cell.name,
                hist_line(&cell.snap.latency)
            );
            println!("  {:<16} float    {}", "", hist_line(&cell.snap.float_age));
        }
        println!(
            "\nwrote BENCH_gclat_events.jsonl (gcdriver cell) — fold it back \
             with: dgr-trace lifecycle BENCH_gclat_events.jsonl"
        );
    }

    emit_json(json, "BENCH_gclat.json", &records);
}
