//! Experiment T2: decentralized marking versus reference counting on
//! cyclic garbage (the paper's Section 4 argument for marking).
//!
//! The same churn trace (allocate clusters, drop clusters; a fraction are
//! cycles) is replayed against both collectors. Marking reclaims exactly
//! the dropped vertices; reference counting reclaims only the acyclic
//! ones and leaks the rest, at a cost of one count message per reference
//! operation.

use dgr_baseline::refcount::replay_churn_rc;
use dgr_bench::{f2, print_table};
use dgr_core::{MarkMsg, MarkState};
use dgr_gc::{GcConfig, GcDriver};
use dgr_reduction::{System, SystemConfig, TemplateStore};
use dgr_workloads::churn::{churn_trace, ChurnReplayer};

fn marking_reclaim(trace: &[dgr_workloads::churn::ChurnOp]) -> (usize, u64) {
    let mut rep = ChurnReplayer::new(4096);
    let mut state = MarkState::new();
    let mut buf: Vec<MarkMsg> = Vec::new();
    for &op in trace {
        rep.apply(op, &mut state, &mut |m| buf.push(m));
    }
    let sys = System::new(rep.g, TemplateStore::new(), SystemConfig::default());
    let mut gc = GcDriver::new(sys, GcConfig::default());
    let report = gc.run_cycle();
    (report.reclaimed, report.mark_events)
}

fn main() {
    let mut rows = Vec::new();
    for &cyclic in &[0.0f64, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let trace = churn_trace(1_000, 6, cyclic, 0.6, 99);
        let (mark_reclaimed, mark_events) = marking_reclaim(&trace);
        let rc = replay_churn_rc(&trace);
        assert_eq!(
            mark_reclaimed,
            rc.reclaimed + rc.leaked,
            "marking reclaims what RC reclaims plus what it leaks"
        );
        rows.push(vec![
            format!("{:.0}%", cyclic * 100.0),
            mark_reclaimed.to_string(),
            mark_events.to_string(),
            rc.reclaimed.to_string(),
            rc.leaked.to_string(),
            f2(rc.leaked as f64 / mark_reclaimed.max(1) as f64 * 100.0) + "%",
            rc.count_messages.to_string(),
        ]);
    }
    print_table(
        "T2: churn (1000 clusters of 6, drop 60%) — marking vs reference counting",
        &[
            "cyclic",
            "mark reclaimed",
            "mark events",
            "rc reclaimed",
            "rc leaked",
            "leak share",
            "rc count msgs",
        ],
        &rows,
    );
    println!(
        "\nShape check: the leak share tracks the cyclic fraction (0% leaks \
         nothing, 100% leaks everything dropped), while marking's reclaim is \
         independent of cyclicity. Reference counting also pays a count \
         message per reference mutation regardless of collection.\n\
         The paper's second deficiency — RC cannot classify tasks or detect \
         deadlock — holds by construction: counts carry no reachability."
    );
}
