//! A computation graph shared between PE threads with per-vertex locks.

use std::sync::atomic::{AtomicU32, Ordering};

use dgr_graph::{Epochs, GraphError, GraphStore, MarkWords, NodeLabel, Slot, Vertex, VertexId};
use parking_lot::{Mutex, MutexGuard};

/// The computation graph in the form the threaded runtime uses: each vertex
/// behind its own `parking_lot` mutex, the free list behind one more.
///
/// This realizes the paper's atomicity assumption at exactly the granularity
/// Section 6 discusses: a task locks the vertices it manipulates, marking
/// tasks "never nest the locking of vertices", and multi-vertex mutator
/// primitives acquire their locks in vertex-id order (a total order, so the
/// mutators cannot deadlock against each other).
///
/// # Example
///
/// ```
/// use dgr_graph::{GraphStore, NodeLabel};
/// use dgr_sim::SharedGraph;
///
/// let mut store = GraphStore::with_capacity(2);
/// let a = store.alloc(NodeLabel::lit_int(1)).unwrap();
/// let shared = SharedGraph::from_store(store);
/// {
///     let guard = shared.lock(a);
///     assert_eq!(guard.label, NodeLabel::lit_int(1));
/// }
/// let back = shared.into_store();
/// assert_eq!(back.live_count(), 1);
/// ```
#[derive(Debug)]
pub struct SharedGraph {
    verts: Vec<Mutex<Vertex>>,
    free: Mutex<Vec<VertexId>>,
    root: Option<VertexId>,
    /// Current marking epoch per [`Slot`] (see [`Epochs`]). Bumped only
    /// between passes, while no marking thread is running, so Relaxed
    /// loads inside a pass always see the pass's epoch (the thread spawn
    /// that starts the pass synchronizes-with everything before it).
    mark_epochs: [AtomicU32; 2],
    /// Touch epoch, carried through for round-tripping (the threaded
    /// marking runtime never touches vertices).
    touch_epoch: u32,
    /// The hot R-slot marking state, as a dense struct-of-arrays atomic
    /// array (see [`MarkWords`]): marking passes transition colors with
    /// CAS instead of taking the vertex mutex, and the state streams
    /// through the cache instead of hopping between fat vertices. The
    /// array is authoritative while the graph is shared;
    /// [`SharedGraph::into_store`] writes it back into the vertex slots.
    marks: MarkWords,
}

impl SharedGraph {
    /// Converts a plain store into the shared form.
    pub fn from_store(store: GraphStore) -> Self {
        let (verts, free, root, epochs) = store.into_parts();
        let marks = MarkWords::from_slots(&verts, Slot::R);
        SharedGraph {
            verts: verts.into_iter().map(Mutex::new).collect(),
            free: Mutex::new(free),
            root,
            mark_epochs: [
                AtomicU32::new(epochs.mark[Slot::R.index()]),
                AtomicU32::new(epochs.mark[Slot::T.index()]),
            ],
            touch_epoch: epochs.touch,
            marks,
        }
    }

    /// Converts back into a plain store (consumes the shared graph; all
    /// locks must be free, which is guaranteed by ownership).
    pub fn into_store(self) -> GraphStore {
        let mut verts: Vec<Vertex> = self.verts.into_iter().map(|m| m.into_inner()).collect();
        self.marks.write_back(&mut verts, Slot::R);
        let [epoch_r, epoch_t] = self.mark_epochs;
        let epochs = Epochs {
            mark: [epoch_r.into_inner(), epoch_t.into_inner()],
            touch: self.touch_epoch,
        };
        GraphStore::from_parts(verts, self.free.into_inner(), self.root, epochs)
    }

    /// The dense atomic marking state of every vertex's R slot — the
    /// lock-free substrate marking passes run on (probe, claim,
    /// complete). Authoritative while the graph is shared.
    pub fn marks(&self) -> &MarkWords {
        &self.marks
    }

    /// The current marking epoch of `slot`. Relaxed: the epoch only
    /// changes between passes (never while marking threads run), so any
    /// load during a pass returns the pass's epoch.
    pub fn mark_epoch(&self, slot: Slot) -> u32 {
        self.mark_epochs[slot.index()].load(Ordering::Relaxed)
    }

    /// Begins a new marking cycle for `slot`: an O(1) epoch bump, after
    /// which every vertex's slot reads as freshly reset (stale mark
    /// words fail the epoch check in [`MarkWords::probe`]).
    ///
    /// Must only be called while no marking threads are running; the
    /// thread spawn that starts the next pass publishes the new epoch.
    pub fn begin_mark_cycle(&self, slot: Slot) {
        self.mark_epochs[slot.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// The distinguished root, if set.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Total number of vertex slots.
    pub fn capacity(&self) -> usize {
        self.verts.len()
    }

    /// Locks a single vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lock(&self, id: VertexId) -> MutexGuard<'_, Vertex> {
        self.verts[id.index()].lock()
    }

    /// Locks two distinct vertices in id order (deadlock-free for any set
    /// of callers using the same discipline). For `a == b` a single guard
    /// is returned.
    pub fn lock_pair(
        &self,
        a: VertexId,
        b: VertexId,
    ) -> (MutexGuard<'_, Vertex>, Option<MutexGuard<'_, Vertex>>) {
        if a == b {
            (self.lock(a), None)
        } else if a < b {
            let ga = self.lock(a);
            let gb = self.lock(b);
            (ga, Some(gb))
        } else {
            let gb = self.lock(b);
            let ga = self.lock(a);
            (ga, Some(gb))
        }
    }

    /// Allocates a vertex from the shared free list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfVertices`] if the free list is empty.
    pub fn alloc(&self, label: NodeLabel) -> Result<VertexId, GraphError> {
        let id = {
            let mut free = self.free.lock();
            free.pop().ok_or(GraphError::OutOfVertices {
                requested: 1,
                available: 0,
            })?
        };
        let mut v = self.lock(id);
        *v = Vertex::new(label);
        // A recycled slot must not inherit the previous occupant's
        // published marks (the epoch may still be current).
        self.marks.clear(id.index());
        Ok(id)
    }

    /// Returns a vertex to the shared free list, clearing it.
    pub fn free(&self, id: VertexId) {
        {
            let mut v = self.lock(id);
            v.clear_for_free();
            self.marks.clear(id.index());
        }
        self.free.lock().push(id);
    }

    /// Number of vertices currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_preserves_contents() {
        let mut store = GraphStore::with_capacity(4);
        let a = store.alloc(NodeLabel::lit_int(7)).unwrap();
        let b = store.alloc(NodeLabel::If).unwrap();
        store.connect(b, a);
        store.set_root(b);
        let shared = SharedGraph::from_store(store);
        assert_eq!(shared.root(), Some(b));
        let back = shared.into_store();
        assert_eq!(back.vertex(b).args(), &[a]);
        assert_eq!(back.free_count(), 2);
        assert!(back.check_consistency().is_ok());
    }

    #[test]
    fn lock_pair_handles_equal_ids() {
        let store = GraphStore::with_capacity(2);
        let shared = SharedGraph::from_store(store);
        let (g, other) = shared.lock_pair(VertexId::new(0), VertexId::new(0));
        assert!(other.is_none());
        drop(g);
        let (_a, b) = shared.lock_pair(VertexId::new(1), VertexId::new(0));
        assert!(b.is_some());
    }

    #[test]
    fn alloc_and_free_are_thread_safe() {
        let store = GraphStore::with_capacity(64);
        let shared = Arc::new(SharedGraph::from_store(store));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..16 {
                        if let Ok(id) = g.alloc(NodeLabel::Hole) {
                            mine.push(id);
                        }
                    }
                    for id in mine {
                        g.free(id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.free_count(), 64);
        let back = Arc::try_unwrap(shared).unwrap().into_store();
        assert!(back.check_consistency().is_ok());
    }

    #[test]
    fn concurrent_mutation_with_ordered_locks() {
        let mut store = GraphStore::with_capacity(2);
        let a = store.alloc(NodeLabel::If).unwrap();
        let b = store.alloc(NodeLabel::lit_int(0)).unwrap();
        let shared = Arc::new(SharedGraph::from_store(store));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let g = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // Half the threads lock (a, b), half (b, a); ordered
                    // acquisition must not deadlock.
                    let (x, y) = if i % 2 == 0 { (a, b) } else { (b, a) };
                    for _ in 0..100 {
                        let (mut ga, gb) = g.lock_pair(x, y);
                        ga.push_arg(y);
                        drop(gb);
                        ga.remove_arg(y);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let back = Arc::try_unwrap(shared).unwrap().into_store();
        assert!(back.vertex(a).args().is_empty());
        assert!(back.vertex(b).args().is_empty());
    }
}
