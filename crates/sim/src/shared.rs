//! A computation graph shared between PE threads with per-vertex locks.

use dgr_graph::{GraphError, GraphStore, NodeLabel, Vertex, VertexId};
use parking_lot::{Mutex, MutexGuard};

/// The computation graph in the form the threaded runtime uses: each vertex
/// behind its own `parking_lot` mutex, the free list behind one more.
///
/// This realizes the paper's atomicity assumption at exactly the granularity
/// Section 6 discusses: a task locks the vertices it manipulates, marking
/// tasks "never nest the locking of vertices", and multi-vertex mutator
/// primitives acquire their locks in vertex-id order (a total order, so the
/// mutators cannot deadlock against each other).
///
/// # Example
///
/// ```
/// use dgr_graph::{GraphStore, NodeLabel};
/// use dgr_sim::SharedGraph;
///
/// let mut store = GraphStore::with_capacity(2);
/// let a = store.alloc(NodeLabel::lit_int(1)).unwrap();
/// let shared = SharedGraph::from_store(store);
/// {
///     let guard = shared.lock(a);
///     assert_eq!(guard.label, NodeLabel::lit_int(1));
/// }
/// let back = shared.into_store();
/// assert_eq!(back.live_count(), 1);
/// ```
#[derive(Debug)]
pub struct SharedGraph {
    verts: Vec<Mutex<Vertex>>,
    free: Mutex<Vec<VertexId>>,
    root: Option<VertexId>,
}

impl SharedGraph {
    /// Converts a plain store into the shared form.
    pub fn from_store(store: GraphStore) -> Self {
        let (verts, free, root) = store.into_parts();
        SharedGraph {
            verts: verts.into_iter().map(Mutex::new).collect(),
            free: Mutex::new(free),
            root,
        }
    }

    /// Converts back into a plain store (consumes the shared graph; all
    /// locks must be free, which is guaranteed by ownership).
    pub fn into_store(self) -> GraphStore {
        let verts: Vec<Vertex> = self.verts.into_iter().map(|m| m.into_inner()).collect();
        GraphStore::from_parts(verts, self.free.into_inner(), self.root)
    }

    /// The distinguished root, if set.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Total number of vertex slots.
    pub fn capacity(&self) -> usize {
        self.verts.len()
    }

    /// Locks a single vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lock(&self, id: VertexId) -> MutexGuard<'_, Vertex> {
        self.verts[id.index()].lock()
    }

    /// Locks two distinct vertices in id order (deadlock-free for any set
    /// of callers using the same discipline). For `a == b` a single guard
    /// is returned.
    pub fn lock_pair(
        &self,
        a: VertexId,
        b: VertexId,
    ) -> (MutexGuard<'_, Vertex>, Option<MutexGuard<'_, Vertex>>) {
        if a == b {
            (self.lock(a), None)
        } else if a < b {
            let ga = self.lock(a);
            let gb = self.lock(b);
            (ga, Some(gb))
        } else {
            let gb = self.lock(b);
            let ga = self.lock(a);
            (ga, Some(gb))
        }
    }

    /// Allocates a vertex from the shared free list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfVertices`] if the free list is empty.
    pub fn alloc(&self, label: NodeLabel) -> Result<VertexId, GraphError> {
        let id = {
            let mut free = self.free.lock();
            free.pop().ok_or(GraphError::OutOfVertices {
                requested: 1,
                available: 0,
            })?
        };
        let mut v = self.lock(id);
        *v = Vertex::new(label);
        Ok(id)
    }

    /// Returns a vertex to the shared free list, clearing it.
    pub fn free(&self, id: VertexId) {
        {
            let mut v = self.lock(id);
            v.clear_for_free();
        }
        self.free.lock().push(id);
    }

    /// Number of vertices currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_preserves_contents() {
        let mut store = GraphStore::with_capacity(4);
        let a = store.alloc(NodeLabel::lit_int(7)).unwrap();
        let b = store.alloc(NodeLabel::If).unwrap();
        store.connect(b, a);
        store.set_root(b);
        let shared = SharedGraph::from_store(store);
        assert_eq!(shared.root(), Some(b));
        let back = shared.into_store();
        assert_eq!(back.vertex(b).args(), &[a]);
        assert_eq!(back.free_count(), 2);
        assert!(back.check_consistency().is_ok());
    }

    #[test]
    fn lock_pair_handles_equal_ids() {
        let store = GraphStore::with_capacity(2);
        let shared = SharedGraph::from_store(store);
        let (g, other) = shared.lock_pair(VertexId::new(0), VertexId::new(0));
        assert!(other.is_none());
        drop(g);
        let (_a, b) = shared.lock_pair(VertexId::new(1), VertexId::new(0));
        assert!(b.is_some());
    }

    #[test]
    fn alloc_and_free_are_thread_safe() {
        let store = GraphStore::with_capacity(64);
        let shared = Arc::new(SharedGraph::from_store(store));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..16 {
                        if let Ok(id) = g.alloc(NodeLabel::Hole) {
                            mine.push(id);
                        }
                    }
                    for id in mine {
                        g.free(id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.free_count(), 64);
        let back = Arc::try_unwrap(shared).unwrap().into_store();
        assert!(back.check_consistency().is_ok());
    }

    #[test]
    fn concurrent_mutation_with_ordered_locks() {
        let mut store = GraphStore::with_capacity(2);
        let a = store.alloc(NodeLabel::If).unwrap();
        let b = store.alloc(NodeLabel::lit_int(0)).unwrap();
        let shared = Arc::new(SharedGraph::from_store(store));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let g = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // Half the threads lock (a, b), half (b, a); ordered
                    // acquisition must not deadlock.
                    let (x, y) = if i % 2 == 0 { (a, b) } else { (b, a) };
                    for _ in 0..100 {
                        let (mut ga, gb) = g.lock_pair(x, y);
                        ga.push_arg(y);
                        drop(gb);
                        ga.remove_arg(y);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let back = Arc::try_unwrap(shared).unwrap().into_store();
        assert!(back.vertex(a).args().is_empty());
        assert!(back.vertex(b).args().is_empty());
    }
}
