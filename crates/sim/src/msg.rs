//! Message envelopes and scheduling lanes.

use dgr_graph::{PeId, Priority};
use serde::{Deserialize, Serialize};

/// The scheduling lane a message travels in.
///
/// The paper distinguishes tasks of the reduction process (prioritized 3/2/1
/// by `M_R`'s classification) from tasks of the marking process; mutator
/// notifications get their own lane so a scheduling policy can model the
/// "simple busy-waiting protocol" of Section 6 by favoring them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lane {
    /// Graph-mutation notifications (highest urgency).
    Mutator,
    /// Mark and return tasks of `M_R` / `M_T`.
    Marking,
    /// Reduction tasks, prioritized by the destination vertex's class.
    Reduction(Priority),
}

impl Lane {
    /// Dense index used by mailbox arrays: mutator 0, marking 1, reduction
    /// vital/eager/reserve 2/3/4.
    pub fn index(self) -> usize {
        match self {
            Lane::Mutator => 0,
            Lane::Marking => 1,
            Lane::Reduction(Priority::Vital) => 2,
            Lane::Reduction(Priority::Eager) => 3,
            Lane::Reduction(Priority::Reserve) => 4,
        }
    }

    /// All lanes in scheduling-preference order.
    pub const ALL: [Lane; 5] = [
        Lane::Mutator,
        Lane::Marking,
        Lane::Reduction(Priority::Vital),
        Lane::Reduction(Priority::Eager),
        Lane::Reduction(Priority::Reserve),
    ];

    /// Returns `true` for the reduction lanes.
    pub fn is_reduction(self) -> bool {
        matches!(self, Lane::Reduction(_))
    }
}

/// A message addressed to a processing element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// The PE whose mailbox receives the message.
    pub dst: PeId,
    /// The scheduling lane.
    pub lane: Lane,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(dst: PeId, lane: Lane, msg: M) -> Self {
        Envelope { dst, lane, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_indices_are_dense_and_ordered() {
        for (i, lane) in Lane::ALL.iter().enumerate() {
            assert_eq!(lane.index(), i);
        }
    }

    #[test]
    fn reduction_lanes() {
        assert!(Lane::Reduction(Priority::Vital).is_reduction());
        assert!(!Lane::Marking.is_reduction());
        assert!(!Lane::Mutator.is_reduction());
    }

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(PeId::new(1), Lane::Marking, 42u32);
        assert_eq!(e.dst, PeId::new(1));
        assert_eq!(e.lane, Lane::Marking);
        assert_eq!(e.msg, 42);
    }
}
