//! The deterministic event simulator.

use std::collections::VecDeque;

use dgr_graph::PeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::msg::{Envelope, Lane};
use crate::stats::SimStats;

/// How the simulator picks the next task to execute.
///
/// All policies are deterministic given the seed passed to
/// [`DetSim::new`]. Varying the seed of [`SchedPolicy::Random`] explores
/// different interleavings of marking, mutation and reduction — the space
/// the paper's informal proofs quantify over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// Globally oldest message first (breadth-first propagation).
    Fifo,
    /// Globally newest message first (depth-first propagation).
    Lifo,
    /// Rotate among PEs that have work; oldest message within the PE.
    RoundRobin,
    /// Uniformly random choice among pending messages, except that marking
    /// messages are chosen with probability `marking_bias` when both
    /// marking and non-marking work is pending (`0.5` = unbiased).
    Random {
        /// Probability of preferring the marking lane when both kinds of
        /// work exist. `0.0` starves marking; `1.0` runs marking eagerly.
        marking_bias: f64,
    },
    /// Highest-preference lane first ([`Lane::ALL`] order), rotating among
    /// PEs within a lane. Models a scheduler that favors mutator
    /// notifications, then marking, then vital reduction work.
    PriorityFirst,
}

/// A deterministic multi-PE message-passing simulator.
///
/// Each PE has one mailbox per [`Lane`]; [`DetSim::send`] enqueues,
/// [`DetSim::next_event`] dequeues according to the policy. Executing the
/// returned message is the caller's job — the simulator only owns delivery
/// order, so the same simulator drives marking, reduction, and combined
/// workloads.
///
/// A dense ordered set of small indexes (bit words + popcount) for the
/// occupancy indexes below: O(1) insert/remove with no allocation, and
/// first-at-or-after / select-nth by word scanning (one or two words for
/// realistic PE counts).
#[derive(Debug, Clone, Default)]
struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    fn with_capacity(n: usize) -> Self {
        IdSet {
            words: vec![0; n.div_ceil(64).max(1)],
            len: 0,
        }
    }

    fn insert(&mut self, i: usize) -> bool {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m == 0 {
            self.words[w] |= m;
            self.len += 1;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, i: usize) {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m != 0 {
            self.words[w] &= !m;
            self.len -= 1;
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Smallest member `>= from`, or `None`.
    fn first_at_or_after(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.words.len() {
            return None;
        }
        let mut word = self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    fn first(&self) -> Option<usize> {
        self.first_at_or_after(0)
    }

    /// The `k`-th smallest member (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len`.
    fn nth(&self, mut k: usize) -> usize {
        for (w, &word) in self.words.iter().enumerate() {
            let c = word.count_ones() as usize;
            if k < c {
                let mut word = word;
                for _ in 0..k {
                    word &= word - 1; // drop lowest set bit
                }
                return w * 64 + word.trailing_zeros() as usize;
            }
            k -= c;
        }
        unreachable!("IdSet::nth out of range")
    }
}

/// Picks are served from incremental indexes maintained on every
/// send/deliver, so `next_event` costs amortized O(1) instead of a scan
/// over every PE × lane pair. The indexes are pure caches over the
/// mailboxes: every policy delivers in exactly the order the original
/// scanning implementation did (the `sched_differential` test pins this
/// against a reference implementation).
#[derive(Debug)]
pub struct DetSim<M> {
    pes: Vec<[VecDeque<(u64, M)>; 5]>,
    policy: SchedPolicy,
    rng: StdRng,
    seq: u64,
    pending: usize,
    rr_cursor: usize,
    stats: SimStats,
    /// Per-lane mirror of every send's `(seq, pe)` with **lazy deletion**.
    /// Sequence numbers are globally monotone, so each mirror is sorted by
    /// construction: its first entry still matching the front of its
    /// mailbox queue is the lane's globally oldest pending message, and
    /// its last entry matching a queue back is the newest. Deliveries
    /// leave stale entries behind; peeks discard them from the ends.
    mirror: [VecDeque<(u64, u16)>; 5],
    /// Per-lane set of PEs whose mailbox for that lane is non-empty.
    lane_pes: [IdSet; 5],
    /// Non-empty `(pe, lane index)` pairs (as `pe * 5 + lane`, which is
    /// `(pe, lane)` lexicographic) outside the marking lane — the order
    /// the original random-policy scan produced its candidate pool in.
    other_pool: IdSet,
    /// Pending-message count per PE (round-robin occupancy).
    pe_pending: Vec<u32>,
    /// PEs with at least one pending message, ordered.
    nonempty_pes: IdSet,
}

impl<M> DetSim<M> {
    /// Creates a simulator with `num_pes` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16, policy: SchedPolicy, seed: u64) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        DetSim {
            pes: (0..num_pes).map(|_| Default::default()).collect(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            pending: 0,
            rr_cursor: 0,
            stats: SimStats::default(),
            mirror: Default::default(),
            lane_pes: std::array::from_fn(|_| IdSet::with_capacity(num_pes as usize)),
            other_pool: IdSet::with_capacity(num_pes as usize * 5),
            pe_pending: vec![0; num_pes as usize],
            nonempty_pes: IdSet::with_capacity(num_pes as usize),
        }
    }

    /// Records `seq` entering the mailbox `(pe, lane)` in the indexes.
    fn index_insert(&mut self, pe: u16, lane: Lane, seq: u64) {
        let l = lane.index();
        self.mirror[l].push_back((seq, pe));
        if self.pes[pe as usize][l].len() == 1
            && self.lane_pes[l].insert(pe as usize)
            && lane != Lane::Marking
        {
            self.other_pool.insert(pe as usize * 5 + l);
        }
        if self.pe_pending[pe as usize] == 0 {
            self.nonempty_pes.insert(pe as usize);
        }
        self.pe_pending[pe as usize] += 1;
    }

    /// Records `seq` leaving the mailbox `(pe, lane)`. The mirror entry
    /// for `seq` stays behind as stale and is discarded by a later lazy
    /// peek.
    fn index_remove(&mut self, pe: u16, lane: Lane, _seq: u64) {
        let l = lane.index();
        if self.pes[pe as usize][l].is_empty() {
            self.lane_pes[l].remove(pe as usize);
            if lane != Lane::Marking {
                self.other_pool.remove(pe as usize * 5 + l);
            }
        }
        self.pe_pending[pe as usize] -= 1;
        if self.pe_pending[pe as usize] == 0 {
            self.nonempty_pes.remove(pe as usize);
        }
    }

    /// The lane's oldest pending `(seq, pe)`, discarding stale mirror
    /// entries from the front. A front entry is valid iff it matches the
    /// front of its mailbox queue: sequence numbers are unique and the
    /// mirror is seq-sorted, so when `seq` is the mirror minimum every
    /// smaller (hence earlier-queued) message has been delivered, and a
    /// still-pending `seq` must sit at its queue's front.
    fn lane_oldest(
        pes: &[[VecDeque<(u64, M)>; 5]],
        mirror: &mut VecDeque<(u64, u16)>,
        l: usize,
    ) -> Option<(u64, u16)> {
        while let Some(&(seq, pe)) = mirror.front() {
            if pes[pe as usize][l].front().map(|&(s, _)| s) == Some(seq) {
                return Some((seq, pe));
            }
            mirror.pop_front();
        }
        None
    }

    /// Mirror of [`DetSim::lane_oldest`] for the newest entry: discards
    /// stale entries from the back, validating against queue backs.
    fn lane_newest(
        pes: &[[VecDeque<(u64, M)>; 5]],
        mirror: &mut VecDeque<(u64, u16)>,
        l: usize,
    ) -> Option<(u64, u16)> {
        while let Some(&(seq, pe)) = mirror.back() {
            if pes[pe as usize][l].back().map(|&(s, _)| s) == Some(seq) {
                return Some((seq, pe));
            }
            mirror.pop_back();
        }
        None
    }

    /// Reconstructs every index from the mailboxes, after bulk surgery
    /// (`expunge` / `relane`) rewrote queues wholesale.
    fn rebuild_index(&mut self) {
        self.mirror = Default::default();
        for s in self.lane_pes.iter_mut() {
            s.clear();
        }
        self.other_pool.clear();
        self.nonempty_pes.clear();
        for c in self.pe_pending.iter_mut() {
            *c = 0;
        }
        for (p, lanes) in self.pes.iter().enumerate() {
            let pe = p as u16;
            for lane in Lane::ALL {
                let l = lane.index();
                let q = &lanes[l];
                for &(s, _) in q {
                    self.mirror[l].push_back((s, pe));
                }
                if !q.is_empty() {
                    self.lane_pes[l].insert(p);
                    if lane != Lane::Marking {
                        self.other_pool.insert(p * 5 + l);
                    }
                    self.pe_pending[p] += q.len() as u32;
                }
            }
            if self.pe_pending[p] > 0 {
                self.nonempty_pes.insert(p);
            }
        }
        // Mirrors must be seq-sorted; queue-concatenation order is not.
        for m in self.mirror.iter_mut() {
            m.make_contiguous().sort_unstable();
        }
        let mut depths = [0usize; 5];
        for lanes in &self.pes {
            for (l, q) in lanes.iter().enumerate() {
                depths[l] += q.len();
            }
        }
        self.stats.set_lane_depths(depths);
    }

    /// Number of processing elements.
    pub fn num_pes(&self) -> u16 {
        self.pes.len() as u16
    }

    /// Enqueues a message, returning its globally unique sequence number.
    ///
    /// The sequence number doubles as a causal handle: tagged dequeues
    /// ([`DetSim::next_event_tagged`]) return it with the message, so a
    /// caller can pair every delivery with its send — the flow-id scheme
    /// the tracing layer builds happens-before edges from — without the
    /// simulator carrying any extra per-message state.
    ///
    /// # Panics
    ///
    /// Panics if the destination PE does not exist.
    pub fn send(&mut self, env: Envelope<M>) -> u64 {
        let seq = self.seq;
        let q = &mut self.pes[env.dst.index()][env.lane.index()];
        q.push_back((seq, env.msg));
        self.seq += 1;
        self.pending += 1;
        self.index_insert(env.dst.raw(), env.lane, seq);
        self.stats.record_send(env.lane);
        self.stats.observe_depth(self.pending);
        seq
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Returns `true` if no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Restarts per-lane high-water tracking from the current backlogs —
    /// called at marking-cycle boundaries so each cycle's report carries
    /// its own backlog peak (see [`SimStats::lane_high_water`]).
    pub fn reset_lane_high_water(&mut self) {
        self.stats.reset_lane_high_water();
    }

    /// Picks, removes and returns the next message per the policy, or
    /// `None` when the system is quiescent.
    pub fn next_event(&mut self) -> Option<(PeId, Lane, M)> {
        self.next_event_tagged()
            .map(|(pe, lane, _, m)| (pe, lane, m))
    }

    /// Like [`DetSim::next_event`], but also returns the sequence number
    /// [`DetSim::send`] assigned the message — the handle tracing uses to
    /// match this delivery to its send.
    pub fn next_event_tagged(&mut self) -> Option<(PeId, Lane, u64, M)> {
        if self.pending == 0 {
            return None;
        }
        let (pe, lane) = match self.policy {
            SchedPolicy::Fifo => self.pick_extreme(false)?,
            SchedPolicy::Lifo => self.pick_extreme(true)?,
            SchedPolicy::RoundRobin => self.pick_round_robin()?,
            SchedPolicy::Random { marking_bias } => self.pick_random(marking_bias)?,
            SchedPolicy::PriorityFirst => self.pick_priority_first()?,
        };
        let l = lane.index();
        let deque = &mut self.pes[pe.index()][l];
        let (seq, msg) = if matches!(self.policy, SchedPolicy::Lifo) {
            deque.pop_back()?
        } else {
            deque.pop_front()?
        };
        self.pending -= 1;
        self.index_remove(pe.raw(), lane, seq);
        self.stats.record_deliver(pe.raw(), lane);
        Some((pe, lane, seq, msg))
    }

    /// Globally oldest (`newest = false`) or newest pending message. Queues
    /// are seq-sorted, so the lane heaps' extreme valid entries are exactly
    /// the queue fronts/backs the original full scan compared.
    fn pick_extreme(&mut self, newest: bool) -> Option<(PeId, Lane)> {
        let mut best: Option<(u64, PeId, Lane)> = None;
        for lane in Lane::ALL {
            let l = lane.index();
            let entry = if newest {
                Self::lane_newest(&self.pes, &mut self.mirror[l], l)
            } else {
                Self::lane_oldest(&self.pes, &mut self.mirror[l], l)
            };
            if let Some((s, pe)) = entry {
                let better = match best {
                    None => true,
                    Some((bs, _, _)) => {
                        if newest {
                            s > bs
                        } else {
                            s < bs
                        }
                    }
                };
                if better {
                    best = Some((s, PeId::new(pe), lane));
                }
            }
        }
        best.map(|(_, p, l)| (p, l))
    }

    /// First PE with work at or after the cursor (wrapping), then the
    /// oldest message across that PE's five lanes.
    fn pick_round_robin(&mut self) -> Option<(PeId, Lane)> {
        let p = self
            .nonempty_pes
            .first_at_or_after(self.rr_cursor)
            .or_else(|| self.nonempty_pes.first())?;
        let mut best: Option<(u64, Lane)> = None;
        for lane in Lane::ALL {
            if let Some(&(s, _)) = self.pes[p][lane.index()].front() {
                if best.is_none_or(|(bs, _)| s < bs) {
                    best = Some((s, lane));
                }
            }
        }
        let (_, lane) = best?;
        self.rr_cursor = (p + 1) % self.pes.len();
        Some((PeId::new(p as u16), lane))
    }

    /// Biased coin between the marking pool and everything else, then a
    /// uniform pick within the chosen pool. The pools iterate in the same
    /// `(pe, lane)` order the original scan materialized them in, and the
    /// RNG is consulted in the same cases, so the stream of draws — and
    /// therefore the delivery order — is unchanged.
    fn pick_random(&mut self, marking_bias: f64) -> Option<(PeId, Lane)> {
        let marking = &self.lane_pes[Lane::Marking.index()];
        let use_marking = if marking.is_empty() {
            false
        } else if self.other_pool.is_empty() {
            true
        } else {
            self.rng.gen_bool(marking_bias.clamp(0.0, 1.0))
        };
        if use_marking {
            let i = self.rng.gen_range(0..marking.len());
            let pe = marking.nth(i);
            Some((PeId::new(pe as u16), Lane::Marking))
        } else {
            if self.other_pool.is_empty() {
                return None;
            }
            let i = self.rng.gen_range(0..self.other_pool.len());
            let idx = self.other_pool.nth(i);
            Some((PeId::new((idx / 5) as u16), Lane::ALL[idx % 5]))
        }
    }

    /// Highest-preference non-empty lane, rotating among its PEs.
    fn pick_priority_first(&mut self) -> Option<(PeId, Lane)> {
        for lane in Lane::ALL {
            let pes = &self.lane_pes[lane.index()];
            if let Some(p) = pes
                .first_at_or_after(self.rr_cursor)
                .or_else(|| pes.first())
            {
                self.rr_cursor = (p + 1) % self.pes.len();
                return Some((PeId::new(p as u16), lane));
            }
        }
        None
    }

    /// Picks, removes and returns the oldest pending message in the given
    /// lane (any PE), regardless of policy — used to give one lane
    /// priority service (e.g. marking tasks during a collection phase,
    /// per the paper's Section 6 remark).
    pub fn next_event_in_lane(&mut self, lane: Lane) -> Option<(PeId, Lane, M)> {
        self.next_event_in_lane_tagged(lane)
            .map(|(pe, lane, _, m)| (pe, lane, m))
    }

    /// Like [`DetSim::next_event_in_lane`], but also returns the
    /// message's sequence number (see [`DetSim::next_event_tagged`]).
    pub fn next_event_in_lane_tagged(&mut self, lane: Lane) -> Option<(PeId, Lane, u64, M)> {
        let l = lane.index();
        let (_, pe) = Self::lane_oldest(&self.pes, &mut self.mirror[l], l)?;
        let (seq, msg) = self.pes[pe as usize][lane.index()].pop_front()?;
        self.pending -= 1;
        self.index_remove(pe, lane, seq);
        self.stats.record_deliver(pe, lane);
        Some((PeId::new(pe), lane, seq, msg))
    }

    /// Iterates over all pending messages (for `taskroot` construction and
    /// invariant checks).
    pub fn iter_pending(&self) -> impl Iterator<Item = (PeId, Lane, &M)> {
        self.pes.iter().enumerate().flat_map(|(p, lanes)| {
            Lane::ALL.into_iter().flat_map(move |lane| {
                lanes[lane.index()]
                    .iter()
                    .map(move |(_, m)| (PeId::new(p as u16), lane, m))
            })
        })
    }

    /// Removes pending messages for which `keep` returns `false` (the
    /// restructuring phase's *expunging* of irrelevant tasks). Returns how
    /// many messages were dropped.
    pub fn expunge<F>(&mut self, mut keep: F) -> usize
    where
        F: FnMut(PeId, Lane, &M) -> bool,
    {
        let mut dropped = 0;
        for (p, lanes) in self.pes.iter_mut().enumerate() {
            for lane in Lane::ALL {
                let q = &mut lanes[lane.index()];
                let before = q.len();
                q.retain(|(_, m)| keep(PeId::new(p as u16), lane, m));
                dropped += before - q.len();
            }
        }
        self.pending -= dropped;
        self.rebuild_index();
        dropped
    }

    /// Re-lanes pending messages (the restructuring phase's dynamic
    /// re-prioritization): for every pending message, `relane` may return a
    /// new lane. Message order (by sequence number) is preserved within
    /// each new lane. Returns how many messages moved.
    pub fn relane<F>(&mut self, mut relane: F) -> usize
    where
        F: FnMut(PeId, Lane, &M) -> Lane,
    {
        let mut moved = 0;
        for (p, lanes) in self.pes.iter_mut().enumerate() {
            let mut staged: Vec<(u64, Lane, M)> = Vec::new();
            for lane in Lane::ALL {
                let q = std::mem::take(&mut lanes[lane.index()]);
                for (s, m) in q {
                    let new = relane(PeId::new(p as u16), lane, &m);
                    if new != lane {
                        moved += 1;
                    }
                    staged.push((s, new, m));
                }
            }
            staged.sort_by_key(|&(s, _, _)| s);
            for (s, lane, m) in staged {
                lanes[lane.index()].push_back((s, m));
            }
        }
        self.rebuild_index();
        moved
    }

    /// Number of delivery events executed so far (virtual time).
    pub fn time(&self) -> u64 {
        self.stats.delivered_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::Priority;

    fn env(pe: u16, lane: Lane, msg: u32) -> Envelope<u32> {
        Envelope::new(PeId::new(pe), lane, msg)
    }

    #[test]
    fn fifo_is_global_send_order() {
        let mut sim = DetSim::new(3, SchedPolicy::Fifo, 0);
        sim.send(env(2, Lane::Marking, 1));
        sim.send(env(0, Lane::Reduction(Priority::Vital), 2));
        sim.send(env(1, Lane::Mutator, 3));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn lifo_is_reverse_send_order() {
        let mut sim = DetSim::new(2, SchedPolicy::Lifo, 0);
        for i in 0..4 {
            sim.send(env(i % 2, Lane::Marking, i as u32));
        }
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn round_robin_rotates_pes() {
        let mut sim = DetSim::new(2, SchedPolicy::RoundRobin, 0);
        sim.send(env(0, Lane::Marking, 10));
        sim.send(env(0, Lane::Marking, 11));
        sim.send(env(1, Lane::Marking, 20));
        let got: Vec<(u16, u32)> =
            std::iter::from_fn(|| sim.next_event().map(|(p, _, m)| (p.raw(), m))).collect();
        assert_eq!(got, vec![(0, 10), (1, 20), (0, 11)]);
    }

    #[test]
    fn priority_first_prefers_mutator_then_marking() {
        let mut sim = DetSim::new(1, SchedPolicy::PriorityFirst, 0);
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 1));
        sim.send(env(0, Lane::Marking, 2));
        sim.send(env(0, Lane::Mutator, 3));
        sim.send(env(0, Lane::Reduction(Priority::Vital), 4));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![3, 2, 4, 1]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
            for i in 0..32 {
                sim.send(env(
                    (i % 4) as u16,
                    if i % 3 == 0 {
                        Lane::Marking
                    } else {
                        Lane::Reduction(Priority::Vital)
                    },
                    i as u32,
                ));
            }
            std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds explore differently");
    }

    #[test]
    fn random_marking_bias_extremes() {
        // bias 1.0: marking always drains before other lanes.
        let mut sim = DetSim::new(1, SchedPolicy::Random { marking_bias: 1.0 }, 3);
        sim.send(env(0, Lane::Reduction(Priority::Vital), 1));
        sim.send(env(0, Lane::Marking, 2));
        sim.send(env(0, Lane::Marking, 3));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(&got[..2], &[2, 3]);
    }

    #[test]
    fn expunge_drops_matching() {
        let mut sim = DetSim::new(2, SchedPolicy::Fifo, 0);
        for i in 0..6 {
            sim.send(env(i % 2, Lane::Reduction(Priority::Vital), i as u32));
        }
        let dropped = sim.expunge(|_, _, &m| m % 2 == 0);
        assert_eq!(dropped, 3);
        assert_eq!(sim.len(), 3);
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn relane_moves_messages_preserving_order() {
        let mut sim = DetSim::new(1, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 1));
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 2));
        let moved = sim.relane(|_, _, _| Lane::Reduction(Priority::Vital));
        assert_eq!(moved, 2);
        let pending: Vec<(Lane, u32)> = sim.iter_pending().map(|(_, l, &m)| (l, m)).collect();
        assert_eq!(
            pending,
            vec![
                (Lane::Reduction(Priority::Vital), 1),
                (Lane::Reduction(Priority::Vital), 2)
            ]
        );
    }

    #[test]
    fn iter_pending_sees_everything() {
        let mut sim = DetSim::new(3, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Marking, 1));
        sim.send(env(2, Lane::Mutator, 2));
        let all: Vec<u32> = sim.iter_pending().map(|(_, _, &m)| m).collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&1) && all.contains(&2));
    }

    #[test]
    fn tagged_dequeues_return_the_send_seq() {
        let mut sim = DetSim::new(2, SchedPolicy::Fifo, 0);
        let s0 = sim.send(env(0, Lane::Marking, 10));
        let s1 = sim.send(env(1, Lane::Mutator, 11));
        let s2 = sim.send(env(0, Lane::Marking, 12));
        assert_eq!((s0, s1, s2), (0, 1, 2), "seqs are assigned in send order");
        let (_, _, seq, m) = sim.next_event_tagged().unwrap();
        assert_eq!((seq, m), (s0, 10));
        let (_, _, seq, m) = sim.next_event_in_lane_tagged(Lane::Marking).unwrap();
        assert_eq!((seq, m), (s2, 12), "lane dequeue skips other lanes");
        let (_, _, seq, m) = sim.next_event_tagged().unwrap();
        assert_eq!((seq, m), (s1, 11));
        assert!(sim.next_event_tagged().is_none());
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let mut sim = DetSim::new(1, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Marking, 1));
        sim.send(env(0, Lane::Mutator, 2));
        sim.next_event();
        assert_eq!(sim.stats().sent_total(), 2);
        assert_eq!(sim.stats().delivered_total(), 1);
        assert_eq!(sim.time(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _: DetSim<u32> = DetSim::new(0, SchedPolicy::Fifo, 0);
    }
}
