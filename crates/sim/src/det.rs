//! The deterministic event simulator.

use std::collections::VecDeque;

use dgr_graph::PeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::msg::{Envelope, Lane};
use crate::stats::SimStats;

/// How the simulator picks the next task to execute.
///
/// All policies are deterministic given the seed passed to
/// [`DetSim::new`]. Varying the seed of [`SchedPolicy::Random`] explores
/// different interleavings of marking, mutation and reduction — the space
/// the paper's informal proofs quantify over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// Globally oldest message first (breadth-first propagation).
    Fifo,
    /// Globally newest message first (depth-first propagation).
    Lifo,
    /// Rotate among PEs that have work; oldest message within the PE.
    RoundRobin,
    /// Uniformly random choice among pending messages, except that marking
    /// messages are chosen with probability `marking_bias` when both
    /// marking and non-marking work is pending (`0.5` = unbiased).
    Random {
        /// Probability of preferring the marking lane when both kinds of
        /// work exist. `0.0` starves marking; `1.0` runs marking eagerly.
        marking_bias: f64,
    },
    /// Highest-preference lane first ([`Lane::ALL`] order), rotating among
    /// PEs within a lane. Models a scheduler that favors mutator
    /// notifications, then marking, then vital reduction work.
    PriorityFirst,
}

/// A deterministic multi-PE message-passing simulator.
///
/// Each PE has one mailbox per [`Lane`]; [`DetSim::send`] enqueues,
/// [`DetSim::next_event`] dequeues according to the policy. Executing the
/// returned message is the caller's job — the simulator only owns delivery
/// order, so the same simulator drives marking, reduction, and combined
/// workloads.
#[derive(Debug)]
pub struct DetSim<M> {
    pes: Vec<[VecDeque<(u64, M)>; 5]>,
    policy: SchedPolicy,
    rng: StdRng,
    seq: u64,
    pending: usize,
    rr_cursor: usize,
    stats: SimStats,
}

impl<M> DetSim<M> {
    /// Creates a simulator with `num_pes` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16, policy: SchedPolicy, seed: u64) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        DetSim {
            pes: (0..num_pes).map(|_| Default::default()).collect(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            pending: 0,
            rr_cursor: 0,
            stats: SimStats::default(),
        }
    }

    /// Number of processing elements.
    pub fn num_pes(&self) -> u16 {
        self.pes.len() as u16
    }

    /// Enqueues a message.
    ///
    /// # Panics
    ///
    /// Panics if the destination PE does not exist.
    pub fn send(&mut self, env: Envelope<M>) {
        let q = &mut self.pes[env.dst.index()][env.lane.index()];
        q.push_back((self.seq, env.msg));
        self.seq += 1;
        self.pending += 1;
        self.stats.record_send(env.lane);
        self.stats.observe_depth(self.pending);
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Returns `true` if no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Picks, removes and returns the next message per the policy, or
    /// `None` when the system is quiescent.
    pub fn next_event(&mut self) -> Option<(PeId, Lane, M)> {
        if self.pending == 0 {
            return None;
        }
        let (pe, lane) = match self.policy {
            SchedPolicy::Fifo => self.pick_extreme(false)?,
            SchedPolicy::Lifo => self.pick_extreme(true)?,
            SchedPolicy::RoundRobin => self.pick_round_robin()?,
            SchedPolicy::Random { marking_bias } => self.pick_random(marking_bias)?,
            SchedPolicy::PriorityFirst => self.pick_priority_first()?,
        };
        let deque = &mut self.pes[pe.index()][lane.index()];
        let (_, msg) = if matches!(self.policy, SchedPolicy::Lifo) {
            deque.pop_back()?
        } else {
            deque.pop_front()?
        };
        self.pending -= 1;
        self.stats.record_deliver(lane);
        Some((pe, lane, msg))
    }

    fn pick_extreme(&self, newest: bool) -> Option<(PeId, Lane)> {
        let mut best: Option<(u64, PeId, Lane)> = None;
        for (p, lanes) in self.pes.iter().enumerate() {
            for lane in Lane::ALL {
                let q = &lanes[lane.index()];
                let cand = if newest {
                    q.back().map(|&(s, _)| s)
                } else {
                    q.front().map(|&(s, _)| s)
                };
                if let Some(s) = cand {
                    let better = match best {
                        None => true,
                        Some((bs, _, _)) => {
                            if newest {
                                s > bs
                            } else {
                                s < bs
                            }
                        }
                    };
                    if better {
                        best = Some((s, PeId::new(p as u16), lane));
                    }
                }
            }
        }
        best.map(|(_, p, l)| (p, l))
    }

    fn pick_round_robin(&mut self) -> Option<(PeId, Lane)> {
        let n = self.pes.len();
        for off in 0..n {
            let p = (self.rr_cursor + off) % n;
            // Oldest message within the PE, across lanes.
            let mut best: Option<(u64, Lane)> = None;
            for lane in Lane::ALL {
                if let Some(&(s, _)) = self.pes[p][lane.index()].front() {
                    if best.map_or(true, |(bs, _)| s < bs) {
                        best = Some((s, lane));
                    }
                }
            }
            if let Some((_, lane)) = best {
                self.rr_cursor = (p + 1) % n;
                return Some((PeId::new(p as u16), lane));
            }
        }
        None
    }

    fn pick_random(&mut self, marking_bias: f64) -> Option<(PeId, Lane)> {
        let mut marking: Vec<(usize, Lane)> = Vec::new();
        let mut other: Vec<(usize, Lane)> = Vec::new();
        for (p, lanes) in self.pes.iter().enumerate() {
            for lane in Lane::ALL {
                if !lanes[lane.index()].is_empty() {
                    if lane == Lane::Marking {
                        marking.push((p, lane));
                    } else {
                        other.push((p, lane));
                    }
                }
            }
        }
        let pool = if marking.is_empty() {
            &other
        } else if other.is_empty() {
            &marking
        } else if self.rng.gen_bool(marking_bias.clamp(0.0, 1.0)) {
            &marking
        } else {
            &other
        };
        if pool.is_empty() {
            return None;
        }
        let (p, lane) = pool[self.rng.gen_range(0..pool.len())];
        Some((PeId::new(p as u16), lane))
    }

    fn pick_priority_first(&mut self) -> Option<(PeId, Lane)> {
        let n = self.pes.len();
        for lane in Lane::ALL {
            for off in 0..n {
                let p = (self.rr_cursor + off) % n;
                if !self.pes[p][lane.index()].is_empty() {
                    self.rr_cursor = (p + 1) % n;
                    return Some((PeId::new(p as u16), lane));
                }
            }
        }
        None
    }

    /// Picks, removes and returns the oldest pending message in the given
    /// lane (any PE), regardless of policy — used to give one lane
    /// priority service (e.g. marking tasks during a collection phase,
    /// per the paper's Section 6 remark).
    pub fn next_event_in_lane(&mut self, lane: Lane) -> Option<(PeId, Lane, M)> {
        let mut best: Option<(u64, usize)> = None;
        for (p, lanes) in self.pes.iter().enumerate() {
            if let Some(&(s, _)) = lanes[lane.index()].front() {
                if best.map_or(true, |(bs, _)| s < bs) {
                    best = Some((s, p));
                }
            }
        }
        let (_, p) = best?;
        let (_, msg) = self.pes[p][lane.index()].pop_front()?;
        self.pending -= 1;
        self.stats.record_deliver(lane);
        Some((PeId::new(p as u16), lane, msg))
    }

    /// Iterates over all pending messages (for `taskroot` construction and
    /// invariant checks).
    pub fn iter_pending(&self) -> impl Iterator<Item = (PeId, Lane, &M)> {
        self.pes.iter().enumerate().flat_map(|(p, lanes)| {
            Lane::ALL.into_iter().flat_map(move |lane| {
                lanes[lane.index()]
                    .iter()
                    .map(move |(_, m)| (PeId::new(p as u16), lane, m))
            })
        })
    }

    /// Removes pending messages for which `keep` returns `false` (the
    /// restructuring phase's *expunging* of irrelevant tasks). Returns how
    /// many messages were dropped.
    pub fn expunge<F>(&mut self, mut keep: F) -> usize
    where
        F: FnMut(PeId, Lane, &M) -> bool,
    {
        let mut dropped = 0;
        for (p, lanes) in self.pes.iter_mut().enumerate() {
            for lane in Lane::ALL {
                let q = &mut lanes[lane.index()];
                let before = q.len();
                q.retain(|(_, m)| keep(PeId::new(p as u16), lane, m));
                dropped += before - q.len();
            }
        }
        self.pending -= dropped;
        dropped
    }

    /// Re-lanes pending messages (the restructuring phase's dynamic
    /// re-prioritization): for every pending message, `relane` may return a
    /// new lane. Message order (by sequence number) is preserved within
    /// each new lane. Returns how many messages moved.
    pub fn relane<F>(&mut self, mut relane: F) -> usize
    where
        F: FnMut(PeId, Lane, &M) -> Lane,
    {
        let mut moved = 0;
        for (p, lanes) in self.pes.iter_mut().enumerate() {
            let mut staged: Vec<(u64, Lane, M)> = Vec::new();
            for lane in Lane::ALL {
                let q = std::mem::take(&mut lanes[lane.index()]);
                for (s, m) in q {
                    let new = relane(PeId::new(p as u16), lane, &m);
                    if new != lane {
                        moved += 1;
                    }
                    staged.push((s, new, m));
                }
            }
            staged.sort_by_key(|&(s, _, _)| s);
            for (s, lane, m) in staged {
                lanes[lane.index()].push_back((s, m));
            }
        }
        moved
    }

    /// Number of delivery events executed so far (virtual time).
    pub fn time(&self) -> u64 {
        self.stats.delivered_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::Priority;

    fn env(pe: u16, lane: Lane, msg: u32) -> Envelope<u32> {
        Envelope::new(PeId::new(pe), lane, msg)
    }

    #[test]
    fn fifo_is_global_send_order() {
        let mut sim = DetSim::new(3, SchedPolicy::Fifo, 0);
        sim.send(env(2, Lane::Marking, 1));
        sim.send(env(0, Lane::Reduction(Priority::Vital), 2));
        sim.send(env(1, Lane::Mutator, 3));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn lifo_is_reverse_send_order() {
        let mut sim = DetSim::new(2, SchedPolicy::Lifo, 0);
        for i in 0..4 {
            sim.send(env(i % 2, Lane::Marking, i as u32));
        }
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn round_robin_rotates_pes() {
        let mut sim = DetSim::new(2, SchedPolicy::RoundRobin, 0);
        sim.send(env(0, Lane::Marking, 10));
        sim.send(env(0, Lane::Marking, 11));
        sim.send(env(1, Lane::Marking, 20));
        let got: Vec<(u16, u32)> =
            std::iter::from_fn(|| sim.next_event().map(|(p, _, m)| (p.raw(), m))).collect();
        assert_eq!(got, vec![(0, 10), (1, 20), (0, 11)]);
    }

    #[test]
    fn priority_first_prefers_mutator_then_marking() {
        let mut sim = DetSim::new(1, SchedPolicy::PriorityFirst, 0);
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 1));
        sim.send(env(0, Lane::Marking, 2));
        sim.send(env(0, Lane::Mutator, 3));
        sim.send(env(0, Lane::Reduction(Priority::Vital), 4));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![3, 2, 4, 1]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
            for i in 0..32 {
                sim.send(env(
                    (i % 4) as u16,
                    if i % 3 == 0 {
                        Lane::Marking
                    } else {
                        Lane::Reduction(Priority::Vital)
                    },
                    i as u32,
                ));
            }
            std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds explore differently");
    }

    #[test]
    fn random_marking_bias_extremes() {
        // bias 1.0: marking always drains before other lanes.
        let mut sim = DetSim::new(1, SchedPolicy::Random { marking_bias: 1.0 }, 3);
        sim.send(env(0, Lane::Reduction(Priority::Vital), 1));
        sim.send(env(0, Lane::Marking, 2));
        sim.send(env(0, Lane::Marking, 3));
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(&got[..2], &[2, 3]);
    }

    #[test]
    fn expunge_drops_matching() {
        let mut sim = DetSim::new(2, SchedPolicy::Fifo, 0);
        for i in 0..6 {
            sim.send(env(i % 2, Lane::Reduction(Priority::Vital), i as u32));
        }
        let dropped = sim.expunge(|_, _, &m| m % 2 == 0);
        assert_eq!(dropped, 3);
        assert_eq!(sim.len(), 3);
        let got: Vec<u32> = std::iter::from_fn(|| sim.next_event().map(|(_, _, m)| m)).collect();
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn relane_moves_messages_preserving_order() {
        let mut sim = DetSim::new(1, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 1));
        sim.send(env(0, Lane::Reduction(Priority::Reserve), 2));
        let moved = sim.relane(|_, _, _| Lane::Reduction(Priority::Vital));
        assert_eq!(moved, 2);
        let pending: Vec<(Lane, u32)> = sim.iter_pending().map(|(_, l, &m)| (l, m)).collect();
        assert_eq!(
            pending,
            vec![
                (Lane::Reduction(Priority::Vital), 1),
                (Lane::Reduction(Priority::Vital), 2)
            ]
        );
    }

    #[test]
    fn iter_pending_sees_everything() {
        let mut sim = DetSim::new(3, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Marking, 1));
        sim.send(env(2, Lane::Mutator, 2));
        let all: Vec<u32> = sim.iter_pending().map(|(_, _, &m)| m).collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&1) && all.contains(&2));
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let mut sim = DetSim::new(1, SchedPolicy::Fifo, 0);
        sim.send(env(0, Lane::Marking, 1));
        sim.send(env(0, Lane::Mutator, 2));
        sim.next_event();
        assert_eq!(sim.stats().sent_total(), 2);
        assert_eq!(sim.stats().delivered_total(), 1);
        assert_eq!(sim.time(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _: DetSim<u32> = DetSim::new(0, SchedPolicy::Fifo, 0);
    }
}
