//! Sharded lock-free mailboxes: one SPSC ring per (sender, receiver) pair.
//!
//! The channel-based runtime funnels every message for a PE through one
//! `crossbeam` channel — a mutex-protected queue whose lock all senders
//! and the receiver contend on, and whose wakeup path (condvar) is what
//! made tree_d15 marking *slower* past 4 PEs. This grid replaces that
//! funnel with `n²` single-producer single-consumer rings: PE `s` sending
//! to PE `d` touches only ring `(s, d)`, so two senders to the same
//! destination never contend on anything, and a delivery is one Release
//! store observed by one Acquire load — no locks, no syscalls, no condvar.
//!
//! Rings are **bounded** and `push` never blocks: a full ring returns the
//! task to the sender, who keeps it in a private per-destination stage and
//! retries on its next idle beat. A blocked sender holding its own ring
//! space is how bounded mailbox meshes deadlock (A full toward B, B full
//! toward A, both waiting); returning instead of blocking makes the mesh
//! deadlock-free by construction, at the cost of the small stage vector.
//!
//! Like the deque, the ring is generic over the [`Atomics`] facade so the
//! deterministic model checker can explore its two release/acquire edges
//! under the weak-memory shim — including the seeded mutation at
//! [`Site::MailboxTailPublish`], which lets a consumer observe a fresh
//! tail whose head-of-ring cell is still stale.

use dgr_atomic::{AtomicU64Api, Atomics, Ordering, Site, StdAtomics};

/// One single-producer single-consumer bounded ring of `u64` tasks.
///
/// `head`/`tail` are monotonic; the producer owns `tail`, the consumer
/// owns `head`, and each reads the other's index with Acquire to pair
/// with its Release publication.
#[derive(Debug)]
pub struct SpscRing<A: Atomics = StdAtomics> {
    buf: Box<[A::U64]>,
    mask: u64,
    /// Next index the consumer will read (written only by the consumer).
    head: A::U64,
    /// Next index the producer will write (written only by the producer).
    tail: A::U64,
}

impl<A: Atomics> SpscRing<A> {
    /// Builds a ring with `capacity` slots (rounded up to a power of two,
    /// minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        SpscRing {
            buf: (0..cap).map(|_| A::U64::new(0)).collect(),
            mask: (cap - 1) as u64,
            head: A::U64::new(0),
            tail: A::U64::new(0),
        }
    }

    /// Producer-only: appends a task, or returns it if the ring is full.
    pub fn push(&self, task: u64) -> Result<(), u64> {
        let t = self.tail.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the consumer's Release head bump —
        // seeing the freed slots means the consumer's cell reads are
        // done, so overwriting them after the full-check is safe. (A
        // stale head only under-reports room: the push conservatively
        // returns Err and the sender stages, never a correctness issue.)
        let h = self.head.load(Ordering::Acquire);
        if t - h >= self.buf.len() as u64 {
            return Err(task);
        }
        self.buf[(t & self.mask) as usize].store(task, Ordering::Relaxed);
        // ordering: Release publishes the cell write above to the
        // consumer's Acquire load of `tail`. The seeded mutation at
        // `Site::MailboxTailPublish` relaxes this store, letting the
        // consumer drain a stale head-of-ring cell — `dgr-check
        // --atomics` must catch it.
        self.tail
            .store(t + 1, A::remap(Site::MailboxTailPublish, Ordering::Release));
        Ok(())
    }

    /// Consumer-only: moves every currently-visible task into `out`.
    pub fn drain(&self, out: &mut Vec<u64>) -> usize {
        let h = self.head.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the producer's Release tail bump,
        // making every cell in `h..t` visible before it is read.
        let t = self.tail.load(Ordering::Acquire);
        let mut i = h;
        while i < t {
            out.push(self.buf[(i & self.mask) as usize].load(Ordering::Relaxed));
            i += 1;
        }
        if t != h {
            // ordering: Release frees the slots for the producer's
            // Acquire room-check — the cell reads above must not be
            // reorderable past this store.
            self.head.store(t, Ordering::Release);
        }
        (t - h) as usize
    }

    /// Tasks visible right now (racy; monitoring only, hence Relaxed).
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    /// `true` when no task is visible (racy; monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full `n × n` mesh of SPSC rings for an `n`-PE system.
///
/// Indexing is `[receiver][sender]`, so one receiver's rings are adjacent
/// and a drain sweep walks them in order.
#[derive(Debug)]
pub struct MailboxGrid<A: Atomics = StdAtomics> {
    rings: Vec<SpscRing<A>>,
    num_pes: usize,
}

impl<A: Atomics> MailboxGrid<A> {
    /// Builds the mesh with `capacity` slots per (sender, receiver) ring.
    pub fn new(num_pes: usize, capacity: usize) -> Self {
        MailboxGrid {
            rings: (0..num_pes * num_pes)
                .map(|_| SpscRing::new(capacity))
                .collect(),
            num_pes,
        }
    }

    fn ring(&self, src: usize, dst: usize) -> &SpscRing<A> {
        &self.rings[dst * self.num_pes + src]
    }

    /// PE `src` sends `task` to PE `dst`; returns the task if the ring is
    /// full (the caller stages and retries — see the module docs). Only
    /// PE `src`'s thread may call this for a given `src`.
    pub fn push(&self, src: usize, dst: usize, task: u64) -> Result<(), u64> {
        self.ring(src, dst).push(task)
    }

    /// PE `dst` drains every task currently visible from any sender into
    /// `out`, returning how many arrived. Only PE `dst`'s thread may call
    /// this for a given `dst`.
    pub fn drain(&self, dst: usize, out: &mut Vec<u64>) -> usize {
        let mut total = 0;
        for src in 0..self.num_pes {
            total += self.ring(src, dst).drain(out);
        }
        total
    }

    /// Approximate number of tasks waiting for PE `dst` (monitoring only).
    pub fn depth(&self, dst: usize) -> usize {
        (0..self.num_pes).map(|src| self.ring(src, dst).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_drain_roundtrips_in_order() {
        let grid: MailboxGrid = MailboxGrid::new(2, 16);
        for v in 0..5 {
            grid.push(0, 1, v).unwrap();
        }
        grid.push(1, 1, 100).unwrap();
        let mut out = Vec::new();
        assert_eq!(grid.drain(1, &mut out), 6);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 100]);
        assert_eq!(grid.drain(1, &mut out), 0, "drained empty");
        assert_eq!(grid.depth(1), 0);
    }

    #[test]
    fn full_ring_returns_the_task() {
        let grid: MailboxGrid = MailboxGrid::new(2, 8);
        for v in 0..8 {
            grid.push(0, 1, v).unwrap();
        }
        assert_eq!(grid.push(0, 1, 8), Err(8));
        assert_eq!(grid.push(1, 1, 9), Ok(()), "other sender's ring has room");
        let mut out = Vec::new();
        grid.drain(1, &mut out);
        assert_eq!(grid.push(0, 1, 8), Ok(()), "room after drain");
    }

    #[test]
    fn senders_to_one_destination_do_not_interfere() {
        // 3 senders × 10_000 tasks each into PE 0, concurrent with the
        // consumer draining: every task arrives exactly once.
        const PER: u64 = 10_000;
        let grid: MailboxGrid = MailboxGrid::new(4, 64);
        let mut seen = vec![0u32; (3 * PER) as usize];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for s in 1..4u64 {
                let grid = &grid;
                handles.push(scope.spawn(move || {
                    for i in 0..PER {
                        let task = (s - 1) * PER + i;
                        let mut t = task;
                        loop {
                            match grid.push(s as usize, 0, t) {
                                Ok(()) => break,
                                Err(back) => {
                                    t = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                }));
            }
            let mut out = Vec::new();
            let mut got = 0u64;
            while got < 3 * PER {
                out.clear();
                got += grid.drain(0, &mut out) as u64;
                for &v in &out {
                    seen[v as usize] += 1;
                }
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(seen.iter().all(|&c| c == 1));
    }
}
