//! Multi-PE runtime substrate for distributed graph reduction.
//!
//! The paper assumes "an arbitrary number of autonomous processing elements
//! having only local store and communicating via messages", with task
//! execution atomic with respect to the vertices it manipulates. This crate
//! supplies two interchangeable realizations of that machine:
//!
//! * [`DetSim`] — a **deterministic event simulator**. Every pending task is
//!   a message in a per-PE, per-[`Lane`] mailbox; a seeded
//!   [`SchedPolicy`] picks the next task to execute. Task execution is
//!   globally atomic (one event at a time), which is strictly stronger than
//!   the paper's per-vertex atomicity, and the seeded random policy lets
//!   property tests quantify over adversarial interleavings.
//! * [`ThreadedRuntime`] — a **real parallel runtime**: one OS thread per
//!   PE, crossbeam channels as mailboxes, and a [`SharedGraph`] whose
//!   per-vertex `parking_lot` mutexes provide exactly the paper's atomicity
//!   granularity. Termination is detected with a global in-flight message
//!   counter (quiescence).
//! * [`StealRuntime`] — the **work-stealing runtime**: per-PE Chase–Lev
//!   deques ([`StealDeque`]) with a sharded lock-free mailbox mesh
//!   ([`MailboxGrid`]) for cross-PE envelopes, adaptive parking, and
//!   critical-path depth hints on its `u64` tasks. This is the fast
//!   substrate the scalability experiments measure; the channel runtime
//!   is retained as the simpler generic-message baseline.
//!
//! The marking algorithms in `dgr-core` run unchanged on all of them.
//!
//! # Example
//!
//! ```
//! use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
//! use dgr_graph::PeId;
//!
//! let mut sim: DetSim<&'static str> = DetSim::new(2, SchedPolicy::Fifo, 0);
//! sim.send(Envelope::new(PeId::new(0), Lane::Marking, "mark"));
//! sim.send(Envelope::new(PeId::new(1), Lane::Marking, "mark"));
//! let mut seen = 0;
//! while let Some((_pe, _lane, _msg)) = sim.next_event() {
//!     seen += 1;
//! }
//! assert_eq!(seen, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deque;
mod det;
pub mod mailbox;
mod msg;
pub mod quiesce;
mod shared;
mod stats;
pub mod steal;
mod threaded;

pub use deque::{Steal, StealDeque};
pub use det::{DetSim, SchedPolicy};
pub use mailbox::{MailboxGrid, SpscRing};
pub use msg::{Envelope, Lane};
pub use quiesce::QuiesceState;
pub use shared::SharedGraph;
pub use stats::SimStats;
pub use steal::{SpawnScope, StealRuntime, StealStats};
pub use threaded::{ThreadCtx, ThreadedRuntime};
