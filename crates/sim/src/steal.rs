//! The work-stealing runtime: per-PE Chase–Lev deques, a sharded mailbox
//! mesh for cross-PE envelopes, and adaptive parking.
//!
//! This is the second generation of the threaded runtime. The first
//! ([`ThreadedRuntime`](crate::ThreadedRuntime)) gives every PE one
//! channel mailbox; measurements (`baselines/BENCH_scalability.json`)
//! showed marking improving only ~1.4× from 1 → 16 PEs and *anti-scaling*
//! past 4 PEs on tree_d15, because every delivery serialized on the
//! channel's internal lock and every empty-mailbox wait took the
//! condvar/syscall wakeup path. Here nothing funnels:
//!
//! * each PE owns a [`StealDeque`]: local spawns are LIFO push/pop
//!   (depth-first, cache-warm), and idle PEs steal half a victim's
//!   oldest tasks — the structurally shallowest, i.e. the largest
//!   remaining subtrees — so one steal buys a long private runway;
//! * cross-PE envelopes travel the [`MailboxGrid`]'s SPSC rings — one
//!   Release store per send, no locks, senders never block;
//! * tasks are plain `u64`s, so spawning allocates nothing, and the top
//!   [`DEPTH_BITS`] carry a saturating depth hint: drained mailbox
//!   batches are executed deepest-first, which bounds the straggler tail
//!   on unbalanced digraphs (critical-path-aware scheduling);
//! * idle workers spin briefly (only when real cores are available),
//!   then yield, then park with a bounded timeout — the adaptive backoff
//!   that fixes the tree_d15 wakeup ping-pong;
//! * termination is a single global in-flight counter that tracks only
//!   *visible* tasks (deques and mailboxes): a handler's local spawns
//!   either continue directly (task chaining) or sit in a private spill
//!   covered by the unit the worker already holds, and releases are
//!   batched to the worker's idle beats — a 1-PE pass over a million
//!   tasks touches the counter a handful of times.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dgr_graph::PeId;
use dgr_telemetry::{
    CounterId, GaugeId, HeartbeatHandle, HistId, PeSchedSnapshot, Phase, Registry, SchedState,
};
use parking_lot::Mutex;

use crate::deque::StealDeque;
use crate::mailbox::MailboxGrid;
use crate::quiesce::QuiesceState;

/// Bits of a task word reserved for the depth/priority hint (the top
/// bits, so depth sorts tasks without unpacking them).
pub const DEPTH_BITS: u32 = 6;
/// Shift that positions the depth hint.
pub const DEPTH_SHIFT: u32 = 64 - DEPTH_BITS;
/// Largest encodable depth hint; deeper tasks saturate here.
pub const DEPTH_MAX: u64 = (1 << DEPTH_BITS) - 1;

/// Stamps `depth` (saturating) into the hint bits of `task`.
pub fn with_depth(task: u64, depth: u64) -> u64 {
    (task & !(DEPTH_MAX << DEPTH_SHIFT)) | (depth.min(DEPTH_MAX) << DEPTH_SHIFT)
}

/// Reads a task's depth hint back.
pub fn task_depth(task: u64) -> u64 {
    task >> DEPTH_SHIFT
}

/// Counters from one [`StealRuntime::run`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StealStats {
    /// Tasks executed (every spawned task exactly once).
    pub executed: u64,
    /// Cross-PE envelopes sent through the mailbox grid (counted at the
    /// send decision, whether or not the task was briefly staged).
    pub envelopes: u64,
    /// Successful steal operations (each transfers ≥ 1 task).
    pub steals: u64,
    /// Steal attempts that found the victim empty or lost a race.
    pub steal_fails: u64,
    /// Times a worker found nothing anywhere and parked on the timeout.
    pub parks: u64,
    /// Largest private spill depth (`spill` + `spill_reg`) any worker
    /// reached — how far local work outran the stealable window.
    pub spill_hw: u64,
}

/// Handle a task handler uses to spawn follow-up tasks.
///
/// Spawns are buffered; after the handler returns, the runtime registers
/// them with the in-flight counter *before* publishing any of them, keeps
/// the last local spawn for direct continuation (task chaining), pushes
/// the rest onto the PE's deque, and routes remote spawns through the
/// mailbox grid.
pub struct SpawnScope<'w> {
    me: PeId,
    num_pes: usize,
    out: &'w mut Vec<(PeId, u64)>,
}

impl SpawnScope<'_> {
    /// The PE executing the current task.
    pub fn me(&self) -> PeId {
        self.me
    }

    /// Number of PEs in the system.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Spawns `task` for PE `dst` (which may be this PE).
    pub fn spawn(&mut self, dst: PeId, task: u64) {
        self.out.push((dst, task));
    }
}

/// Per-PE parking slot: the flag senders check and the handle they kick.
#[derive(Debug, Default)]
struct ParkSlot {
    /// SeqCst on both sides: the parker stores `true` then re-checks for
    /// work; a sender publishes work then loads the flag. Sequential
    /// consistency rules out both sides missing each other, and the
    /// bounded `park_timeout` backstops the residual shutdown races.
    parked: AtomicBool,
    thread: Mutex<Option<std::thread::Thread>>,
}

impl ParkSlot {
    fn wake(&self) {
        // ordering: SeqCst pairs with the parker's SeqCst flag store (see
        // the field docs) — rules out both sides missing each other.
        if self.parked.load(Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().as_ref() {
                t.unpark();
            }
        }
    }
}

/// Shared state of one running pass.
struct Mesh<'t> {
    deques: Vec<StealDeque>,
    grid: MailboxGrid,
    /// In-flight *registered* tasks: seeds plus every spawn published to
    /// a deque or mailbox (visible to other workers). Private-spill tasks
    /// are deliberately not counted — a worker defers the release of
    /// every registered task it consumed until its local backlog is
    /// empty, so while unregistered work exists its worker holds at least
    /// one unit. The count reaching zero therefore proves no task exists
    /// or can appear anywhere. The counter + terminal flag live in
    /// [`QuiesceState`] so the model checker can explore the protocol's
    /// orderings in isolation (see `crate::quiesce`).
    quiesce: QuiesceState,
    parks: Vec<ParkSlot>,
    telem: &'t Registry,
}

impl Mesh<'_> {
    fn finish_check(&self, released: usize) {
        // The AcqRel/Release discipline lives in `QuiesceState::release`;
        // the zero-observer additionally owns waking every parked worker.
        if self.quiesce.release(released) {
            for p in &self.parks {
                p.wake();
            }
        }
    }
}

/// Below this many tasks in the shared deque, local spawns are published
/// there (stealable); at or above it they stay in the private spill —
/// plain `Vec` pushes with no fences. Keeping only a window of work
/// visible makes the owner's hot path allocation- and fence-free while
/// still leaving thieves a full steal-half's worth to take.
const DEQUE_LOW_WATER: usize = 64;

/// Per-worker mutable state (never shared).
struct Worker {
    me: usize,
    /// Private local work that was never registered with the in-flight
    /// counter: it rides on the pending unit of the chain that spawned it
    /// (see `held_releases`), so a 1-PE pass runs with essentially no
    /// counter traffic at all. Unstealable, which costs balance, never
    /// correctness — and costs no atomics, which is why the owner prefers
    /// it (see [`DEQUE_LOW_WATER`]).
    spill: Vec<u64>,
    /// Private local work that **is** registered: deque-full overflow of
    /// tasks already counted (absorbed batches, seeds). Executing one
    /// obliges a deferred release, exactly like a deque pop.
    spill_reg: Vec<u64>,
    /// Pending units this worker consumed (registered tasks it executed)
    /// but has not released yet. Flushed on the first idle beat — while
    /// the worker has local work it holds at least one unit, which is
    /// what lets unregistered spill tasks exist without the global count
    /// ever falsely reaching zero.
    held_releases: usize,
    /// Cached "the shared deque wants more work" decision, refreshed once
    /// per chain rather than per spawn. Always `false` in a 1-PE system,
    /// where no thief exists and the deque is pure overhead.
    feed_deque: bool,
    /// Per-destination staging for mailbox-full remote sends, retried on
    /// idle beats (senders never block — see [`MailboxGrid`]).
    stage: Vec<Vec<u64>>,
    /// Scratch for handler spawns and drained/stolen batches.
    spawned: Vec<(PeId, u64)>,
    batch: Vec<u64>,
    /// xorshift64* state for victim selection (seeded per PE, no clock).
    rng: u64,
    executed: u64,
    envelopes: u64,
    steals: u64,
    steal_fails: u64,
    parks: u64,
    deque_high: u64,
    spill_hw: u64,
}

impl Worker {
    /// Tracks the private spill's high-water (both tiers together).
    fn note_spill_depth(&mut self) {
        let depth = (self.spill.len() + self.spill_reg.len()) as u64;
        self.spill_hw = self.spill_hw.max(depth);
    }
}

impl Worker {
    fn next_victim(&mut self, num_pes: usize) -> usize {
        // xorshift64*: cheap, decent spread, deterministic per PE.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize;
        let v = r % (num_pes - 1);
        if v >= self.me {
            v + 1
        } else {
            v
        }
    }
}

/// A work-stealing parallel runtime: one worker thread per PE, a
/// [`StealDeque`] each, and a [`MailboxGrid`] between them.
///
/// [`StealRuntime::run`] seeds the initial tasks, lets handlers spawn
/// until global quiescence, and returns the pass counters. Tasks are
/// `u64` words — encoding is the caller's contract, except the top
/// [`DEPTH_BITS`] which the runtime reads as a scheduling hint.
///
/// # Example
///
/// ```
/// use dgr_graph::PeId;
/// use dgr_sim::StealRuntime;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Count down from 5, hopping PEs: 6 tasks total.
/// let hits = AtomicU64::new(0);
/// let stats = StealRuntime::new(4).run(vec![(PeId::new(0), 5)], |scope, n| {
///     hits.fetch_add(1, Ordering::SeqCst);
///     if n > 0 {
///         let next = PeId::new((scope.me().raw() + 1) % 4);
///         scope.spawn(next, n - 1);
///     }
/// });
/// assert_eq!(stats.executed, 6);
/// assert_eq!(hits.load(Ordering::SeqCst), 6);
/// ```
#[derive(Debug)]
pub struct StealRuntime {
    num_pes: u16,
    deque_capacity: usize,
    mailbox_capacity: usize,
}

impl StealRuntime {
    /// Creates a runtime with `num_pes` worker threads and default
    /// deque/mailbox capacities.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        StealRuntime {
            num_pes,
            deque_capacity: 8192,
            mailbox_capacity: 1024,
        }
    }

    /// Overrides the per-PE deque ring capacity (rounded to a power of
    /// two; overflow spills to a private per-worker vector).
    pub fn with_deque_capacity(mut self, capacity: usize) -> Self {
        self.deque_capacity = capacity;
        self
    }

    /// Overrides the per-(sender, receiver) mailbox ring capacity
    /// (rounded to a power of two; overflow stages at the sender).
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = capacity;
        self
    }

    /// Runs `handler` on every task until global quiescence. The handler
    /// executes on some PE's worker thread — *not* necessarily the task's
    /// destination PE's: a task spawned for PE `d` starts on `d` (via
    /// deque or mailbox) but may be stolen by an idle PE. State shared
    /// between tasks must therefore be location-independent (atomics, or
    /// the per-vertex locks of a [`SharedGraph`](crate::SharedGraph)).
    pub fn run<F>(&self, initial: Vec<(PeId, u64)>, handler: F) -> StealStats
    where
        F: Fn(&mut SpawnScope<'_>, u64) + Sync,
    {
        self.run_observed(
            initial,
            handler,
            &Registry::new(self.num_pes),
            &HeartbeatHandle::default(),
        )
    }

    /// [`StealRuntime::run`] with telemetry and a liveness pulse: per PE
    /// the registry records executed tasks, steals and failed steals
    /// (plus the victim-bucketed `stolen_from` / `stolen_tasks` /
    /// `steal_misses` counters), drained batches and their sizes, steal
    /// batch sizes, mailbox/deque/spill depth gauges, park events with
    /// wake latency, and a full [`SchedState`] state clock — every loop
    /// transition charges wall-clock to exactly one state, emitted as
    /// per-pass `sched_*` delta instants when the pass ends (so several
    /// passes on one registry each report only their own time); `hb`
    /// beats once per local drain run. In a default (no-`telemetry`)
    /// build both are zero-sized no-ops.
    pub fn run_observed<F>(
        &self,
        initial: Vec<(PeId, u64)>,
        handler: F,
        telem: &Registry,
        hb: &HeartbeatHandle,
    ) -> StealStats
    where
        F: Fn(&mut SpawnScope<'_>, u64) + Sync,
    {
        let n = self.num_pes as usize;
        if initial.is_empty() {
            return StealStats::default();
        }
        let mesh = Mesh {
            deques: (0..n)
                .map(|_| StealDeque::new(self.deque_capacity))
                .collect(),
            grid: MailboxGrid::new(n, self.mailbox_capacity),
            quiesce: QuiesceState::new(initial.len()),
            parks: (0..n).map(|_| ParkSlot::default()).collect(),
            telem,
        };
        // Seed before any worker exists: each destination deque is still
        // unshared, so owner-only pushes from here are fine. Seeds that
        // overflow a deque go to the owner's spill via a pre-filled list.
        let mut seed_spill: Vec<Vec<u64>> = (0..n).map(|_| Vec::new()).collect();
        for (dst, task) in initial {
            if let Err(t) = mesh.deques[dst.index()].push(task) {
                seed_spill[dst.index()].push(t);
            }
        }

        let totals = Mutex::new(StealStats::default());
        // Per-PE clock baselines taken before any worker runs: the
        // state clock accumulates across passes on a shared registry,
        // so the pass-end instants below report this pass's deltas.
        let sched_base: Vec<PeSchedSnapshot> = if telem.enabled() {
            (0..n as u16).map(|pe| telem.sched_snapshot(pe)).collect()
        } else {
            Vec::new()
        };
        let multicore = std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
        std::thread::scope(|scope| {
            for (me, spill) in seed_spill.into_iter().enumerate() {
                let mesh = &mesh;
                let handler = &handler;
                let totals = &totals;
                scope.spawn(move || {
                    let mut w = Worker {
                        me,
                        spill: Vec::new(),
                        spill_reg: spill,
                        held_releases: 0,
                        feed_deque: n > 1,
                        stage: (0..n).map(|_| Vec::new()).collect(),
                        spawned: Vec::new(),
                        batch: Vec::new(),
                        rng: 0x9E37_79B9_7F4A_7C15 ^ ((me as u64 + 1) << 17),
                        executed: 0,
                        envelopes: 0,
                        steals: 0,
                        steal_fails: 0,
                        parks: 0,
                        deque_high: 0,
                        spill_hw: 0,
                    };
                    w.note_spill_depth(); // overflowed seeds count too
                    *mesh.parks[me].thread.lock() = Some(std::thread::current());
                    run_worker(&mut w, mesh, handler, hb, multicore);
                    mesh.telem.sched_finish(me as u16);
                    let shard = mesh.telem.pe(me as u16);
                    shard.add(CounterId::Steals, w.steals);
                    shard.add(CounterId::StealFails, w.steal_fails);
                    shard.gauge_max(GaugeId::DequeHighWater, w.deque_high as i64);
                    shard.gauge_max(GaugeId::SpillHighWater, w.spill_hw as i64);
                    shard.observe(HistId::DequeDepthPeak, w.deque_high);
                    let mut t = totals.lock();
                    t.executed += w.executed;
                    t.envelopes += w.envelopes;
                    t.steals += w.steals;
                    t.steal_fails += w.steal_fails;
                    t.parks += w.parks;
                    t.spill_hw = t.spill_hw.max(w.spill_hw);
                });
            }
        });
        debug_assert_eq!(mesh.quiesce.pending(), 0);
        // One instant per (PE, state) with this pass's nanosecond deltas
        // against the pre-spawn baselines, plus the pass span — the
        // events `dgr-trace blame` sums. Deltas (not cumulative totals)
        // mean several passes on one shared registry blame correctly:
        // each pass's instants carry only its own time.
        if telem.enabled() {
            for pe in 0..n as u16 {
                let sched = telem.sched_snapshot(pe);
                let base = &sched_base[pe as usize];
                for s in SchedState::ALL {
                    telem.instant(
                        pe,
                        0,
                        Phase::Mr,
                        s.event_name(),
                        sched.state_ns(s).saturating_sub(base.state_ns(s)),
                    );
                }
                // The pass span is the accounted-time delta: the clock's
                // cumulative span_ns includes the idle gap between
                // passes, while total_ns equals the span exactly for
                // each finished episode (the clock's exact-sum
                // invariant), so its delta is exactly this pass's span.
                telem.instant(
                    pe,
                    0,
                    Phase::Mr,
                    "sched_span",
                    sched.total_ns().saturating_sub(base.total_ns()),
                );
            }
        }
        totals.into_inner()
    }
}

/// Executes one task plus its whole local chain: the handler's last local
/// spawn continues directly (no deque round-trip, no counter RMW), other
/// spawns are published first. Returns how many tasks ran.
fn run_chain<F>(w: &mut Worker, mesh: &Mesh<'_>, handler: &F, first: u64) -> u64
where
    F: Fn(&mut SpawnScope<'_>, u64) + Sync,
{
    let n = mesh.deques.len();
    let me = w.me;
    let mut ran = 0u64;
    let mut task = first;
    loop {
        ran += 1;
        let mut scope = SpawnScope {
            me: PeId::new(me as u16),
            num_pes: n,
            out: &mut w.spawned,
        };
        handler(&mut scope, task);
        // Keep one local spawn as the chain's next link; everything else
        // is published. The *last* local spawn is the deepest child under
        // depth-ordered spawning, which keeps the chain depth-first.
        let mut next = None;
        for i in (0..w.spawned.len()).rev() {
            if w.spawned[i].0.index() == me {
                next = Some(w.spawned.swap_remove(i).1);
                break;
            }
        }
        if !w.spawned.is_empty() {
            // Only spawns that become visible to other workers (deque or
            // mailbox) are registered; private-spill spawns ride on this
            // chain's own pending unit. Register before publishing so
            // the count never falsely dips to zero (the ordering
            // rationale lives on `QuiesceState::register`).
            let registered = if w.feed_deque {
                w.spawned.len()
            } else {
                w.spawned.iter().filter(|(d, _)| d.index() != me).count()
            };
            if registered > 0 {
                mesh.quiesce.register(registered);
            }
            let shard = mesh.telem.pe(me as u16);
            for (dst, t) in w.spawned.drain(..) {
                let d = dst.index();
                if d == me {
                    shard.inc(CounterId::SendsLocal);
                    if w.feed_deque {
                        // Registered above; overflow keeps the unit.
                        if let Err(t) = mesh.deques[me].push(t) {
                            w.spill_reg.push(t);
                        }
                    } else {
                        w.spill.push(t);
                    }
                } else {
                    shard.inc(CounterId::SendsRemote);
                    w.envelopes += 1;
                    match mesh.grid.push(me, d, t) {
                        Ok(()) => mesh.parks[d].wake(),
                        Err(t) => w.stage[d].push(t),
                    }
                }
            }
            w.note_spill_depth();
            if mesh.telem.enabled() {
                let depth = mesh.deques[me].len() as u64;
                w.deque_high = w.deque_high.max(depth);
                shard.gauge_set(GaugeId::DequeDepth, depth as i64);
            }
        }
        match next {
            Some(t) => task = t,
            None => break,
        }
    }
    ran
}

/// Retries previously staged remote sends; returns `true` if any ring
/// accepted one (progress was made).
fn flush_stage(w: &mut Worker, mesh: &Mesh<'_>) -> bool {
    let mut progressed = false;
    for d in 0..w.stage.len() {
        while let Some(&t) = w.stage[d].last() {
            match mesh.grid.push(w.me, d, t) {
                Ok(()) => {
                    w.stage[d].pop();
                    mesh.parks[d].wake();
                    progressed = true;
                }
                Err(_) => break,
            }
        }
    }
    progressed
}

/// Moves a drained/stolen batch into the local deque deepest-last, so the
/// LIFO pop order executes the structurally deepest work first. Batch
/// tasks are already registered (by their original publisher), so deque
/// overflow keeps them in the registered spill.
fn absorb_batch(w: &mut Worker, mesh: &Mesh<'_>) {
    w.batch.sort_unstable_by_key(|&t| task_depth(t));
    for &t in &w.batch {
        if let Err(t) = mesh.deques[w.me].push(t) {
            w.spill_reg.push(t);
        }
    }
    w.batch.clear();
    w.note_spill_depth();
}

fn run_worker<F>(
    w: &mut Worker,
    mesh: &Mesh<'_>,
    handler: &F,
    hb: &HeartbeatHandle,
    multicore: bool,
) where
    F: Fn(&mut SpawnScope<'_>, u64) + Sync,
{
    let n = mesh.deques.len();
    let me = w.me;
    let mut idle_spins = 0u32;
    loop {
        // 1. Local work: private spill first (it is invisible to thieves,
        // so draining it first caps its growth), then the deque. Chains
        // rooted at a registered task (seed, deque, absorbed batch)
        // accumulate a deferred release; unregistered spill chains ride
        // on the units already held.
        let (local, registered) = match w.spill.pop() {
            Some(t) => (Some(t), false),
            None => match w.spill_reg.pop() {
                Some(t) => (Some(t), true),
                None => (mesh.deques[me].pop(), true),
            },
        };
        if let Some(task) = local {
            // Re-entering `Work` from `Work` is a single relaxed load, so
            // a long run of local chains pays one clock read total.
            mesh.telem.sched_enter(me as u16, SchedState::Work);
            let ran = run_chain(w, mesh, handler, task);
            if registered {
                w.held_releases += 1;
            }
            w.executed += ran;
            mesh.telem.pe(me as u16).add(CounterId::Tasks, ran);
            hb.progress(ran);
            // Once per chain (not per spawn): decide whether the next
            // chain's local spawns should top up the stealable window.
            w.feed_deque = n > 1 && mesh.deques[me].len() < DEQUE_LOW_WATER;
            idle_spins = 0;
            continue;
        }
        // Out of local work: flush the deferred releases — only now can
        // the global count legitimately reach zero on our account.
        mesh.telem.sched_enter(me as u16, SchedState::MailboxDrain);
        if w.held_releases > 0 {
            mesh.finish_check(w.held_releases);
            w.held_releases = 0;
        }
        // 2. Retry staged remote sends while idle.
        let progressed = flush_stage(w, mesh);
        // 3. Drain our mailbox rings: envelopes other PEs routed here.
        let drained = mesh.grid.drain(me, &mut w.batch);
        if drained > 0 {
            let shard = mesh.telem.pe(me as u16);
            shard.inc(CounterId::Batches);
            shard.observe(HistId::BatchSize, drained as u64);
            absorb_batch(w, mesh);
            idle_spins = 0;
            continue;
        }
        // 4. Steal half of a random victim's deque. Steal outcomes are
        // bucketed by victim: the thief bumps the *victim's* shard
        // (relaxed counters make the cross-PE increment safe), so the
        // exporter answers "who is everyone stealing from" per PE.
        if n > 1 {
            mesh.telem.sched_enter(me as u16, SchedState::StealSearch);
            let victim = w.next_victim(n);
            let got = mesh.deques[victim].steal_half(&mut w.batch);
            if got > 0 {
                w.steals += 1;
                let vshard = mesh.telem.pe(victim as u16);
                vshard.inc(CounterId::StolenFrom);
                vshard.add(CounterId::StolenTasks, got as u64);
                mesh.telem
                    .pe(me as u16)
                    .observe(HistId::StealBatch, got as u64);
                absorb_batch(w, mesh);
                idle_spins = 0;
                continue;
            }
            w.steal_fails += 1;
            mesh.telem.pe(victim as u16).inc(CounterId::StealMisses);
        }
        if progressed {
            idle_spins = 0;
            continue;
        }
        // 5. Nothing anywhere: quiescent, or back off adaptively.
        if mesh.quiesce.is_done() {
            mesh.telem.sched_enter(me as u16, SchedState::Quiesce);
            break;
        }
        idle_spins += 1;
        if multicore && idle_spins < 64 {
            mesh.telem.sched_enter(me as u16, SchedState::Spin);
            std::hint::spin_loop();
        } else if idle_spins < 96 {
            mesh.telem.sched_enter(me as u16, SchedState::Yield);
            std::thread::yield_now();
        } else {
            // Park with the flag raised; the post-flag re-check of the
            // mailbox closes the publish/park race, and the timeout
            // bounds any residual lost wakeup (and paces stage retries).
            // ordering: SeqCst on the flag — see the ParkSlot field docs.
            mesh.telem.sched_enter(me as u16, SchedState::Park);
            mesh.parks[me].parked.store(true, Ordering::SeqCst);
            if mesh.grid.depth(me) == 0 && mesh.deques[me].is_empty() && !mesh.quiesce.is_done() {
                mesh.telem.pe(me as u16).inc(CounterId::Parks);
                w.parks += 1;
                if mesh.telem.enabled() {
                    // The wake-latency clock read only exists in
                    // telemetry builds — the default park path stays
                    // syscall-only.
                    let t = Instant::now();
                    std::thread::park_timeout(Duration::from_micros(100));
                    mesh.telem
                        .pe(me as u16)
                        .observe(HistId::ParkWakeUs, t.elapsed().as_micros() as u64);
                } else {
                    std::thread::park_timeout(Duration::from_micros(100));
                }
            }
            // ordering: SeqCst on the flag — see the ParkSlot field docs.
            mesh.parks[me].parked.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn depth_hint_roundtrips_and_saturates() {
        let t = with_depth(0x00AB_CDEF, 5);
        assert_eq!(task_depth(t), 5);
        assert_eq!(t & 0x00FF_FFFF, 0x00AB_CDEF);
        assert_eq!(task_depth(with_depth(0, 1_000_000)), DEPTH_MAX);
        assert_eq!(task_depth(with_depth(t, 2)), 2, "restamp replaces");
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let stats = StealRuntime::new(4).run(vec![], |_, _| panic!("no tasks"));
        assert_eq!(stats, StealStats::default());
    }

    #[test]
    fn fanout_executes_every_task_exactly_once() {
        // Each task with n > 0 spawns two tasks with n - 1 on other PEs:
        // 2^(k+1) - 1 executions for initial n = k.
        for pes in [1u16, 2, 4, 8] {
            let hits = AtomicU64::new(0);
            let stats = StealRuntime::new(pes).run(vec![(PeId::new(0), 10)], |scope, n| {
                hits.fetch_add(1, Ordering::SeqCst);
                if n > 0 {
                    for t in 0..2u16 {
                        let dst = PeId::new((scope.me().raw() + t + 1) % pes.max(1));
                        scope.spawn(dst, n - 1);
                    }
                }
            });
            assert_eq!(stats.executed, (1 << 11) - 1, "{pes} PEs");
            assert_eq!(hits.load(Ordering::SeqCst), (1 << 11) - 1);
        }
    }

    #[test]
    fn local_spawns_chain_without_losing_any() {
        // A pure chain: every task spawns one local successor.
        let stats = StealRuntime::new(2).run(vec![(PeId::new(1), 5000u64)], |scope, n| {
            if n > 0 {
                let me = scope.me();
                scope.spawn(me, n - 1);
            }
        });
        assert_eq!(stats.executed, 5001);
    }

    #[test]
    fn tiny_rings_force_spill_and_staging() {
        // Deque cap 8 and mailbox cap 8 with a 2^12 fan-out exercises the
        // spill vector and the sender-side stage heavily.
        let hits = AtomicU64::new(0);
        let stats = StealRuntime::new(3)
            .with_deque_capacity(8)
            .with_mailbox_capacity(8)
            .run(vec![(PeId::new(0), 12u64)], |scope, n| {
                hits.fetch_add(1, Ordering::SeqCst);
                if n > 0 {
                    for t in 0..2u16 {
                        let dst = PeId::new((scope.me().raw() + t) % 3);
                        scope.spawn(dst, n - 1);
                    }
                }
            });
        assert_eq!(stats.executed, (1 << 13) - 1);
        assert_eq!(hits.load(Ordering::SeqCst), (1 << 13) - 1);
    }

    #[test]
    fn remote_spawns_count_envelopes() {
        let stats = StealRuntime::new(2).run(vec![(PeId::new(0), 4u64)], |scope, n| {
            if n > 0 {
                // Always hop to the other PE.
                let dst = PeId::new(1 - scope.me().raw());
                scope.spawn(dst, n - 1);
            }
        });
        assert_eq!(stats.executed, 5);
        assert_eq!(stats.envelopes, 4, "every non-seed hop crossed PEs");
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = StealRuntime::new(0);
    }
}
