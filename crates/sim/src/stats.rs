//! Delivery statistics for the simulator.

use serde::{Deserialize, Serialize};

use crate::msg::Lane;

/// Counters kept by [`DetSim`](crate::DetSim): messages sent and delivered
/// per lane, and the maximum mailbox backlog observed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    sent: [u64; 5],
    delivered: [u64; 5],
    max_depth: usize,
}

impl SimStats {
    pub(crate) fn record_send(&mut self, lane: Lane) {
        self.sent[lane.index()] += 1;
    }

    pub(crate) fn record_deliver(&mut self, lane: Lane) {
        self.delivered[lane.index()] += 1;
    }

    pub(crate) fn observe_depth(&mut self, depth: usize) {
        self.max_depth = self.max_depth.max(depth);
    }

    /// Messages sent in the given lane.
    pub fn sent(&self, lane: Lane) -> u64 {
        self.sent[lane.index()]
    }

    /// Messages delivered in the given lane.
    pub fn delivered(&self, lane: Lane) -> u64 {
        self.delivered[lane.index()]
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages delivered (executed events).
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Largest number of simultaneously pending messages observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SimStats::default();
        s.record_send(Lane::Marking);
        s.record_send(Lane::Marking);
        s.record_deliver(Lane::Marking);
        s.observe_depth(2);
        s.observe_depth(1);
        assert_eq!(s.sent(Lane::Marking), 2);
        assert_eq!(s.delivered(Lane::Marking), 1);
        assert_eq!(s.sent_total(), 2);
        assert_eq!(s.delivered_total(), 1);
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.sent(Lane::Mutator), 0);
    }
}
