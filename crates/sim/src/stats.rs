//! Delivery statistics for the simulator.

use serde::{Deserialize, Serialize};

use crate::msg::Lane;

/// Counters kept by [`DetSim`](crate::DetSim): messages sent and delivered
/// per lane and per PE, current and high-water per-lane backlogs, and the
/// maximum total mailbox backlog observed.
///
/// These are plain fields updated inline by the simulator — they are
/// always on (the `telemetry` feature only affects the shared registry
/// layer, not the simulator's own accounting).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    sent: [u64; 5],
    delivered: [u64; 5],
    max_depth: usize,
    /// Deliveries per PE; grown on demand so `Default` needs no PE count.
    per_pe_delivered: Vec<u64>,
    /// Messages currently pending per lane.
    lane_depth: [usize; 5],
    /// Largest per-lane backlog since the last
    /// [`reset_lane_high_water`](SimStats::reset_lane_high_water).
    lane_high_water: [usize; 5],
}

impl SimStats {
    pub(crate) fn record_send(&mut self, lane: Lane) {
        let l = lane.index();
        self.sent[l] += 1;
        self.lane_depth[l] += 1;
        self.lane_high_water[l] = self.lane_high_water[l].max(self.lane_depth[l]);
    }

    pub(crate) fn record_deliver(&mut self, pe: u16, lane: Lane) {
        let l = lane.index();
        self.delivered[l] += 1;
        self.lane_depth[l] -= 1;
        let p = pe as usize;
        if p >= self.per_pe_delivered.len() {
            self.per_pe_delivered.resize(p + 1, 0);
        }
        self.per_pe_delivered[p] += 1;
    }

    pub(crate) fn observe_depth(&mut self, depth: usize) {
        self.max_depth = self.max_depth.max(depth);
    }

    /// Re-derives per-lane depths after bulk mailbox surgery
    /// (expunge/relane); high-water marks are raised, never lowered.
    pub(crate) fn set_lane_depths(&mut self, depths: [usize; 5]) {
        self.lane_depth = depths;
        for (hw, d) in self.lane_high_water.iter_mut().zip(depths.iter()) {
            *hw = (*hw).max(*d);
        }
    }

    /// Messages sent in the given lane.
    pub fn sent(&self, lane: Lane) -> u64 {
        self.sent[lane.index()]
    }

    /// Messages delivered in the given lane.
    pub fn delivered(&self, lane: Lane) -> u64 {
        self.delivered[lane.index()]
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages delivered (executed events).
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Largest number of simultaneously pending messages observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Messages delivered on the given PE (0 for PEs never delivered to).
    pub fn delivered_on(&self, pe: u16) -> u64 {
        self.per_pe_delivered.get(pe as usize).copied().unwrap_or(0)
    }

    /// Messages currently pending in the given lane.
    pub fn lane_depth(&self, lane: Lane) -> usize {
        self.lane_depth[lane.index()]
    }

    /// Largest backlog the given lane has reached since the last
    /// [`reset_lane_high_water`](SimStats::reset_lane_high_water) (or ever).
    pub fn lane_high_water(&self, lane: Lane) -> usize {
        self.lane_high_water[lane.index()]
    }

    /// Restarts per-lane high-water tracking from the current depths —
    /// called at marking-cycle boundaries so each cycle reports its own
    /// backlog peak.
    pub fn reset_lane_high_water(&mut self) {
        self.lane_high_water = self.lane_depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SimStats::default();
        s.record_send(Lane::Marking);
        s.record_send(Lane::Marking);
        s.record_deliver(1, Lane::Marking);
        s.observe_depth(2);
        s.observe_depth(1);
        assert_eq!(s.sent(Lane::Marking), 2);
        assert_eq!(s.delivered(Lane::Marking), 1);
        assert_eq!(s.sent_total(), 2);
        assert_eq!(s.delivered_total(), 1);
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.sent(Lane::Mutator), 0);
        assert_eq!(s.delivered_on(1), 1);
        assert_eq!(s.delivered_on(0), 0);
        assert_eq!(s.delivered_on(9), 0, "unknown PEs read as zero");
    }

    #[test]
    fn lane_depth_tracks_and_high_water_resets() {
        let mut s = SimStats::default();
        s.record_send(Lane::Marking);
        s.record_send(Lane::Marking);
        s.record_send(Lane::Mutator);
        assert_eq!(s.lane_depth(Lane::Marking), 2);
        assert_eq!(s.lane_high_water(Lane::Marking), 2);
        s.record_deliver(0, Lane::Marking);
        s.record_deliver(0, Lane::Marking);
        assert_eq!(s.lane_depth(Lane::Marking), 0);
        assert_eq!(s.lane_high_water(Lane::Marking), 2, "high water sticks");
        s.reset_lane_high_water();
        assert_eq!(s.lane_high_water(Lane::Marking), 0);
        assert_eq!(
            s.lane_high_water(Lane::Mutator),
            1,
            "reset restarts from the current depth"
        );
    }

    #[test]
    fn set_lane_depths_never_lowers_high_water() {
        let mut s = SimStats::default();
        for _ in 0..5 {
            s.record_send(Lane::Marking);
        }
        s.set_lane_depths([0, 2, 0, 0, 0]);
        assert_eq!(s.lane_depth(Lane::Marking), 2);
        assert_eq!(s.lane_high_water(Lane::Marking), 5);
    }
}
