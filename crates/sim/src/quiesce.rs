//! The quiescence core of the work-stealing runtime: a global in-flight
//! counter plus a terminal `done` flag, extracted from `steal.rs` so the
//! deterministic model checker can explore its memory orderings under the
//! weak-memory shim.
//!
//! The protocol (see [`StealRuntime`](crate::StealRuntime) for the full
//! termination argument): every task *visible* to other workers (deque or
//! mailbox) is registered before it is published; a worker defers the
//! release of every registered task it consumed until its local backlog
//! is empty. The count reaching zero therefore proves no task exists or
//! can appear anywhere — and, crucially, the release/acquire chain
//! through the counter makes every worker's task effects visible to
//! whoever observes the zero. The seeded mutation at
//! [`Site::QuiesceRelease`] breaks exactly that chain: a premature
//! (Relaxed) decrement whose effects quiescence no longer covers.

use dgr_atomic::{AtomicBoolApi, AtomicUsizeApi, Atomics, Ordering, Site, StdAtomics};

/// In-flight registered-task counter + terminal flag. Generic over the
/// [`Atomics`] facade; production monomorphizes to [`StdAtomics`].
#[derive(Debug)]
pub struct QuiesceState<A: Atomics = StdAtomics> {
    /// Registered tasks currently in flight (seeds + published spawns).
    pending: A::Usize,
    /// Latched once `pending` reaches zero; never cleared.
    done: A::Bool,
}

impl<A: Atomics> QuiesceState<A> {
    /// Starts the protocol with `initial` registered seed tasks.
    pub fn new(initial: usize) -> Self {
        QuiesceState {
            pending: A::Usize::new(initial),
            done: A::Bool::new(false),
        }
    }

    /// Registers `n` tasks about to be published. Must happen *before*
    /// the publish, so the count never falsely dips to zero.
    pub fn register(&self, n: usize) {
        // Relaxed is sound here: the add is ordered before this worker's
        // eventual release in the counter's modification order, and the
        // task payloads synchronize through the deque/ring Release
        // stores, not through the counter.
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    /// Releases `n` consumed registered tasks; returns `true` if this
    /// release drove the count to zero (the caller then owns waking the
    /// other workers).
    pub fn release(&self, n: usize) -> bool {
        // ordering: AcqRel — the Release half orders this worker's task
        // effects before the decrement; the Acquire half makes every
        // earlier worker's effects visible to the one that reaches zero,
        // so the `done` publication below covers all of them. The seeded
        // mutation at `Site::QuiesceRelease` relaxes this RMW, and
        // `dgr-check --atomics` catches the effect leak.
        if self
            .pending
            .fetch_sub(n, A::remap(Site::QuiesceRelease, Ordering::AcqRel))
            == n
        {
            // ordering: Release republishes the accumulated effects to
            // every worker that exits on the Acquire load in `is_done`.
            self.done.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// `true` once the system is globally quiescent.
    pub fn is_done(&self) -> bool {
        // ordering: Acquire pairs with the Release in `release` — a
        // worker exiting its loop has seen every task effect.
        self.done.load(Ordering::Acquire)
    }

    /// Current registered in-flight count (debug assertions only).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_to_zero_exactly_once() {
        let q: QuiesceState = QuiesceState::new(2);
        q.register(1);
        assert!(!q.release(1));
        assert!(!q.is_done());
        assert!(!q.release(1));
        assert!(q.release(1), "last unit flips done");
        assert!(q.is_done());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn batched_release_covers_multiple_units() {
        let q: QuiesceState = QuiesceState::new(3);
        assert!(q.release(3));
        assert!(q.is_done());
    }
}
