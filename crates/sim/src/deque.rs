//! A bounded Chase–Lev work-stealing deque over `u64` entries.
//!
//! One owner pushes and pops at the *bottom* (LIFO — depth-first order
//! for the marking wave, which keeps a PE finishing the subtree it is
//! inside before touching a new one); any number of thieves steal from
//! the *top* (FIFO — the oldest, structurally shallowest task, i.e. the
//! largest remaining subtree, which is the critical-path-aware choice
//! for a thief that wants one steal to yield a long private runway).
//!
//! This is the Chase–Lev algorithm (*Dynamic Circular Work-Stealing
//! Deque*, SPAA 2005) specialized for the workspace's `unsafe_code =
//! "deny"` policy:
//!
//! * entries live in a fixed ring of `AtomicU64` cells, so publication
//!   and theft need no raw-pointer buffer swaps — a cell read is always
//!   a defined value, and the index protocol alone decides validity;
//! * the ring does **not** grow: `push` fails when `bottom - top`
//!   reaches capacity and the caller keeps the task in a private
//!   (unshared, unstealable) spill — overflow costs stealability, never
//!   correctness;
//! * the owner's `pop`/thief `steal` race on the last element is
//!   resolved by the canonical CAS on `top`. The handful of
//!   cross-thread edges use SeqCst rather than the fence-based original:
//!   the algorithm's correctness argument needs the owner's
//!   bottom-decrement and the thief's top-read to be totally ordered,
//!   and a `SeqCst` store/load pair expresses that directly (it is also
//!   what ThreadSanitizer can reason about, which keeps the nightly TSan
//!   job's steal-interleaving test meaningful).
//!
//! Why single-entry steals are the only sound batch primitive here: a
//! thief that reads entries `t..t+k` *before* CASing `top` can double
//! execute work the owner popped meanwhile; one that CASes first can
//! read cells the owner has already rewritten after a wrap. Stealing
//! half therefore loops the one-entry protocol — each CAS transfers
//! exactly one validated entry — which costs k CASes but amortizes: the
//! thief's private runway after a half-steal is long.

use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded work-stealing deque of `u64` tasks. See the module docs for
/// the protocol; capacity is rounded up to a power of two.
#[derive(Debug)]
pub struct StealDeque {
    buf: Box<[AtomicU64]>,
    mask: u64,
    /// Next index a thief would steal (only ever incremented).
    top: AtomicU64,
    /// Next index the owner would push (written only by the owner).
    bottom: AtomicU64,
}

impl StealDeque {
    /// Creates a deque holding at most `capacity` entries (rounded up to
    /// a power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        StealDeque {
            buf: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: (cap - 1) as u64,
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Entries currently in the ring (approximate under concurrency;
    /// exact when only the owner is active).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        b.saturating_sub(t) as usize
    }

    /// `true` when no entries are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes a task at the bottom. Returns the task back
    /// when the ring is full (the caller spills it privately).
    pub fn push(&self, task: u64) -> Result<(), u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as u64 {
            return Err(task);
        }
        self.buf[(b & self.mask) as usize].store(task, Ordering::Relaxed);
        // Publish the entry: thieves read `bottom` with Acquire (inside
        // the SeqCst load) and then the cell, pairing with this Release.
        self.bottom.store(b + 1, Ordering::SeqCst);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed task, racing thieves
    /// for the last entry.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        if b == t {
            return None; // empty (top never exceeds bottom for the owner)
        }
        let b = b - 1;
        // The SeqCst store/load pair below is the heart of Chase–Lev:
        // either a concurrent thief sees the decremented bottom and backs
        // off, or the owner sees the thief's advanced top and takes the
        // CAS path.
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // More than one entry left: the bottom one is ours alone.
            return Some(self.buf[(b & self.mask) as usize].load(Ordering::Relaxed));
        }
        let result = if t == b {
            // Exactly one entry: race any thief for it via `top`.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                Some(self.buf[(b & self.mask) as usize].load(Ordering::Relaxed))
            } else {
                None
            }
        } else {
            None
        };
        // Restore the canonical empty state bottom == top.
        self.bottom.store(t + 1, Ordering::SeqCst);
        result
    }

    /// Thief: steals the oldest task, or reports why it could not.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Read the cell before claiming it: if the CAS succeeds, no other
        // thief took index `t`, and the owner cannot have rewritten the
        // cell (a wrap needs `bottom - top` to reach capacity, which
        // `push` rejects while `top` is still `t`).
        let task = self.buf[(t & self.mask) as usize].load(Ordering::Relaxed);
        match self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Steal::Success(task),
            Err(_) => Steal::Retry,
        }
    }

    /// Thief: steals up to half of the visible entries (at least one)
    /// into `out`, one validated entry per CAS. Returns how many were
    /// taken; stops at the first lost race so contended thieves spread
    /// to other victims instead of fighting.
    pub fn steal_half(&self, out: &mut Vec<u64>) -> usize {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return 0;
        }
        let want = (b - t).div_ceil(2);
        let mut got = 0;
        while got < want {
            match self.steal() {
                Steal::Success(task) => {
                    out.push(task);
                    got += 1;
                }
                _ => break,
            }
        }
        got as usize
    }
}

/// Outcome of a [`StealDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task was transferred to the thief.
    Success(u64),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = StealDeque::new(8);
        for v in 1..=3 {
            q.push(v).unwrap();
        }
        assert_eq!(q.steal(), Steal::Success(1), "thief takes the oldest");
        assert_eq!(q.pop(), Some(3), "owner takes the newest");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full_and_resumes_after_drain() {
        let q = StealDeque::new(8);
        for v in 0..8 {
            q.push(v).unwrap();
        }
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.steal(), Steal::Success(0));
        q.push(99).unwrap();
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn steal_half_takes_about_half() {
        let q = StealDeque::new(32);
        for v in 0..10 {
            q.push(v).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.steal_half(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
    }

    /// One owner pushing + popping, three thieves stealing: every pushed
    /// value is consumed exactly once. This is the steal-vs-pop
    /// interleaving surface the nightly TSan job replays.
    #[test]
    fn concurrent_steal_vs_pop_loses_and_duplicates_nothing() {
        const N: u64 = 20_000;
        let q = StealDeque::new(1024);
        let stop = AtomicBool::new(false);
        let seen: Vec<AtomicU64> = (0..N).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut batch = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        batch.clear();
                        if q.steal_half(&mut batch) == 0 {
                            std::hint::spin_loop();
                        }
                        for &v in &batch {
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // Owner: push everything (spilling on full), popping to make
            // room, interleaving pops with pushes to exercise the
            // last-element race.
            let mut next = 0u64;
            let mut spill: Vec<u64> = Vec::new();
            while next < N || !spill.is_empty() {
                if next < N {
                    match q.push(next) {
                        Ok(()) => {}
                        Err(v) => spill.push(v),
                    }
                    next += 1;
                } else if let Some(v) = spill.pop() {
                    if let Err(v) = q.push(v) {
                        spill.push(v);
                    }
                }
                if next.is_multiple_of(3) || (next >= N && !spill.is_empty()) {
                    if let Some(v) = q.pop() {
                        seen[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = q.pop() {
                seen[v as usize].fetch_add(1, Ordering::Relaxed);
            }
            // Thieves drain any leftovers they raced us for.
            loop {
                match q.steal() {
                    Steal::Success(v) => {
                        seen[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
            stop.store(true, Ordering::Release);
        });
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "value {v} consumed a wrong number of times"
            );
        }
    }
}
