//! A bounded Chase–Lev work-stealing deque over `u64` entries.
//!
//! One owner pushes and pops at the *bottom* (LIFO — depth-first order
//! for the marking wave, which keeps a PE finishing the subtree it is
//! inside before touching a new one); any number of thieves steal from
//! the *top* (FIFO — the oldest, structurally shallowest task, i.e. the
//! largest remaining subtree, which is the critical-path-aware choice
//! for a thief that wants one steal to yield a long private runway).
//!
//! This is the Chase–Lev algorithm (*Dynamic Circular Work-Stealing
//! Deque*, SPAA 2005) specialized for the workspace's `unsafe_code =
//! "deny"` policy:
//!
//! * entries live in a fixed ring of atomic cells, so publication and
//!   theft need no raw-pointer buffer swaps — a cell read is always a
//!   defined value, and the index protocol alone decides validity;
//! * the ring does **not** grow: `push` fails when `bottom - top`
//!   reaches capacity and the caller keeps the task in a private
//!   (unshared, unstealable) spill — overflow costs stealability, never
//!   correctness;
//! * the owner's `pop`/thief `steal` race on the last element is
//!   resolved by the canonical CAS on `top`. The one genuinely
//!   sequentially-consistent edge is the owner's bottom-decrement vs the
//!   thief's bottom-read: each side must observe the other's SeqCst
//!   write or lose the race, which a store/load pair at SeqCst expresses
//!   directly.
//!
//! The deque is generic over the [`Atomics`] facade: production
//! monomorphizes to [`StdAtomics`] (i.e. literally `std::sync::atomic`,
//! see `zero_cost_facade.rs` in `dgr-check`), while the deterministic
//! model checker instantiates the same code with its weak-memory shims
//! and explores the orderings below exhaustively — including the seeded
//! mutations at [`Site::DequeBottomPublish`] and [`Site::DequeLastElem`],
//! which `dgr-check --atomics` must catch.
//!
//! Why single-entry steals are the only sound batch primitive here: a
//! thief that reads entries `t..t+k` *before* CASing `top` can double
//! execute work the owner popped meanwhile; one that CASes first can
//! read cells the owner has already rewritten after a wrap. Stealing
//! half therefore loops the one-entry protocol — each CAS transfers
//! exactly one validated entry — which costs k CASes but amortizes: the
//! thief's private runway after a half-steal is long.

use dgr_atomic::{AtomicU64Api, Atomics, Ordering, Site, StdAtomics};

/// A bounded work-stealing deque of `u64` tasks. See the module docs for
/// the protocol; capacity is rounded up to a power of two.
#[derive(Debug)]
pub struct StealDeque<A: Atomics = StdAtomics> {
    buf: Box<[A::U64]>,
    mask: u64,
    /// Next index a thief would steal (only ever incremented).
    top: A::U64,
    /// Next index the owner would push (written only by the owner).
    bottom: A::U64,
}

impl<A: Atomics> StealDeque<A> {
    /// Creates a deque holding at most `capacity` entries (rounded up to
    /// a power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        StealDeque {
            buf: (0..cap).map(|_| A::U64::new(0)).collect(),
            mask: (cap - 1) as u64,
            top: A::U64::new(0),
            bottom: A::U64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Entries currently in the ring (approximate under concurrency;
    /// exact when only the owner is active). Relaxed is enough: the value
    /// is advisory by spec, and both indices are monotonic so a stale
    /// read only misjudges the window, never the protocol.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t) as usize
    }

    /// `true` when no entries are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes a task at the bottom. Returns the task back
    /// when the ring is full (the caller spills it privately).
    pub fn push(&self, task: u64) -> Result<(), u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the thief's CAS on `top` — seeing
        // an advanced top here means that steal's cell read is done, so
        // overwriting the slot after the full-check is safe.
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as u64 {
            return Err(task);
        }
        self.buf[(b & self.mask) as usize].store(task, Ordering::Relaxed);
        // ordering: Release publishes the cell write above to any thief
        // that observes the incremented bottom (the thief's bottom load
        // is its Acquire counterpart). Downgraded from SeqCst in the PR 7
        // audit: push participates in no store/load race, publication is
        // all it needs — `dgr-check --atomics` explores this clean and
        // catches the seeded Relaxed mutation at this site.
        self.bottom
            .store(b + 1, A::remap(Site::DequeBottomPublish, Ordering::Release));
        Ok(())
    }

    /// Owner-only: pops the most recently pushed task, racing thieves
    /// for the last entry.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        if b == t {
            return None; // empty (top never exceeds bottom for the owner)
        }
        let b = b - 1;
        // ordering: SeqCst store/load pair — the heart of Chase–Lev.
        // Either a concurrent thief's SeqCst bottom-read sees this
        // decrement and backs off, or this owner's SeqCst top-read sees
        // the thief's advanced top and takes the CAS path; a weaker pair
        // lets both miss each other (the classic store-buffering shape)
        // and the last element execute twice. The seeded mutation at
        // `Site::DequeLastElem` relaxes exactly this store.
        self.bottom
            .store(b, A::remap(Site::DequeLastElem, Ordering::SeqCst));
        // ordering: SeqCst — the load half of the pair above.
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // More than one entry left: the bottom one is ours alone.
            return Some(self.buf[(b & self.mask) as usize].load(Ordering::Relaxed));
        }
        let result = if t == b {
            // Exactly one entry: race any thief for it via `top`.
            // ordering: SeqCst success keeps the CAS in the single total
            // order the race argument needs; Relaxed failure is enough
            // because the loser uses nothing from the returned value.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Some(self.buf[(b & self.mask) as usize].load(Ordering::Relaxed))
            } else {
                None
            }
        } else {
            None
        };
        // Restore the pre-decrement bottom: on both race exits top has
        // reached `b + 1` (our CAS or the thief's), so this is the
        // canonical empty state bottom == top. Restoring `t + 1` here —
        // as this code did before the model checker existed — is a
        // phantom-element bug: in the lost-to-a-thief path `t` is already
        // `b + 1`, and `t + 1` leaves bottom one past top, so a later pop
        // "finds" a cell nobody pushed. `dgr-check -- atomics` flags that
        // variant in its smallest steal-vs-pop scenario.
        // ordering: SeqCst, totally ordered with the thieves' CASes so a
        // later steal cannot see bottom behind top.
        self.bottom.store(b + 1, Ordering::SeqCst);
        result
    }

    /// Thief: steals the oldest task, or reports why it could not.
    pub fn steal(&self) -> Steal {
        // ordering: Acquire is enough for the top read — a stale top only
        // makes the CAS below fail (downgraded from SeqCst in the PR 7
        // audit; the model checker explores the downgrade clean).
        let t = self.top.load(Ordering::Acquire);
        // ordering: SeqCst — the thief's half of the Chase–Lev pair: it
        // must see an owner's SeqCst bottom-decrement, or the owner will
        // see this thief's SeqCst CAS. `Site::DequeLastElem` names the
        // whole pair — the seeded mutation relaxes this load together
        // with pop's decrement store, and the checker answers with an
        // owner fast-path/stale-bottom double execution.
        let b = self
            .bottom
            .load(A::remap(Site::DequeLastElem, Ordering::SeqCst));
        if t >= b {
            return Steal::Empty;
        }
        // Read the cell before claiming it: if the CAS succeeds, no other
        // thief took index `t`, and the owner cannot have rewritten the
        // cell (a wrap needs `bottom - top` to reach capacity, which
        // `push` rejects while `top` is still `t`).
        let task = self.buf[(t & self.mask) as usize].load(Ordering::Relaxed);
        // ordering: SeqCst success joins the total order with the owner's
        // pop path; Relaxed failure — the loser retries from scratch.
        match self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        {
            Ok(_) => Steal::Success(task),
            Err(_) => Steal::Retry,
        }
    }

    /// Thief: steals up to half of the visible entries (at least one)
    /// into `out`, one validated entry per CAS. Returns how many were
    /// taken; stops at the first lost race so contended thieves spread
    /// to other victims instead of fighting.
    pub fn steal_half(&self, out: &mut Vec<u64>) -> usize {
        // Relaxed peek: `want` is only a batching heuristic — every
        // transfer below revalidates through the full steal protocol.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        if t >= b {
            return 0;
        }
        let want = (b - t).div_ceil(2);
        let mut got = 0;
        while got < want {
            match self.steal() {
                Steal::Success(task) => {
                    out.push(task);
                    got += 1;
                }
                _ => break,
            }
        }
        got as usize
    }
}

/// Outcome of a [`StealDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task was transferred to the thief.
    Success(u64),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q: StealDeque = StealDeque::new(8);
        for v in 1..=3 {
            q.push(v).unwrap();
        }
        assert_eq!(q.steal(), Steal::Success(1), "thief takes the oldest");
        assert_eq!(q.pop(), Some(3), "owner takes the newest");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full_and_resumes_after_drain() {
        let q: StealDeque = StealDeque::new(8);
        for v in 0..8 {
            q.push(v).unwrap();
        }
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.steal(), Steal::Success(0));
        q.push(99).unwrap();
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn steal_half_takes_about_half() {
        let q: StealDeque = StealDeque::new(32);
        for v in 0..10 {
            q.push(v).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.steal_half(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
    }

    /// One owner pushing + popping, three thieves stealing: every pushed
    /// value is consumed exactly once. This is the steal-vs-pop
    /// interleaving surface the nightly TSan job replays (and which
    /// `dgr-check --atomics` explores under the weak-memory shim).
    #[test]
    fn concurrent_steal_vs_pop_loses_and_duplicates_nothing() {
        const N: u64 = 20_000;
        let q: StealDeque = StealDeque::new(1024);
        let stop = AtomicBool::new(false);
        let seen: Vec<AtomicU64> = (0..N).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut batch = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        batch.clear();
                        if q.steal_half(&mut batch) == 0 {
                            std::hint::spin_loop();
                        }
                        for &v in &batch {
                            seen[v as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
            // Owner: push everything (spilling on full), popping to make
            // room, interleaving pops with pushes to exercise the
            // last-element race.
            let mut next = 0u64;
            let mut spill: Vec<u64> = Vec::new();
            while next < N || !spill.is_empty() {
                if next < N {
                    match q.push(next) {
                        Ok(()) => {}
                        Err(v) => spill.push(v),
                    }
                    next += 1;
                } else if let Some(v) = spill.pop() {
                    if let Err(v) = q.push(v) {
                        spill.push(v);
                    }
                }
                if next.is_multiple_of(3) || (next >= N && !spill.is_empty()) {
                    if let Some(v) = q.pop() {
                        seen[v as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = q.pop() {
                seen[v as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            // Thieves drain any leftovers they raced us for.
            loop {
                match q.steal() {
                    Steal::Success(v) => {
                        seen[v as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "value {v} consumed a wrong number of times"
            );
        }
    }
}
