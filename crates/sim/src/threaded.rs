//! The threaded runtime: one OS thread per PE, channel mailboxes, and
//! quiescence-based termination.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dgr_graph::PeId;

use crate::msg::Envelope;

enum WorkItem<M> {
    Msg(M),
    Stop,
}

/// Handle a PE-thread handler uses to send messages to other PEs.
///
/// Sends are counted: the runtime shuts down when every sent message has
/// been handled and no handler is running (global quiescence). This mirrors
/// how the marking algorithm is its own termination detector — `done`
/// becomes true — while the runtime-level counter catches handler bugs that
/// would otherwise hang the system.
pub struct ThreadCtx<M> {
    senders: Arc<Vec<Sender<WorkItem<M>>>>,
    pending: Arc<AtomicUsize>,
    me: PeId,
}

impl<M> ThreadCtx<M> {
    /// Sends a message to another PE (or to this one).
    pub fn send(&self, env: Envelope<M>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Unbounded channel: send can only fail if the receiver is gone,
        // which cannot happen before quiescence.
        self.senders[env.dst.index()]
            .send(WorkItem::Msg(env.msg))
            .expect("receiver alive until quiescence");
    }

    /// The PE this handler is running on.
    pub fn me(&self) -> PeId {
        self.me
    }

    /// Number of PEs in the system.
    pub fn num_pes(&self) -> usize {
        self.senders.len()
    }
}

/// A real parallel runtime: one worker thread per PE.
///
/// [`ThreadedRuntime::run`] delivers the initial messages, lets handlers
/// exchange messages until the system is quiescent, and returns the number
/// of messages handled.
///
/// # Example
///
/// ```
/// use dgr_graph::PeId;
/// use dgr_sim::{Envelope, Lane, ThreadedRuntime};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // A token bounces through all 4 PEs, incrementing a counter.
/// let hits = AtomicU64::new(0);
/// let handled = ThreadedRuntime::new(4).run(
///     vec![Envelope::new(PeId::new(0), Lane::Marking, 0u16)],
///     |ctx, hop: u16| {
///         hits.fetch_add(1, Ordering::SeqCst);
///         if hop < 3 {
///             let next = PeId::new((ctx.me().raw() + 1) % 4);
///             ctx.send(Envelope::new(next, Lane::Marking, hop + 1));
///         }
///     },
/// );
/// assert_eq!(handled, 4);
/// assert_eq!(hits.load(Ordering::SeqCst), 4);
/// ```
#[derive(Debug)]
pub struct ThreadedRuntime {
    num_pes: u16,
}

impl ThreadedRuntime {
    /// Creates a runtime with `num_pes` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        ThreadedRuntime { num_pes }
    }

    /// Runs `handler` on every delivered message until global quiescence.
    /// Returns the total number of messages handled.
    ///
    /// The handler runs on the destination PE's thread. It may send further
    /// messages through the [`ThreadCtx`]; shared state (e.g. a
    /// [`SharedGraph`](crate::SharedGraph)) is captured by the closure.
    pub fn run<M, F>(&self, initial: Vec<Envelope<M>>, handler: F) -> u64
    where
        M: Send + 'static,
        F: Fn(&ThreadCtx<M>, M) + Sync,
    {
        let n = self.num_pes as usize;
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<WorkItem<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let pending = Arc::new(AtomicUsize::new(0));
        let handled_total = AtomicUsize::new(0);

        // Seed the mailboxes before any worker starts.
        pending.fetch_add(initial.len(), Ordering::SeqCst);
        for env in initial {
            senders[env.dst.index()]
                .send(WorkItem::Msg(env.msg))
                .expect("fresh channel");
        }
        if pending.load(Ordering::SeqCst) == 0 {
            return 0;
        }

        std::thread::scope(|scope| {
            for (i, rx) in receivers.into_iter().enumerate() {
                let ctx = ThreadCtx {
                    senders: Arc::clone(&senders),
                    pending: Arc::clone(&pending),
                    me: PeId::new(i as u16),
                };
                let handler = &handler;
                let handled_total = &handled_total;
                scope.spawn(move || {
                    while let Ok(item) = rx.recv() {
                        match item {
                            WorkItem::Stop => break,
                            WorkItem::Msg(m) => {
                                handler(&ctx, m);
                                handled_total.fetch_add(1, Ordering::SeqCst);
                                // This message is done; if it was the last
                                // in-flight message anywhere, wake everyone
                                // up for shutdown.
                                if ctx.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    for s in ctx.senders.iter() {
                                        let _ = s.send(WorkItem::Stop);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        handled_total.load(Ordering::SeqCst) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Lane;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_initial_returns_immediately() {
        let rt = ThreadedRuntime::new(2);
        let handled = rt.run(Vec::<Envelope<u32>>::new(), |_, _| {});
        assert_eq!(handled, 0);
    }

    #[test]
    fn fanout_messages_all_handled() {
        // Each message with n > 0 spawns two messages with n - 1:
        // total handled = 2^(k+1) - 1 for initial n = k.
        let rt = ThreadedRuntime::new(4);
        let handled = rt.run(
            vec![Envelope::new(PeId::new(0), Lane::Marking, 5u32)],
            |ctx, n| {
                if n > 0 {
                    for t in 0..2 {
                        let dst = PeId::new(((ctx.me().raw() as u32 + t + 1) % 4) as u16);
                        ctx.send(Envelope::new(dst, Lane::Marking, n - 1));
                    }
                }
            },
        );
        assert_eq!(handled, (1 << 6) - 1);
    }

    #[test]
    fn work_is_distributed_across_pes() {
        let per_pe: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let rt = ThreadedRuntime::new(4);
        let initial: Vec<_> = (0..64)
            .map(|i| Envelope::new(PeId::new(i % 4), Lane::Marking, i as u32))
            .collect();
        rt.run(initial, |ctx, _| {
            per_pe[ctx.me().index()].fetch_add(1, Ordering::SeqCst);
        });
        for c in &per_pe {
            assert_eq!(c.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn ctx_reports_topology() {
        let rt = ThreadedRuntime::new(3);
        rt.run(
            vec![Envelope::new(PeId::new(2), Lane::Marking, ())],
            |ctx, ()| {
                assert_eq!(ctx.me(), PeId::new(2));
                assert_eq!(ctx.num_pes(), 3);
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = ThreadedRuntime::new(0);
    }
}
