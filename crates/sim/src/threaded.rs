//! The threaded runtime: one OS thread per PE, channel mailboxes, and
//! quiescence-based termination.
//!
//! Cross-PE traffic is **batched**: messages a handler sends are staged in
//! a per-thread outbox and flushed as one work item per destination PE
//! when the handler's work item completes. This turns the per-message
//! channel-send + counter round-trip into a per-batch one, which is the
//! difference between the runtime's overhead scaling with message count
//! and scaling with handler activations.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::TryRecvError;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dgr_graph::PeId;
use dgr_telemetry::{CounterId, FlowTag, GaugeId, HeartbeatHandle, HistId, Phase, Registry};

use crate::msg::{Envelope, Lane};

/// Work items carry each message with its causal flow tag, stamped at
/// send and resolved at delivery. [`FlowTag`] is zero-sized in a default
/// (no-`telemetry`) build, so `(FlowTag, M)` is layout-identical to `M`
/// and the tagging costs nothing — `telemetry_off.rs` pins this.
enum WorkItem<M> {
    Msg(FlowTag, M),
    Batch(Vec<(FlowTag, M)>),
    Stop,
}

impl<M> WorkItem<M> {
    fn from_batch(mut batch: Vec<(FlowTag, M)>) -> Self {
        if batch.len() == 1 {
            let (tag, m) = batch.pop().expect("len 1");
            WorkItem::Msg(tag, m)
        } else {
            WorkItem::Batch(batch)
        }
    }
}

/// Phase a threaded-runtime send is attributed to, by lane: marking
/// traffic is the `M_R` wave, everything else is mutator work. (At
/// delivery the lane is gone — batches are per-destination, not
/// per-lane — so receives use [`Phase::Mutate`]; the flow edge itself
/// still links the two ends.)
fn lane_phase(lane: Lane) -> Phase {
    match lane {
        Lane::Marking => Phase::Mr,
        _ => Phase::Mutate,
    }
}

/// Handle a PE-thread handler uses to send messages to other PEs.
///
/// Sends are staged in a per-thread outbox and flushed — one batch per
/// destination PE — after the current work item's handler invocations
/// finish. The in-flight **work item** count drives shutdown: the runtime
/// stops when every item has been consumed and nothing was flushed
/// (global quiescence). This mirrors how the marking algorithm is its own
/// termination detector — `done` becomes true — while the runtime-level
/// counter catches handler bugs that would otherwise hang the system.
pub struct ThreadCtx<'t, M> {
    senders: Arc<Vec<Sender<WorkItem<M>>>>,
    /// In-flight work items (batches), **not** messages. Invariant: a
    /// batch is registered (fetch_add) before the item that spawned it is
    /// released (fetch_sub in the worker loop), so the count can only
    /// reach zero when no work exists anywhere.
    pending: Arc<AtomicUsize>,
    me: PeId,
    /// Per-destination staging buffers; drained by `flush`. Strictly
    /// thread-local (each worker owns its ctx), hence `RefCell`.
    outbox: RefCell<Vec<Vec<(FlowTag, M)>>>,
    /// Telemetry registry — the zero-sized no-op unless the runtime was
    /// entered through [`ThreadedRuntime::run_with`] in a `telemetry`
    /// build, so every call through it compiles away by default.
    telem: &'t Registry,
}

impl<M> ThreadCtx<'_, M> {
    /// Sends a message to another PE (or to this one). The message is
    /// staged and delivered when the current work item completes.
    pub fn send(&self, env: Envelope<M>) {
        self.telem.pe(self.me.raw()).inc(if env.dst == self.me {
            CounterId::SendsLocal
        } else {
            CounterId::SendsRemote
        });
        let tag = self
            .telem
            .flow_send_tag(self.me.raw(), 0, lane_phase(env.lane), "msg");
        self.outbox.borrow_mut()[env.dst.index()].push((tag, env.msg));
    }

    /// Flushes the outbox: one work item per destination PE with staged
    /// messages. Called by the worker loop after handling a work item,
    /// **before** that item's `pending` decrement (see `pending`).
    fn flush(&self) {
        let mut outbox = self.outbox.borrow_mut();
        for (dst, buf) in outbox.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let batch = std::mem::take(buf);
            let shard = self.telem.pe(self.me.raw());
            shard.inc(CounterId::Batches);
            shard.observe(HistId::BatchSize, batch.len() as u64);
            let depth = self
                .telem
                .pe(dst as u16)
                .gauge_add(GaugeId::MailboxDepth, batch.len() as i64);
            self.telem
                .pe(dst as u16)
                .gauge_max(GaugeId::MailboxHighWater, depth);
            // Relaxed suffices: this add is ordered before our caller's
            // fetch_sub on the same atomic (single modification order),
            // and the receiving worker observes the batch through the
            // channel, which synchronizes the message payloads.
            self.pending.fetch_add(1, Ordering::Relaxed);
            // Unbounded channel: send can only fail if the receiver is
            // gone, which cannot happen before quiescence.
            self.senders[dst]
                .send(WorkItem::from_batch(batch))
                .expect("receiver alive until quiescence");
        }
    }

    /// The PE this handler is running on.
    pub fn me(&self) -> PeId {
        self.me
    }

    /// Number of PEs in the system.
    pub fn num_pes(&self) -> usize {
        self.senders.len()
    }

    /// The telemetry registry the runtime was entered with (the no-op
    /// registry under [`ThreadedRuntime::run`]).
    pub fn telemetry(&self) -> &Registry {
        self.telem
    }
}

/// A real parallel runtime: one worker thread per PE.
///
/// [`ThreadedRuntime::run`] delivers the initial messages, lets handlers
/// exchange messages until the system is quiescent, and returns the number
/// of messages handled.
///
/// # Example
///
/// ```
/// use dgr_graph::PeId;
/// use dgr_sim::{Envelope, Lane, ThreadedRuntime};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // A token bounces through all 4 PEs, incrementing a counter.
/// let hits = AtomicU64::new(0);
/// let handled = ThreadedRuntime::new(4).run(
///     vec![Envelope::new(PeId::new(0), Lane::Marking, 0u16)],
///     |ctx, hop: u16| {
///         hits.fetch_add(1, Ordering::SeqCst);
///         if hop < 3 {
///             let next = PeId::new((ctx.me().raw() + 1) % 4);
///             ctx.send(Envelope::new(next, Lane::Marking, hop + 1));
///         }
///     },
/// );
/// assert_eq!(handled, 4);
/// assert_eq!(hits.load(Ordering::SeqCst), 4);
/// ```
#[derive(Debug)]
pub struct ThreadedRuntime {
    num_pes: u16,
}

impl ThreadedRuntime {
    /// Creates a runtime with `num_pes` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: u16) -> Self {
        assert!(num_pes > 0, "a system needs at least one PE");
        ThreadedRuntime { num_pes }
    }

    /// Runs `handler` on every delivered message until global quiescence.
    /// Returns the total number of messages handled (messages inside a
    /// batch count individually).
    ///
    /// The handler runs on the destination PE's thread. It may send further
    /// messages through the [`ThreadCtx`]; shared state (e.g. a
    /// [`SharedGraph`](crate::SharedGraph)) is captured by the closure.
    pub fn run<M, F>(&self, initial: Vec<Envelope<M>>, handler: F) -> u64
    where
        M: Send + 'static,
        F: Fn(&ThreadCtx<'_, M>, M) + Sync,
    {
        self.run_with(initial, handler, &Registry::new(self.num_pes))
    }

    /// [`ThreadedRuntime::run`] with an explicit telemetry registry.
    ///
    /// Per work item, the destination PE's shard records handled-message
    /// counts, mailbox depth (and its high-water mark), empty-mailbox
    /// parks, batch counts/sizes, and local vs. remote sends. In a
    /// default (no-`telemetry`) build the registry is the zero-sized
    /// no-op and every recording call compiles away.
    pub fn run_with<M, F>(&self, initial: Vec<Envelope<M>>, handler: F, telem: &Registry) -> u64
    where
        M: Send + 'static,
        F: Fn(&ThreadCtx<'_, M>, M) + Sync,
    {
        self.run_observed(initial, handler, telem, &HeartbeatHandle::default())
    }

    /// [`ThreadedRuntime::run_with`] plus a liveness pulse: every handled
    /// work item beats `hb` with its message count, so an external
    /// watchdog (the `dgr-observe` plane) can tell a stalled run from a
    /// long one. The default handle is the feature-selected facade — the
    /// zero-sized no-op without `telemetry` — making this exactly
    /// [`ThreadedRuntime::run_with`] in a default build.
    pub fn run_observed<M, F>(
        &self,
        initial: Vec<Envelope<M>>,
        handler: F,
        telem: &Registry,
        hb: &HeartbeatHandle,
    ) -> u64
    where
        M: Send + 'static,
        F: Fn(&ThreadCtx<'_, M>, M) + Sync,
    {
        let n = self.num_pes as usize;
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<WorkItem<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let pending = Arc::new(AtomicUsize::new(0));
        let handled_total = AtomicU64::new(0);

        // Seed the mailboxes before any worker starts: one batch per
        // destination PE with initial messages. Seed flows are stamped
        // on their destination PE — there is no sending PE yet.
        let mut seeds: Vec<Vec<(FlowTag, M)>> = (0..n).map(|_| Vec::new()).collect();
        for env in initial {
            let tag = telem.flow_send_tag(env.dst.raw(), 0, lane_phase(env.lane), "msg");
            seeds[env.dst.index()].push((tag, env.msg));
        }
        let mut seeded = false;
        for (dst, batch) in seeds.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            seeded = true;
            let depth = telem
                .pe(dst as u16)
                .gauge_add(GaugeId::MailboxDepth, batch.len() as i64);
            telem
                .pe(dst as u16)
                .gauge_max(GaugeId::MailboxHighWater, depth);
            pending.fetch_add(1, Ordering::SeqCst);
            senders[dst]
                .send(WorkItem::from_batch(batch))
                .expect("fresh channel");
        }
        if !seeded {
            return 0;
        }

        std::thread::scope(|scope| {
            for (i, rx) in receivers.into_iter().enumerate() {
                let ctx = ThreadCtx {
                    senders: Arc::clone(&senders),
                    pending: Arc::clone(&pending),
                    me: PeId::new(i as u16),
                    outbox: RefCell::new((0..n).map(|_| Vec::new()).collect()),
                    telem,
                };
                let handler = &handler;
                let handled_total = &handled_total;
                scope.spawn(move || {
                    loop {
                        // With telemetry on, distinguish "work was already
                        // waiting" from "the mailbox was empty and the
                        // worker parked"; without it, `enabled()` is a
                        // compile-time `false` and this is a plain recv.
                        let received = if ctx.telem.enabled() {
                            match rx.try_recv() {
                                Ok(item) => Ok(item),
                                Err(TryRecvError::Empty) => {
                                    ctx.telem.pe(ctx.me.raw()).inc(CounterId::Parks);
                                    rx.recv().map_err(|_| ())
                                }
                                Err(TryRecvError::Disconnected) => Err(()),
                            }
                        } else {
                            rx.recv().map_err(|_| ())
                        };
                        let Ok(item) = received else { break };
                        let msgs = match item {
                            WorkItem::Stop => break,
                            WorkItem::Msg(tag, m) => {
                                ctx.telem
                                    .flow_recv_tag(ctx.me.raw(), 0, Phase::Mutate, "msg", tag);
                                handler(&ctx, m);
                                1
                            }
                            WorkItem::Batch(batch) => {
                                let len = batch.len() as u64;
                                for (tag, m) in batch {
                                    ctx.telem.flow_recv_tag(
                                        ctx.me.raw(),
                                        0,
                                        Phase::Mutate,
                                        "msg",
                                        tag,
                                    );
                                    handler(&ctx, m);
                                }
                                len
                            }
                        };
                        let shard = ctx.telem.pe(ctx.me.raw());
                        shard.add(CounterId::Tasks, msgs);
                        shard.gauge_add(GaugeId::MailboxDepth, -(msgs as i64));
                        // One beat per work item (not per message): the
                        // pulse's clock read stays off the per-message
                        // path, and a no-op handle compiles this away.
                        hb.progress(msgs);
                        // Relaxed: only read after thread::scope joins,
                        // which synchronizes all workers' writes.
                        handled_total.fetch_add(msgs, Ordering::Relaxed);
                        // Register everything this item spawned *before*
                        // releasing the item itself, so `pending` never
                        // falsely dips to zero.
                        ctx.flush();
                        // AcqRel: the release half orders this worker's
                        // effects before the count reaching zero; the
                        // acquire half makes the thread that observes zero
                        // see every other worker's released effects.
                        if ctx.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                            for s in ctx.senders.iter() {
                                let _ = s.send(WorkItem::Stop);
                            }
                        }
                    }
                });
            }
        });
        handled_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Lane;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_initial_returns_immediately() {
        let rt = ThreadedRuntime::new(2);
        let handled = rt.run(Vec::<Envelope<u32>>::new(), |_, _| {});
        assert_eq!(handled, 0);
    }

    #[test]
    fn fanout_messages_all_handled() {
        // Each message with n > 0 spawns two messages with n - 1:
        // total handled = 2^(k+1) - 1 for initial n = k.
        let rt = ThreadedRuntime::new(4);
        let handled = rt.run(
            vec![Envelope::new(PeId::new(0), Lane::Marking, 5u32)],
            |ctx, n| {
                if n > 0 {
                    for t in 0..2 {
                        let dst = PeId::new(((ctx.me().raw() as u32 + t + 1) % 4) as u16);
                        ctx.send(Envelope::new(dst, Lane::Marking, n - 1));
                    }
                }
            },
        );
        assert_eq!(handled, (1 << 6) - 1);
    }

    #[test]
    fn work_is_distributed_across_pes() {
        let per_pe: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let rt = ThreadedRuntime::new(4);
        let initial: Vec<_> = (0..64)
            .map(|i| Envelope::new(PeId::new(i % 4), Lane::Marking, i as u32))
            .collect();
        rt.run(initial, |ctx, _| {
            per_pe[ctx.me().index()].fetch_add(1, Ordering::SeqCst);
        });
        for c in &per_pe {
            assert_eq!(c.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn batched_sends_deliver_every_message() {
        // Every handled message fans out to all PEs at once, exercising
        // multi-destination flushes and multi-message batches.
        let rt = ThreadedRuntime::new(4);
        let handled = rt.run(
            vec![Envelope::new(PeId::new(0), Lane::Marking, 3u32)],
            |ctx, n| {
                if n > 0 {
                    for dst in 0..ctx.num_pes() {
                        ctx.send(Envelope::new(PeId::new(dst as u16), Lane::Marking, n - 1));
                    }
                }
            },
        );
        // Level k (message value 3-k) has 4^k messages: 1 + 4 + 16 + 64.
        assert_eq!(handled, 85);
    }

    #[test]
    fn self_sends_are_delivered() {
        let rt = ThreadedRuntime::new(2);
        let handled = rt.run(
            vec![Envelope::new(PeId::new(1), Lane::Marking, 4u32)],
            |ctx, n| {
                if n > 0 {
                    ctx.send(Envelope::new(ctx.me(), Lane::Marking, n - 1));
                }
            },
        );
        assert_eq!(handled, 5);
    }

    #[test]
    fn ctx_reports_topology() {
        let rt = ThreadedRuntime::new(3);
        rt.run(
            vec![Envelope::new(PeId::new(2), Lane::Marking, ())],
            |ctx, ()| {
                assert_eq!(ctx.me(), PeId::new(2));
                assert_eq!(ctx.num_pes(), 3);
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = ThreadedRuntime::new(0);
    }

    /// Every handled message shows up as one flow send + one flow recv
    /// pair. (`telemetry`-gated: `run_with` takes the facade registry,
    /// which only records when the feature is on.)
    #[cfg(feature = "telemetry")]
    #[test]
    fn every_delivery_resolves_one_flow() {
        use dgr_telemetry::EventKind;
        let telem = Registry::new(4);
        let rt = ThreadedRuntime::new(4);
        let handled = rt.run_with(
            vec![Envelope::new(PeId::new(0), Lane::Marking, 4u32)],
            |ctx, n| {
                if n > 0 {
                    for t in 0..2u16 {
                        let dst = PeId::new((ctx.me().raw() + t + 1) % 4);
                        ctx.send(Envelope::new(dst, Lane::Marking, n - 1));
                    }
                }
            },
            &telem,
        );
        assert_eq!(telem.flows_in_flight(), 0, "every flow was resolved");
        let events = telem.drain_events();
        let sends: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::FlowSend)
            .map(|e| e.value)
            .collect();
        let recvs: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::FlowRecv)
            .map(|e| e.value)
            .collect();
        assert_eq!(sends.len() as u64, handled, "one flow per message");
        assert_eq!(recvs.len() as u64, handled);
        let mut s = sends.clone();
        let mut r = recvs.clone();
        s.sort_unstable();
        r.sort_unstable();
        assert_eq!(s, r, "recvs resolve exactly the sent flow ids");
        s.dedup();
        assert_eq!(s.len(), sends.len(), "flow ids are unique");
    }
}
