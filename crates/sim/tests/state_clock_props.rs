//! Property tests for the per-PE scheduler state clock.
//!
//! The clock's contract is exact accounting: a worker that entered the
//! scheduler and finished has charged **every** nanosecond between its
//! first enter and its last transition to exactly one state, so the
//! per-state durations sum to the episode span, and the span fits
//! inside the wall-clock window the caller observed around the run.
//! Both halves are feature-dependent by construction: a default build
//! routes the same calls to the zero-sized no-op registry, which must
//! record nothing — CI runs this file in both feature states.

use dgr_graph::PeId;
use dgr_sim::steal::StealRuntime;
use dgr_telemetry::{HeartbeatHandle, Registry};
use proptest::prelude::*;

/// Drives a fan-out workload through the work-stealing runtime with an
/// explicit (fresh) registry and returns the observed wall-clock window
/// in nanoseconds. Tasks with depth > 0 spawn two children on the next
/// PE, so every PE sees traffic and idle PEs get to steal.
fn run_workload(telem: &Registry, num_pes: u16, seeds: u16, depth: u64) -> u64 {
    let rt = StealRuntime::new(num_pes);
    let initial: Vec<(PeId, u64)> = (0..seeds)
        .map(|i| (PeId::new(i % num_pes), dgr_sim::steal::with_depth(0, depth)))
        .collect();
    let start = std::time::Instant::now();
    rt.run_observed(
        initial,
        |scope, task| {
            let d = dgr_sim::steal::task_depth(task);
            if d > 0 {
                let next = PeId::new((scope.me().raw() + 1) % num_pes);
                scope.spawn(next, dgr_sim::steal::with_depth(0, d - 1));
                scope.spawn(scope.me(), dgr_sim::steal::with_depth(0, d - 1));
            }
        },
        telem,
        &HeartbeatHandle::default(),
    );
    u64::try_from(start.elapsed().as_nanos()).expect("test runs are short")
}

#[cfg(feature = "telemetry")]
mod with_feature {
    use super::*;
    use dgr_telemetry::SchedState;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every PE's finished episode satisfies the exact-sum invariant
        /// (state durations sum to the span with **zero** tolerance) and
        /// the span fits in the caller's wall-clock window.
        #[test]
        fn state_durations_sum_exactly_to_each_pes_span(
            num_pes in 1u16..6,
            seeds in 1u16..12,
            depth in 0u64..6,
        ) {
            let telem = Registry::new(num_pes);
            let wall_ns = run_workload(&telem, num_pes, seeds, depth);
            let mut saw_work = false;
            for pe in 0..num_pes {
                let snap = telem.sched_snapshot(pe);
                prop_assert_eq!(
                    snap.total_ns(), snap.span_ns,
                    "pe {}: charged {} ns over a {} ns episode", pe, snap.total_ns(), snap.span_ns
                );
                prop_assert!(
                    snap.span_ns <= wall_ns,
                    "pe {}: span {} ns exceeds the {} ns wall window", pe, snap.span_ns, wall_ns
                );
                prop_assert!(snap.current.is_none(), "pe {}: episode still open", pe);
                saw_work |= snap.state_ns(SchedState::Work) > 0;
            }
            prop_assert!(saw_work, "some PE executed the seeds");
        }
    }

    /// The pass-end `sched_*` instants report per-pass deltas: over two
    /// passes on one shared registry, summing the instants reproduces
    /// the cumulative clock — exactly how the blame analyzer folds them.
    /// The summed span instants equal the accounted time (and stay
    /// short of the cumulative `span_ns`, which includes the idle gap
    /// between the passes that belongs to neither).
    #[test]
    fn sched_instants_are_per_pass_deltas() {
        use std::collections::BTreeMap;
        let telem = Registry::new(2);
        run_workload(&telem, 2, 4, 3);
        run_workload(&telem, 2, 4, 3);
        let mut work: BTreeMap<u16, u64> = BTreeMap::new();
        let mut span: BTreeMap<u16, u64> = BTreeMap::new();
        for e in telem.drain_events() {
            match e.name {
                "sched_work" => *work.entry(e.pe).or_insert(0) += e.value,
                "sched_span" => *span.entry(e.pe).or_insert(0) += e.value,
                _ => {}
            }
        }
        for pe in 0..2u16 {
            let snap = telem.sched_snapshot(pe);
            assert_eq!(
                work[&pe],
                snap.state_ns(SchedState::Work),
                "pe {pe}: summed work deltas reproduce the cumulative clock"
            );
            assert_eq!(
                span[&pe],
                snap.total_ns(),
                "pe {pe}: summed pass spans are the accounted time"
            );
            assert!(
                span[&pe] < snap.span_ns,
                "pe {pe}: the inter-pass gap belongs to no pass"
            );
        }
    }

    /// The clock keeps accumulating across passes on a shared registry —
    /// the documented reason pass-exact blame wants a fresh registry.
    #[test]
    fn a_shared_registry_accumulates_across_passes() {
        let telem = Registry::new(2);
        run_workload(&telem, 2, 4, 3);
        let first = telem.sched_snapshot(0).total_ns();
        run_workload(&telem, 2, 4, 3);
        let second = telem.sched_snapshot(0).total_ns();
        assert!(
            second > first,
            "second pass added time: {first} then {second}"
        );
        assert!(
            telem.sched_snapshot(0).total_ns() < telem.sched_snapshot(0).span_ns,
            "the finish-to-reenter gap between passes is charged to no state"
        );
    }
}

#[cfg(not(feature = "telemetry"))]
mod without_feature {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The no-op registry records nothing: the same runs that fill
        /// the clock under the feature leave every snapshot empty.
        #[test]
        fn the_noop_clock_stays_empty(
            num_pes in 1u16..6,
            seeds in 1u16..12,
            depth in 0u64..6,
        ) {
            let telem = Registry::new(num_pes);
            run_workload(&telem, num_pes, seeds, depth);
            for pe in 0..num_pes {
                let snap = telem.sched_snapshot(pe);
                prop_assert!(snap.is_empty());
                prop_assert_eq!(snap.span_ns, 0);
                prop_assert!(telem.sched_current(pe).is_none());
            }
        }
    }
}
