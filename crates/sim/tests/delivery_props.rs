//! Property tests for the deterministic simulator: every policy delivers
//! every sent message exactly once, in a policy-consistent order, and the
//! expunge/relane surgery preserves the rest of the pool.

use dgr_core::driver::{run_mark1, run_mark2, run_mark3, MarkRunConfig};
use dgr_graph::{oracle, GraphStore, NodeLabel, PeId, Priority, RequestKind, Slot, VertexId};
use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
use proptest::prelude::*;

fn policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::RoundRobin,
        SchedPolicy::PriorityFirst,
        SchedPolicy::Random { marking_bias: 0.3 },
        SchedPolicy::Random { marking_bias: 0.9 },
    ]
}

fn lane_of(tag: u8) -> Lane {
    match tag % 5 {
        0 => Lane::Mutator,
        1 => Lane::Marking,
        2 => Lane::Reduction(Priority::Vital),
        3 => Lane::Reduction(Priority::Eager),
        _ => Lane::Reduction(Priority::Reserve),
    }
}

/// A small random graph with per-arc request kinds: `edges` are
/// `(from, to, kind)` tuples over `n` vertices (kind 0 = unrequested,
/// 1 = eager, 2 = vital), vertex 0 is the root.
fn request_graph(n: usize, edges: &[(usize, usize, u8)]) -> GraphStore {
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &(a, b, kind) in edges {
        let (a, b) = (ids[a % n], ids[b % n]);
        g.connect(a, b);
        let i = g.vertex(a).args().len() - 1;
        let kind = match kind % 3 {
            0 => None,
            1 => Some(RequestKind::Eager),
            _ => Some(RequestKind::Vital),
        };
        g.vertex_mut(a).set_request_kind(i, kind);
    }
    g.set_root(ids[0]);
    g
}

fn r_marks(g: &GraphStore) -> Vec<Option<Priority>> {
    g.ids()
        .map(|v| {
            let s = g.mark(v, Slot::R);
            s.is_marked().then_some(s.prior)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Real marking traffic through the simulator: under every scheduling
    /// policy, `mark1` and `M_R` passes — with the paper's Invariants 1–3
    /// checked by the driver after every delivered event — terminate and
    /// mark exactly the oracle's reachable set, with `M_R` also assigning
    /// every vertex the oracle's max-over-paths priority.
    #[test]
    fn marking_invariants_hold_under_every_policy(
        edges in proptest::collection::vec((0usize..16, 0usize..16, 0u8..3), 0..48),
        seed in 0u64..20,
    ) {
        let base = request_graph(16, &edges);
        let want_r: Vec<bool> = {
            let reach = oracle::reachable_r(&base);
            base.ids().map(|v| reach.contains(v)).collect()
        };
        let want_prior = oracle::priorities(&base);
        for policy in policies() {
            let cfg = MarkRunConfig {
                num_pes: 3,
                policy,
                seed,
                check_invariants: true,
                ..Default::default()
            };
            let mut g = base.clone();
            run_mark1(&mut g, &cfg);
            let got: Vec<bool> = g
                .ids()
                .map(|v| g.mark(v, Slot::R).is_marked())
                .collect();
            prop_assert_eq!(&got, &want_r, "mark1 under {:?}", policy);

            let mut g = base.clone();
            run_mark2(&mut g, &cfg);
            let got = r_marks(&g);
            prop_assert_eq!(&got, &want_prior, "M_R priorities under {:?}", policy);
        }
    }

    /// Same for `M_T`: task-root seeds, per-event invariant checks, and a
    /// final T-mark set equal to the oracle's task-reachable set.
    #[test]
    fn task_marking_invariants_hold_under_every_policy(
        edges in proptest::collection::vec((0usize..12, 0usize..12, 0u8..3), 0..36),
        seeds in proptest::collection::vec(0usize..12, 1..4),
        seed in 0u64..20,
    ) {
        let base = request_graph(12, &edges);
        let mut tasks = oracle::TaskEndpoints::new();
        for &s in &seeds {
            tasks.push_seed(VertexId::new(s as u32));
        }
        let want: Vec<bool> = {
            let reach = oracle::reachable_t(&base, &tasks);
            base.ids().map(|v| reach.contains(v)).collect()
        };
        for policy in policies() {
            let cfg = MarkRunConfig {
                num_pes: 3,
                policy,
                seed,
                check_invariants: true,
                ..Default::default()
            };
            let mut g = base.clone();
            run_mark3(&mut g, &tasks, &cfg);
            let got: Vec<bool> = g
                .ids()
                .map(|v| g.mark(v, Slot::T).is_marked())
                .collect();
            prop_assert_eq!(&got, &want, "M_T under {:?}", policy);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once delivery, for every policy, including messages sent
    /// while draining.
    #[test]
    fn exactly_once_delivery(
        sends in proptest::collection::vec((0u16..4, 0u8..5), 1..120),
        extra in proptest::collection::vec((0u16..4, 0u8..5), 0..30),
        seed in 0u64..100,
    ) {
        for policy in policies() {
            let mut sim: DetSim<u32> = DetSim::new(4, policy, seed);
            let mut next_id = 0u32;
            for &(pe, tag) in &sends {
                sim.send(Envelope::new(PeId::new(pe), lane_of(tag), next_id));
                next_id += 1;
            }
            let mut seen = vec![false; sends.len() + extra.len()];
            let mut extra_iter = extra.iter();
            while let Some((_pe, _lane, id)) = sim.next_event() {
                prop_assert!(!seen[id as usize], "duplicate delivery of {id}");
                seen[id as usize] = true;
                // Occasionally inject more messages mid-drain.
                if let Some(&(pe, tag)) = extra_iter.next() {
                    sim.send(Envelope::new(PeId::new(pe), lane_of(tag), next_id));
                    next_id += 1;
                }
            }
            prop_assert!(seen.iter().take(next_id as usize).all(|&s| s));
            prop_assert!(sim.is_empty());
            prop_assert_eq!(sim.stats().sent_total(), sim.stats().delivered_total());
        }
    }

    /// Expunge drops exactly the matching messages; relane moves without
    /// loss; lane-targeted delivery drains one lane first.
    #[test]
    fn pool_surgery_preserves_messages(
        sends in proptest::collection::vec((0u16..3, 0u8..5), 1..80),
        drop_mod in 2u32..5,
        seed in 0u64..50,
    ) {
        let mut sim: DetSim<u32> = DetSim::new(3, SchedPolicy::Random { marking_bias: 0.5 }, seed);
        for (i, &(pe, tag)) in sends.iter().enumerate() {
            sim.send(Envelope::new(PeId::new(pe), lane_of(tag), i as u32));
        }
        let before = sim.len();
        let dropped = sim.expunge(|_, _, &m| m % drop_mod != 0);
        let expected_dropped = sends.iter().enumerate().filter(|(i, _)| (*i as u32).is_multiple_of(drop_mod)).count();
        prop_assert_eq!(dropped, expected_dropped);
        prop_assert_eq!(sim.len(), before - dropped);

        let moved = sim.relane(|_, lane, _| match lane {
            Lane::Reduction(_) => Lane::Reduction(Priority::Vital),
            other => other,
        });
        let _ = moved;
        // Everything still delivers exactly once.
        let mut count = 0;
        let mut seen = std::collections::HashSet::new();
        while let Some((_, _, id)) = sim.next_event() {
            prop_assert!(seen.insert(id));
            count += 1;
        }
        prop_assert_eq!(count, before - dropped);
    }

    /// next_event_in_lane never returns a message from another lane and
    /// drains oldest-first.
    #[test]
    fn lane_targeted_delivery(
        sends in proptest::collection::vec((0u16..4, 0u8..5), 1..80),
    ) {
        let mut sim: DetSim<u32> = DetSim::new(4, SchedPolicy::Fifo, 0);
        for (i, &(pe, tag)) in sends.iter().enumerate() {
            sim.send(Envelope::new(PeId::new(pe), lane_of(tag), i as u32));
        }
        let mut last = None;
        while let Some((_pe, lane, id)) = sim.next_event_in_lane(Lane::Marking) {
            prop_assert_eq!(lane, Lane::Marking);
            if let Some(prev) = last {
                prop_assert!(id > prev, "oldest-first within the lane");
            }
            last = Some(id);
        }
        // Remaining messages are all non-marking.
        while let Some((_pe, lane, _)) = sim.next_event() {
            prop_assert_ne!(lane, Lane::Marking);
        }
    }
}
