//! Property tests for the deterministic simulator: every policy delivers
//! every sent message exactly once, in a policy-consistent order, and the
//! expunge/relane surgery preserves the rest of the pool.

use dgr_graph::{PeId, Priority};
use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
use proptest::prelude::*;

fn policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::RoundRobin,
        SchedPolicy::PriorityFirst,
        SchedPolicy::Random { marking_bias: 0.3 },
        SchedPolicy::Random { marking_bias: 0.9 },
    ]
}

fn lane_of(tag: u8) -> Lane {
    match tag % 5 {
        0 => Lane::Mutator,
        1 => Lane::Marking,
        2 => Lane::Reduction(Priority::Vital),
        3 => Lane::Reduction(Priority::Eager),
        _ => Lane::Reduction(Priority::Reserve),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once delivery, for every policy, including messages sent
    /// while draining.
    #[test]
    fn exactly_once_delivery(
        sends in proptest::collection::vec((0u16..4, 0u8..5), 1..120),
        extra in proptest::collection::vec((0u16..4, 0u8..5), 0..30),
        seed in 0u64..100,
    ) {
        for policy in policies() {
            let mut sim: DetSim<u32> = DetSim::new(4, policy, seed);
            let mut next_id = 0u32;
            for &(pe, tag) in &sends {
                sim.send(Envelope::new(PeId::new(pe), lane_of(tag), next_id));
                next_id += 1;
            }
            let mut seen = vec![false; sends.len() + extra.len()];
            let mut extra_iter = extra.iter();
            while let Some((_pe, _lane, id)) = sim.next_event() {
                prop_assert!(!seen[id as usize], "duplicate delivery of {id}");
                seen[id as usize] = true;
                // Occasionally inject more messages mid-drain.
                if let Some(&(pe, tag)) = extra_iter.next() {
                    sim.send(Envelope::new(PeId::new(pe), lane_of(tag), next_id));
                    next_id += 1;
                }
            }
            prop_assert!(seen.iter().take(next_id as usize).all(|&s| s));
            prop_assert!(sim.is_empty());
            prop_assert_eq!(sim.stats().sent_total(), sim.stats().delivered_total());
        }
    }

    /// Expunge drops exactly the matching messages; relane moves without
    /// loss; lane-targeted delivery drains one lane first.
    #[test]
    fn pool_surgery_preserves_messages(
        sends in proptest::collection::vec((0u16..3, 0u8..5), 1..80),
        drop_mod in 2u32..5,
        seed in 0u64..50,
    ) {
        let mut sim: DetSim<u32> = DetSim::new(3, SchedPolicy::Random { marking_bias: 0.5 }, seed);
        for (i, &(pe, tag)) in sends.iter().enumerate() {
            sim.send(Envelope::new(PeId::new(pe), lane_of(tag), i as u32));
        }
        let before = sim.len();
        let dropped = sim.expunge(|_, _, &m| m % drop_mod != 0);
        let expected_dropped = sends.iter().enumerate().filter(|(i, _)| (*i as u32).is_multiple_of(drop_mod)).count();
        prop_assert_eq!(dropped, expected_dropped);
        prop_assert_eq!(sim.len(), before - dropped);

        let moved = sim.relane(|_, lane, _| match lane {
            Lane::Reduction(_) => Lane::Reduction(Priority::Vital),
            other => other,
        });
        let _ = moved;
        // Everything still delivers exactly once.
        let mut count = 0;
        let mut seen = std::collections::HashSet::new();
        while let Some((_, _, id)) = sim.next_event() {
            prop_assert!(seen.insert(id));
            count += 1;
        }
        prop_assert_eq!(count, before - dropped);
    }

    /// next_event_in_lane never returns a message from another lane and
    /// drains oldest-first.
    #[test]
    fn lane_targeted_delivery(
        sends in proptest::collection::vec((0u16..4, 0u8..5), 1..80),
    ) {
        let mut sim: DetSim<u32> = DetSim::new(4, SchedPolicy::Fifo, 0);
        for (i, &(pe, tag)) in sends.iter().enumerate() {
            sim.send(Envelope::new(PeId::new(pe), lane_of(tag), i as u32));
        }
        let mut last = None;
        while let Some((_pe, lane, id)) = sim.next_event_in_lane(Lane::Marking) {
            prop_assert_eq!(lane, Lane::Marking);
            if let Some(prev) = last {
                prop_assert!(id > prev, "oldest-first within the lane");
            }
            last = Some(id);
        }
        // Remaining messages are all non-marking.
        while let Some((_pe, lane, _)) = sim.next_event() {
            prop_assert_ne!(lane, Lane::Marking);
        }
    }
}
