//! Telemetry primitives under real parallelism: worker threads of the
//! threaded runtime hammer shared counters/histograms concurrently and
//! the totals must still balance.
//!
//! The first tests target `dgr_telemetry::metrics` directly (those types
//! are always the real atomics, regardless of the `telemetry` feature);
//! the ones behind `#[cfg(feature = "telemetry")]` go through the
//! feature-switched registry facade via [`ThreadedRuntime::run_with`].

use dgr_graph::PeId;
use dgr_sim::{Envelope, Lane, ThreadedRuntime};
use dgr_telemetry::metrics::{Counter, Histogram};

#[test]
fn concurrent_counter_increments_all_land() {
    let counter = Counter::new();
    let rt = ThreadedRuntime::new(4);
    let initial: Vec<_> = (0..128)
        .map(|i| Envelope::new(PeId::new(i % 4), Lane::Marking, 3u32))
        .collect();
    let handled = rt.run(initial, |ctx, hops| {
        counter.inc();
        if hops > 0 {
            let next = PeId::new((ctx.me().raw() + 1) % 4);
            ctx.send(Envelope::new(next, Lane::Marking, hops - 1));
        }
    });
    assert_eq!(handled, 128 * 4);
    assert_eq!(counter.get(), handled, "no increment lost under contention");
}

#[test]
fn concurrent_histogram_observations_balance() {
    let hist = Histogram::new();
    let rt = ThreadedRuntime::new(4);
    let initial: Vec<_> = (0..64)
        .map(|i| Envelope::new(PeId::new(i % 4), Lane::Marking, u64::from(i)))
        .collect();
    rt.run(initial, |_, v: u64| {
        hist.observe(v);
    });
    let s = hist.snapshot();
    assert_eq!(s.count, 64);
    assert_eq!(s.sum, (0..64).sum::<u64>());
    assert_eq!(s.max, 63);
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
}

#[cfg(feature = "telemetry")]
mod with_feature {
    use super::*;
    use dgr_telemetry::{CounterId, GaugeId, Registry};

    #[test]
    fn run_with_accounts_for_every_message() {
        let telem = Registry::new(4);
        let rt = ThreadedRuntime::new(4);
        let initial: Vec<_> = (0..32)
            .map(|i| Envelope::new(PeId::new(i % 4), Lane::Marking, 2u32))
            .collect();
        let handled = rt.run_with(
            initial,
            |ctx, hops| {
                if hops > 0 {
                    ctx.send(Envelope::new(ctx.me(), Lane::Marking, hops - 1));
                    let next = PeId::new((ctx.me().raw() + 1) % 4);
                    ctx.send(Envelope::new(next, Lane::Marking, 0));
                }
            },
            &telem,
        );
        let snap = telem.snapshot();
        assert_eq!(
            snap.counter_total(CounterId::Tasks),
            handled,
            "per-PE task tallies sum to the runtime's own count"
        );
        assert_eq!(
            snap.counter_total(CounterId::SendsLocal) + snap.counter_total(CounterId::SendsRemote),
            handled - 32,
            "every non-seed message was sent through a ctx"
        );
        assert!(snap.counter_total(CounterId::SendsLocal) > 0);
        assert!(snap.counter_total(CounterId::SendsRemote) > 0);
        let merged = snap.merged();
        assert_eq!(
            merged.gauge(GaugeId::MailboxDepth),
            0,
            "all delivered mail was consumed"
        );
        assert!(merged.gauge(GaugeId::MailboxHighWater) >= 1);
        assert!(snap.counter_total(CounterId::Batches) > 0);
    }
}
