//! Differential test: the index-based scheduler delivers in exactly the
//! order the original O(PEs × lanes) scanning implementation did, for
//! every policy and seed. `RefSim` below is a faithful copy of the old
//! scan-based pick logic (including the order in which it consults the
//! RNG), so any divergence in pick order or RNG stream fails here.

use std::collections::VecDeque;

use dgr_core::driver::{run_mark2, MarkRunConfig};
use dgr_graph::{oracle, GraphStore, NodeLabel, PeId, Priority, RequestKind, Slot, VertexId};
use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-optimization simulator: full scan over every PE × lane per
/// delivery.
struct RefSim<M> {
    pes: Vec<[VecDeque<(u64, M)>; 5]>,
    policy: SchedPolicy,
    rng: StdRng,
    seq: u64,
    pending: usize,
    rr_cursor: usize,
}

impl<M> RefSim<M> {
    fn new(num_pes: u16, policy: SchedPolicy, seed: u64) -> Self {
        RefSim {
            pes: (0..num_pes).map(|_| Default::default()).collect(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            pending: 0,
            rr_cursor: 0,
        }
    }

    fn send(&mut self, env: Envelope<M>) {
        let q = &mut self.pes[env.dst.index()][env.lane.index()];
        q.push_back((self.seq, env.msg));
        self.seq += 1;
        self.pending += 1;
    }

    fn next_event(&mut self) -> Option<(PeId, Lane, M)> {
        if self.pending == 0 {
            return None;
        }
        let (pe, lane) = match self.policy {
            SchedPolicy::Fifo => self.pick_extreme(false)?,
            SchedPolicy::Lifo => self.pick_extreme(true)?,
            SchedPolicy::RoundRobin => self.pick_round_robin()?,
            SchedPolicy::Random { marking_bias } => self.pick_random(marking_bias)?,
            SchedPolicy::PriorityFirst => self.pick_priority_first()?,
        };
        let deque = &mut self.pes[pe.index()][lane.index()];
        let (_, msg) = if matches!(self.policy, SchedPolicy::Lifo) {
            deque.pop_back()?
        } else {
            deque.pop_front()?
        };
        self.pending -= 1;
        Some((pe, lane, msg))
    }

    fn pick_extreme(&self, newest: bool) -> Option<(PeId, Lane)> {
        let mut best: Option<(u64, PeId, Lane)> = None;
        for (p, lanes) in self.pes.iter().enumerate() {
            for lane in Lane::ALL {
                let q = &lanes[lane.index()];
                let cand = if newest {
                    q.back().map(|&(s, _)| s)
                } else {
                    q.front().map(|&(s, _)| s)
                };
                if let Some(s) = cand {
                    let better = match best {
                        None => true,
                        Some((bs, _, _)) => {
                            if newest {
                                s > bs
                            } else {
                                s < bs
                            }
                        }
                    };
                    if better {
                        best = Some((s, PeId::new(p as u16), lane));
                    }
                }
            }
        }
        best.map(|(_, p, l)| (p, l))
    }

    fn pick_round_robin(&mut self) -> Option<(PeId, Lane)> {
        let n = self.pes.len();
        for off in 0..n {
            let p = (self.rr_cursor + off) % n;
            let mut best: Option<(u64, Lane)> = None;
            for lane in Lane::ALL {
                if let Some(&(s, _)) = self.pes[p][lane.index()].front() {
                    if best.is_none_or(|(bs, _)| s < bs) {
                        best = Some((s, lane));
                    }
                }
            }
            if let Some((_, lane)) = best {
                self.rr_cursor = (p + 1) % n;
                return Some((PeId::new(p as u16), lane));
            }
        }
        None
    }

    fn pick_random(&mut self, marking_bias: f64) -> Option<(PeId, Lane)> {
        let mut marking: Vec<(usize, Lane)> = Vec::new();
        let mut other: Vec<(usize, Lane)> = Vec::new();
        for (p, lanes) in self.pes.iter().enumerate() {
            for lane in Lane::ALL {
                if !lanes[lane.index()].is_empty() {
                    if lane == Lane::Marking {
                        marking.push((p, lane));
                    } else {
                        other.push((p, lane));
                    }
                }
            }
        }
        // Short-circuit keeps the RNG stream identical to the production
        // scheduler: no coin flip is drawn when either pool is empty.
        let pool = if marking.is_empty() {
            &other
        } else if other.is_empty() || self.rng.gen_bool(marking_bias.clamp(0.0, 1.0)) {
            &marking
        } else {
            &other
        };
        if pool.is_empty() {
            return None;
        }
        let (p, lane) = pool[self.rng.gen_range(0..pool.len())];
        Some((PeId::new(p as u16), lane))
    }

    fn pick_priority_first(&mut self) -> Option<(PeId, Lane)> {
        let n = self.pes.len();
        for lane in Lane::ALL {
            for off in 0..n {
                let p = (self.rr_cursor + off) % n;
                if !self.pes[p][lane.index()].is_empty() {
                    self.rr_cursor = (p + 1) % n;
                    return Some((PeId::new(p as u16), lane));
                }
            }
        }
        None
    }
}

fn all_policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::RoundRobin,
        SchedPolicy::PriorityFirst,
        SchedPolicy::Random { marking_bias: 0.0 },
        SchedPolicy::Random { marking_bias: 0.3 },
        SchedPolicy::Random { marking_bias: 0.5 },
        SchedPolicy::Random { marking_bias: 1.0 },
    ]
}

fn lane_of(tag: u8) -> Lane {
    match tag % 5 {
        0 => Lane::Mutator,
        1 => Lane::Marking,
        2 => Lane::Reduction(Priority::Vital),
        3 => Lane::Reduction(Priority::Eager),
        _ => Lane::Reduction(Priority::Reserve),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Schedule independence of the marking *outcome*: `M_R` run under
    /// every policy, seed, and PE count produces the identical
    /// per-vertex `(marked, priority)` result — the paper's claim that
    /// delivery order never affects what gets marked — while the driver
    /// checks Invariants 1–3 after every event.
    #[test]
    fn marking_outcome_is_schedule_independent(
        edges in proptest::collection::vec((0usize..14, 0usize..14, 0u8..3), 1..40),
        seed in 0u64..50,
    ) {
        let n = 14;
        let mut base = GraphStore::with_capacity(n);
        let ids: Vec<VertexId> = (0..n)
            .map(|i| base.alloc(NodeLabel::lit_int(i as i64)).unwrap())
            .collect();
        for &(a, b, kind) in &edges {
            let (a, b) = (ids[a % n], ids[b % n]);
            base.connect(a, b);
            let i = base.vertex(a).args().len() - 1;
            let kind = match kind % 3 {
                0 => None,
                1 => Some(RequestKind::Eager),
                _ => Some(RequestKind::Vital),
            };
            base.vertex_mut(a).set_request_kind(i, kind);
        }
        base.set_root(ids[0]);
        let want: Vec<Option<Priority>> = {
            let prior = oracle::priorities(&base);
            base.ids().map(|v| prior[v.index()]).collect()
        };
        for policy in all_policies() {
            for num_pes in [1u16, 4] {
                let cfg = MarkRunConfig {
                    num_pes,
                    policy,
                    seed,
                    check_invariants: true,
                    ..Default::default()
                };
                let mut g = base.clone();
                run_mark2(&mut g, &cfg);
                let got: Vec<Option<Priority>> = g
                    .ids()
                    .map(|v| {
                        let s = g.mark(v, Slot::R);
                        s.is_marked().then_some(s.prior)
                    })
                    .collect();
                prop_assert_eq!(&got, &want, "policy {:?}, {} PEs, seed {}", policy, num_pes, seed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random send scripts with mid-drain injections: identical
    /// `(pe, lane, msg)` delivery sequences under every policy and seed.
    #[test]
    fn delivery_order_matches_reference(
        sends in proptest::collection::vec((0u16..5, 0u8..5), 1..150),
        extra in proptest::collection::vec((0u16..5, 0u8..5), 0..60),
        seed in 0u64..200,
    ) {
        for policy in all_policies() {
            let mut new_sim: DetSim<u32> = DetSim::new(5, policy, seed);
            let mut ref_sim: RefSim<u32> = RefSim::new(5, policy, seed);
            let mut next_id = 0u32;
            for &(pe, tag) in &sends {
                let lane = lane_of(tag);
                new_sim.send(Envelope::new(PeId::new(pe), lane, next_id));
                ref_sim.send(Envelope::new(PeId::new(pe), lane, next_id));
                next_id += 1;
            }
            let mut extra_iter = extra.iter();
            loop {
                let got = new_sim.next_event();
                let want = ref_sim.next_event();
                prop_assert_eq!(&got, &want, "policy {:?} seed {}", policy, seed);
                if got.is_none() {
                    break;
                }
                // Interleave fresh sends so picks happen against queues in
                // every state, not just a monotone drain.
                if let Some(&(pe, tag)) = extra_iter.next() {
                    let lane = lane_of(tag);
                    new_sim.send(Envelope::new(PeId::new(pe), lane, next_id));
                    ref_sim.send(Envelope::new(PeId::new(pe), lane, next_id));
                    next_id += 1;
                }
            }
        }
    }

    /// Expunge and relane rebuild the indexes correctly: post-surgery
    /// delivery still matches the reference applied to the same surgery.
    #[test]
    fn surgery_then_delivery_matches_reference(
        sends in proptest::collection::vec((0u16..4, 0u8..5), 1..100),
        drop_mod in 2u32..5,
        seed in 0u64..100,
    ) {
        for policy in all_policies() {
            let mut new_sim: DetSim<u32> = DetSim::new(4, policy, seed);
            let mut ref_sim: RefSim<u32> = RefSim::new(4, policy, seed);
            for (i, &(pe, tag)) in sends.iter().enumerate() {
                let lane = lane_of(tag);
                new_sim.send(Envelope::new(PeId::new(pe), lane, i as u32));
                ref_sim.send(Envelope::new(PeId::new(pe), lane, i as u32));
            }
            // Mirror the surgery on the reference's raw queues: drop every
            // multiple of drop_mod, then promote all reduction messages to
            // the vital lane (order-preserving, as relane does).
            new_sim.expunge(|_, _, &m| m % drop_mod != 0);
            new_sim.relane(|_, lane, _| match lane {
                Lane::Reduction(_) => Lane::Reduction(Priority::Vital),
                other => other,
            });
            for lanes in ref_sim.pes.iter_mut() {
                let mut staged: Vec<(u64, Lane, u32)> = Vec::new();
                for lane in Lane::ALL {
                    let q = std::mem::take(&mut lanes[lane.index()]);
                    for (s, m) in q {
                        if m % drop_mod == 0 {
                            ref_sim.pending -= 1;
                            continue;
                        }
                        let new_lane = match lane {
                            Lane::Reduction(_) => Lane::Reduction(Priority::Vital),
                            other => other,
                        };
                        staged.push((s, new_lane, m));
                    }
                }
                staged.sort_by_key(|&(s, _, _)| s);
                for (s, lane, m) in staged {
                    lanes[lane.index()].push_back((s, m));
                }
            }
            loop {
                let got = new_sim.next_event();
                let want = ref_sim.next_event();
                prop_assert_eq!(&got, &want, "policy {:?} seed {}", policy, seed);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
