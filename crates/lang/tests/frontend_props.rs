//! Front-end robustness: the lexer/parser/compiler never panic on
//! arbitrary input, and generated well-formed programs compile and
//! evaluate deterministically.

use dgr_lang::{compile_program, eval_source, parse};
use dgr_reduction::{RunOutcome, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: errors, never panics.
    #[test]
    fn parser_never_panics(src in "\\PC{0,120}") {
        let _ = parse(&src);
        let _ = compile_program(&src);
    }

    /// Arbitrary token soup from the language's own alphabet (more likely
    /// to get deep into the parser).
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let".to_string()), Just("rec".into()), Just("in".into()),
                Just("if".into()), Just("then".into()), Just("else".into()),
                Just("\\".into()), Just("->".into()), Just("(".into()),
                Just(")".into()), Just("[".into()), Just("]".into()),
                Just(",".into()), Just(";".into()), Just("=".into()),
                Just("+".into()), Just("-".into()), Just("*".into()),
                Just("x".into()), Just("y".into()), Just("42".into()),
                Just("cons".into()), Just("nil".into()), Just("true".into()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = compile_program(&src);
    }
}

#[derive(Debug, Clone)]
enum GenExpr {
    Int(i8),
    Var(usize),
    Add(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    If(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
    Let(Box<GenExpr>, Box<GenExpr>),
    LamApp(Box<GenExpr>, Box<GenExpr>), // (\x -> body) arg
}

fn gen_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(GenExpr::Int),
        (0usize..3).prop_map(GenExpr::Var),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GenExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GenExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(p, t, e)| GenExpr::If(
                p.into(),
                t.into(),
                e.into()
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(b, body)| GenExpr::Let(b.into(), body.into())),
            (inner.clone(), inner.clone())
                .prop_map(|(body, arg)| GenExpr::LamApp(body.into(), arg.into())),
        ]
    })
}

/// Renders with `depth` enclosing binders named v0..v{depth-1}.
fn render(e: &GenExpr, depth: usize) -> String {
    match e {
        GenExpr::Int(n) => format!("{n}").replace('-', "(neg ") + if *n < 0 { ")" } else { "" },
        GenExpr::Var(i) => {
            if depth == 0 {
                "7".to_string()
            } else {
                format!("v{}", i % depth)
            }
        }
        GenExpr::Add(a, b) => format!("({} + {})", render(a, depth), render(b, depth)),
        GenExpr::Mul(a, b) => format!("({} * {})", render(a, depth), render(b, depth)),
        GenExpr::If(p, t, e2) => format!(
            "(if {} < 0 then {} else {})",
            render(p, depth),
            render(t, depth),
            render(e2, depth)
        ),
        GenExpr::Let(b, body) => format!(
            "(let v{depth} = {} in {})",
            render(b, depth),
            render(body, depth + 1)
        ),
        GenExpr::LamApp(body, arg) => format!(
            "((\\v{depth} -> {}) {})",
            render(body, depth + 1),
            render(arg, depth)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated well-formed programs compile, run to a value (or ⊥), and
    /// are schedule-deterministic.
    #[test]
    fn generated_programs_run_deterministically(e in gen_expr(), seed in 0u64..20) {
        let src = render(&e, 0);
        let out1 = eval_source(&src, SystemConfig::default())
            .unwrap_or_else(|err| panic!("{src}: {err}"));
        prop_assert!(matches!(out1, RunOutcome::Value(_)), "{src}: {out1:?}");
        let cfg = SystemConfig {
            policy: dgr_sim::SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            num_pes: 7,
            ..Default::default()
        };
        let out2 = eval_source(&src, cfg).unwrap();
        prop_assert_eq!(out1, out2, "{}", src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse ∘ pretty = id` on parser-producible trees: print a generated
    /// program, parse it, print again — the second parse must equal the
    /// first.
    #[test]
    fn pretty_parse_roundtrip(e in gen_expr()) {
        let src = render(&e, 0);
        let ast1 = dgr_lang::parse(&src).unwrap();
        let printed = dgr_lang::pretty(&ast1);
        let ast2 = dgr_lang::parse(&printed)
            .unwrap_or_else(|err| panic!("{printed}: {err}"));
        prop_assert_eq!(ast1, ast2, "printed: {}", printed);
    }
}
