//! End-to-end evaluation tests: source text → parse → lift → compile →
//! distributed reduction → value.

use dgr_graph::Value;
use dgr_lang::{eval_source, eval_with_prelude};
use dgr_reduction::{RunOutcome, SystemConfig};
use dgr_sim::SchedPolicy;

fn eval(src: &str) -> RunOutcome {
    eval_source(src, SystemConfig::default()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn eval_p(src: &str) -> RunOutcome {
    eval_with_prelude(src, SystemConfig::default()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn int(n: i64) -> RunOutcome {
    RunOutcome::Value(Value::Int(n))
}

fn boolean(b: bool) -> RunOutcome {
    RunOutcome::Value(Value::Bool(b))
}

#[test]
fn arithmetic() {
    assert_eq!(eval("1 + 2 * 3"), int(7));
    assert_eq!(eval("(1 + 2) * 3"), int(9));
    assert_eq!(eval("10 / 3"), int(3));
    assert_eq!(eval("10 % 3"), int(1));
    assert_eq!(eval("neg 5 + 6"), int(1));
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(eval("1 < 2 && 2 <= 2"), boolean(true));
    assert_eq!(eval("1 == 2 || 3 > 4"), boolean(false));
    assert_eq!(eval("not (1 != 1)"), boolean(true));
    assert_eq!(eval("true && false"), boolean(false));
}

#[test]
fn division_by_zero_is_bottom() {
    assert_eq!(eval("1 / 0"), RunOutcome::Value(Value::Bottom));
    assert_eq!(eval("5 % 0"), RunOutcome::Value(Value::Bottom));
}

#[test]
fn conditionals() {
    assert_eq!(eval("if 1 < 2 then 10 else 20"), int(10));
    assert_eq!(eval("if false then 1 / 0 else 42"), int(42));
}

#[test]
fn lambdas_and_application() {
    assert_eq!(eval("(\\x -> x + 1) 41"), int(42));
    assert_eq!(eval("(\\x y -> x * y) 6 7"), int(42));
    assert_eq!(eval("(\\f x -> f (f x)) (\\n -> n + 1) 40"), int(42));
}

#[test]
fn let_bindings_and_sharing() {
    assert_eq!(eval("let x = 21 in x + x"), int(42));
    assert_eq!(eval("let x = 2; y = 3 in x * y"), int(6));
    assert_eq!(eval("let f = \\x -> x * 2 in f (f 10)"), int(40));
}

#[test]
fn closures_capture_environment() {
    assert_eq!(eval("let a = 40 in (\\x -> x + a) 2"), int(42));
    assert_eq!(
        eval("let mk = \\a -> \\b -> a * 10 + b in (mk 4) 2"),
        int(42)
    );
}

#[test]
fn recursion() {
    assert_eq!(
        eval("let rec fact = \\n -> if n == 0 then 1 else n * fact (n - 1) in fact 6"),
        int(720)
    );
    assert_eq!(
        eval("let rec fib = \\n -> if n < 2 then n else fib (n-1) + fib (n-2) in fib 15"),
        int(610)
    );
}

#[test]
fn mutual_recursion() {
    assert_eq!(
        eval(
            "let rec even = \\n -> if n == 0 then true else odd (n - 1);
                     odd  = \\n -> if n == 0 then false else even (n - 1)
             in even 10"
        ),
        boolean(true)
    );
}

#[test]
fn lists_and_builtins() {
    assert_eq!(eval("head [1, 2, 3]"), int(1));
    assert_eq!(eval("head (tail [1, 2, 3])"), int(2));
    assert_eq!(eval("isnil []"), boolean(true));
    assert_eq!(eval("isnil [0]"), boolean(false));
    assert_eq!(eval("head (cons 9 nil)"), int(9));
}

#[test]
fn prelude_list_functions() {
    assert_eq!(eval_p("sum (range 1 100)"), int(5050));
    assert_eq!(eval_p("length (range 1 10)"), int(10));
    assert_eq!(eval_p("sum (map (\\x -> x * 2) (range 1 10))"), int(110));
    assert_eq!(eval_p("sum (filter even (range 1 10))"), int(30));
    assert_eq!(eval_p("product (range 1 5)"), int(120));
    assert_eq!(eval_p("nth 3 (range 10 20)"), int(13));
    assert_eq!(eval_p("sum (append [1,2] [3,4])"), int(10));
    assert_eq!(eval_p("sum (reverse (range 1 4))"), int(10));
    assert_eq!(eval_p("foldl max2 0 [3, 9, 2]"), int(9));
    assert_eq!(eval_p("sum (replicate 5 8)"), int(40));
    assert_eq!(eval_p("sum (take 3 (drop 2 (range 1 100)))"), int(12));
}

#[test]
fn laziness_infinite_structures() {
    assert_eq!(eval_p("head (nats 7)"), int(7));
    assert_eq!(eval_p("sum (take 5 (nats 1))"), int(15));
    assert_eq!(
        eval("let rec ones = cons 1 ones in head (tail (tail ones))"),
        int(1)
    );
}

#[test]
fn cyclic_data_through_letrec() {
    assert_eq!(
        eval("let rec xs = cons 1 ys; ys = cons 2 xs in head (tail (tail xs))"),
        int(1)
    );
}

#[test]
fn higher_order_builtins() {
    // cons used as a function value.
    assert_eq!(
        eval_p("head (foldl (\\acc x -> cons x acc) nil [5, 6])"),
        int(6)
    );
    assert_eq!(
        eval_p("(compose (\\x -> x + 1) (\\x -> x * 2)) 20"),
        int(41)
    );
    assert_eq!(eval_p("twice (\\x -> x * 3) 2"), int(18));
}

#[test]
fn gcd_and_fact() {
    assert_eq!(eval_p("gcd 252 105"), int(21));
    assert_eq!(eval_p("fact 10"), int(3628800));
    assert_eq!(eval_p("nfib 10"), int(177));
}

#[test]
fn results_stable_across_schedulers() {
    let src = "let rec fib = \\n -> if n < 2 then n else fib (n-1) + fib (n-2) in fib 12";
    for policy in [
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::RoundRobin,
        SchedPolicy::PriorityFirst,
    ] {
        let cfg = SystemConfig {
            policy,
            ..Default::default()
        };
        assert_eq!(eval_source(src, cfg).unwrap(), int(144));
    }
    for seed in 0..10 {
        let cfg = SystemConfig {
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            num_pes: 7,
            ..Default::default()
        };
        assert_eq!(eval_source(src, cfg).unwrap(), int(144), "seed {seed}");
    }
}

#[test]
fn speculation_requires_gc_and_preserves_results() {
    // Speculative evaluation of a recursive program breeds an unbounded
    // *irrelevant* workload (each `fib k` with `k < 2` speculates
    // `fib (k-1) + fib (k-2)` before its predicate cancels them) — the
    // exact Section 3.2 scenario. Without the GC's expunging and
    // re-prioritization the vital path starves; with it, the computation
    // converges to the same value on any schedule.
    use dgr_gc::{GcConfig, GcDriver};
    use dgr_lang::build_with_prelude;

    for seed in 0..5 {
        let cfg = SystemConfig {
            speculation: true,
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            ..Default::default()
        };
        let sys = build_with_prelude("sum (map fib (range 1 8))", cfg).unwrap();
        let mut gc = GcDriver::new(
            sys,
            GcConfig {
                period: 400,
                ..Default::default()
            },
        );
        assert_eq!(gc.run(), int(54), "seed {seed}");
        assert!(
            gc.stats().expunged_total > 0,
            "seed {seed}: irrelevant speculative tasks were expunged"
        );
    }
}

#[test]
fn shadowing() {
    assert_eq!(eval("let x = 1 in let x = 2 in x"), int(2));
    assert_eq!(eval("(\\x -> (\\x -> x) 9) 1"), int(9));
    // A binder may shadow a builtin.
    assert_eq!(eval("(\\head -> head + 1) 41"), int(42));
}

#[test]
fn ackermann_small() {
    assert_eq!(
        eval(
            "let rec ack = \\m n ->
                 if m == 0 then n + 1
                 else if n == 0 then ack (m - 1) 1
                 else ack (m - 1) (ack m (n - 1))
             in ack 2 3"
        ),
        int(9)
    );
}

#[test]
fn deep_non_tail_recursion() {
    assert_eq!(
        eval("let rec sumto = \\n -> if n == 0 then 0 else n + sumto (n - 1) in sumto 500"),
        int(125250)
    );
}

#[test]
fn comments_in_source() {
    assert_eq!(eval("# header\n1 + 1 # trailing"), int(2));
}
