//! Tokenizer.

use crate::error::LangError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier (or builtin name).
    Ident(String),
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `in`
    In,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,
    /// `\`
    Lambda,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

/// Tokenizes `src`. Comments run from `#` to end of line.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on an unexpected character.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);

    macro_rules! push {
        ($kind:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = col;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n.wrapping_mul(10).wrapping_add(v as i64);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Int(n), start_col);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let kind = match s.as_str() {
                    "let" => TokenKind::Let,
                    "rec" => TokenKind::Rec,
                    "in" => TokenKind::In,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "nil" => TokenKind::Nil,
                    _ => TokenKind::Ident(s),
                };
                push!(kind, start_col);
            }
            '\\' => {
                chars.next();
                col += 1;
                push!(TokenKind::Lambda, start_col);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(TokenKind::LParen, start_col);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(TokenKind::RParen, start_col);
            }
            '[' => {
                chars.next();
                col += 1;
                push!(TokenKind::LBracket, start_col);
            }
            ']' => {
                chars.next();
                col += 1;
                push!(TokenKind::RBracket, start_col);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(TokenKind::Comma, start_col);
            }
            ';' => {
                chars.next();
                col += 1;
                push!(TokenKind::Semi, start_col);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(TokenKind::Plus, start_col);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(TokenKind::Star, start_col);
            }
            '/' => {
                chars.next();
                col += 1;
                push!(TokenKind::Slash, start_col);
            }
            '%' => {
                chars.next();
                col += 1;
                push!(TokenKind::Percent, start_col);
            }
            '-' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Arrow, start_col);
                } else {
                    push!(TokenKind::Minus, start_col);
                }
            }
            '=' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::EqEq, start_col);
                } else {
                    push!(TokenKind::Assign, start_col);
                }
            }
            '!' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::NotEq, start_col);
                } else {
                    return Err(LangError::Lex {
                        line,
                        col: start_col,
                        found: '!',
                    });
                }
            }
            '<' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Le, start_col);
                } else {
                    push!(TokenKind::Lt, start_col);
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Ge, start_col);
                } else {
                    push!(TokenKind::Gt, start_col);
                }
            }
            '&' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'&') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::AndAnd, start_col);
                } else {
                    return Err(LangError::Lex {
                        line,
                        col: start_col,
                        found: '&',
                    });
                }
            }
            '|' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'|') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::OrOr, start_col);
                } else {
                    return Err(LangError::Lex {
                        line,
                        col: start_col,
                        found: '|',
                    });
                }
            }
            other => {
                return Err(LangError::Lex {
                    line,
                    col: start_col,
                    found: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("let rec foo in"),
            vec![
                TokenKind::Let,
                TokenKind::Rec,
                TokenKind::Ident("foo".into()),
                TokenKind::In
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            kinds("1 + 23 * x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(23),
                TokenKind::Star,
                TokenKind::Ident("x".into())
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || ->"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow
            ]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            kinds("x - 1"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Minus,
                TokenKind::Int(1)
            ]
        );
        assert_eq!(kinds("->"), vec![TokenKind::Arrow]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 # a comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2)]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn lex_error_reports_position() {
        let err = lex("a @").unwrap_err();
        assert_eq!(
            err,
            LangError::Lex {
                line: 1,
                col: 3,
                found: '@'
            }
        );
    }

    #[test]
    fn lone_ampersand_rejected() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(kinds("x'"), vec![TokenKind::Ident("x'".into())]);
    }
}
