//! Front-end errors.

use std::fmt;

/// Errors produced while lexing, parsing, or compiling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// An unexpected character in the source.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// The offending character.
        found: char,
    },
    /// A malformed construct.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// A variable was used outside any binding.
    Unbound {
        /// The variable name.
        name: String,
    },
    /// A name was bound twice in the same binding group or parameter list.
    Duplicate {
        /// The duplicated name.
        name: String,
    },
    /// Compilation produced an invalid template (internal error).
    Compile {
        /// Description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, found } => {
                write!(f, "unexpected character {found:?} at {line}:{col}")
            }
            LangError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            LangError::Unbound { name } => write!(f, "unbound variable `{name}`"),
            LangError::Duplicate { name } => write!(f, "duplicate binding `{name}`"),
            LangError::Compile { message } => write!(f, "compilation error: {message}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = LangError::Parse {
            line: 3,
            col: 7,
            message: "expected `in`".into(),
        };
        assert!(e.to_string().contains("3:7"));
        assert!(LangError::Unbound { name: "x".into() }
            .to_string()
            .contains("`x`"));
    }
}
