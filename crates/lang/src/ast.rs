//! Abstract syntax.

use dgr_graph::PrimOp;

/// Binary operators, mapped to strict [`PrimOp`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The strict primitive implementing this operator.
    pub fn prim(self) -> PrimOp {
        match self {
            BinOp::Add => PrimOp::Add,
            BinOp::Sub => PrimOp::Sub,
            BinOp::Mul => PrimOp::Mul,
            BinOp::Div => PrimOp::Div,
            BinOp::Mod => PrimOp::Mod,
            BinOp::Eq => PrimOp::Eq,
            BinOp::Ne => PrimOp::Ne,
            BinOp::Lt => PrimOp::Lt,
            BinOp::Le => PrimOp::Le,
            BinOp::Gt => PrimOp::Gt,
            BinOp::Ge => PrimOp::Ge,
            BinOp::And => PrimOp::And,
            BinOp::Or => PrimOp::Or,
        }
    }
}

/// One binding of a `let`/`let rec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// The bound expression.
    pub expr: Expr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A variable (or builtin name: `cons`, `head`, `tail`, `isnil`,
    /// `not`, `neg`).
    Var(String),
    /// A binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// A conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A lambda abstraction.
    Lam(Vec<String>, Box<Expr>),
    /// An application `f x1 … xn`.
    App(Box<Expr>, Vec<Expr>),
    /// `let`/`let rec` with one or more bindings.
    Let {
        /// `true` for `let rec`.
        rec: bool,
        /// The bindings, in order.
        binds: Vec<Binding>,
        /// The body.
        body: Box<Expr>,
    },
    /// A list literal `[a, b, c]` (sugar for cons chains).
    List(Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an application.
    pub fn app(f: Expr, args: Vec<Expr>) -> Expr {
        Expr::App(Box::new(f), args)
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
}

/// Builtin function names and their arities.
pub(crate) const BUILTINS: &[(&str, usize)] = &[
    ("cons", 2),
    ("head", 1),
    ("tail", 1),
    ("isnil", 1),
    ("not", 1),
    ("neg", 1),
];

/// Arity of a builtin, if `name` is one.
pub(crate) fn builtin_arity(name: &str) -> Option<usize> {
    BUILTINS.iter().find(|(n, _)| *n == name).map(|&(_, a)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_prims() {
        assert_eq!(BinOp::Add.prim(), PrimOp::Add);
        assert_eq!(BinOp::Le.prim(), PrimOp::Le);
        assert_eq!(BinOp::Or.prim(), PrimOp::Or);
    }

    #[test]
    fn builtins() {
        assert_eq!(builtin_arity("cons"), Some(2));
        assert_eq!(builtin_arity("head"), Some(1));
        assert_eq!(builtin_arity("map"), None);
    }
}
