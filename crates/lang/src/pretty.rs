//! Pretty-printing of the AST (parseable output).
//!
//! [`pretty`] renders an expression back into source text that parses to
//! the same tree — the `parse ∘ pretty = id` roundtrip is property-tested,
//! which pins down the grammar's precedence and associativity rules.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr};

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders `e` as parseable source text.
///
/// The printer is conservative with parentheses (every subexpression of an
/// operator or application is parenthesized unless atomic), so output is
/// unambiguous rather than minimal.
///
/// # Example
///
/// ```
/// use dgr_lang::{parse, pretty};
/// let e = parse("let x = 1 + 2 in x * x").unwrap();
/// let printed = pretty(&e);
/// assert_eq!(parse(&printed).unwrap(), e);
/// ```
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn atomic(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(n) if *n >= 0
    ) || matches!(e, Expr::Bool(_) | Expr::Nil | Expr::Var(_) | Expr::List(_))
}

fn write_atom(out: &mut String, e: &Expr) {
    if atomic(e) {
        write_expr(out, e);
    } else {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Int(n) => {
            if *n < 0 {
                // The grammar has no negative literals; `neg k` evaluates
                // identically (exact roundtrip is guaranteed only for
                // parser-producible trees).
                let _ = write!(out, "neg {}", n.unsigned_abs());
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Nil => out.push_str("nil"),
        Expr::Var(x) => out.push_str(x),
        Expr::BinOp(op, l, r) => {
            write_atom(out, l);
            let _ = write!(out, " {} ", op_str(*op));
            write_atom(out, r);
        }
        Expr::If(p, t, e2) => {
            out.push_str("if ");
            write_expr(out, p);
            out.push_str(" then ");
            write_expr(out, t);
            out.push_str(" else ");
            write_expr(out, e2);
        }
        Expr::Lam(ps, body) => {
            out.push('\\');
            out.push_str(&ps.join(" "));
            out.push_str(" -> ");
            write_expr(out, body);
        }
        Expr::App(f, args) => {
            write_atom(out, f);
            for a in args {
                out.push(' ');
                write_atom(out, a);
            }
        }
        Expr::Let { rec, binds, body } => {
            out.push_str(if *rec { "let rec " } else { "let " });
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                out.push_str(&b.name);
                out.push_str(" = ");
                write_expr(out, &b.expr);
            }
            out.push_str(" in ");
            write_expr(out, body);
        }
        Expr::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let e = parse(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = pretty(&e);
        let again = parse(&printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(e, again, "printed as: {printed}");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "10 - 3 - 2",
            "neg 4",
            "let rec fib = \\n -> if n < 2 then n else fib (n-1) + fib (n-2) in fib 10",
            "let a = 1; b = 2 in a + b",
            "[1, 2, [3], []]",
            "(\\x y -> x) true nil",
            "f x + g y && h z",
            "if a == b then \\x -> x else \\y -> y 1",
            "cons 1 (cons 2 nil)",
        ] {
            // Variables must exist for eval but parsing is all we test;
            // `parse` does not scope-check.
            roundtrip(src);
        }
    }

    #[test]
    fn negative_literals_print_as_neg_application() {
        use crate::ast::Expr;
        let e = Expr::BinOp(
            crate::ast::BinOp::Sub,
            Box::new(Expr::Int(-3)),
            Box::new(Expr::Int(4)),
        );
        let printed = pretty(&e);
        // Parseable and evaluation-equivalent, though not structurally
        // identical (the grammar has no negative literals).
        assert!(parse(&printed).is_ok(), "printed: {printed}");
        assert!(printed.contains("neg 3"));
    }
}
