//! Recursive-descent parser with precedence climbing.

use crate::ast::{BinOp, Binding, Expr};
use crate::error::LangError;
use crate::lexer::{lex, Token, TokenKind};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parses a program (a single expression).
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] on malformed input.
pub fn parse(src: &str) -> Result<Expr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err_here("trailing input after expression"));
    }
    Ok(e)
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: &str) -> LangError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1));
        LangError::Parse {
            line,
            col,
            message: msg.to_string(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LangError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here(&format!("expected {what}")))
            }
        }
    }

    /// Full expression: `let`, `if` and lambda extend maximally to the
    /// right; otherwise an operator expression.
    fn expr(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            Some(TokenKind::Let) => self.let_expr(),
            Some(TokenKind::Lambda) => self.lambda(),
            Some(TokenKind::If) => self.if_expr(),
            _ => self.binary(0),
        }
    }

    fn let_expr(&mut self) -> Result<Expr, LangError> {
        self.expect(&TokenKind::Let, "`let`")?;
        let rec = if self.peek() == Some(&TokenKind::Rec) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut binds = Vec::new();
        loop {
            let name = self.ident("binding name")?;
            self.expect(&TokenKind::Assign, "`=`")?;
            let expr = self.expr()?;
            binds.push(Binding { name, expr });
            match self.peek() {
                Some(TokenKind::Semi) => {
                    self.pos += 1;
                }
                Some(TokenKind::In) => break,
                _ => return Err(self.err_here("expected `;` or `in`")),
            }
        }
        self.expect(&TokenKind::In, "`in`")?;
        let body = self.expr()?;
        Ok(Expr::Let {
            rec,
            binds,
            body: Box::new(body),
        })
    }

    fn lambda(&mut self) -> Result<Expr, LangError> {
        self.expect(&TokenKind::Lambda, "`\\`")?;
        let mut params = vec![self.ident("parameter")?];
        while let Some(TokenKind::Ident(_)) = self.peek() {
            params.push(self.ident("parameter")?);
        }
        self.expect(&TokenKind::Arrow, "`->`")?;
        let body = self.expr()?;
        Ok(Expr::Lam(params, Box::new(body)))
    }

    fn if_expr(&mut self) -> Result<Expr, LangError> {
        self.expect(&TokenKind::If, "`if`")?;
        let p = self.expr()?;
        self.expect(&TokenKind::Then, "`then`")?;
        let t = self.expr()?;
        self.expect(&TokenKind::Else, "`else`")?;
        let e = self.expr()?;
        Ok(Expr::If(Box::new(p), Box::new(t), Box::new(e)))
    }

    /// Operator precedence levels, loosest first.
    fn binop_at(&self, level: usize) -> Option<BinOp> {
        let k = self.peek()?;
        let op = match (level, k) {
            (0, TokenKind::OrOr) => BinOp::Or,
            (1, TokenKind::AndAnd) => BinOp::And,
            (2, TokenKind::EqEq) => BinOp::Eq,
            (2, TokenKind::NotEq) => BinOp::Ne,
            (2, TokenKind::Lt) => BinOp::Lt,
            (2, TokenKind::Le) => BinOp::Le,
            (2, TokenKind::Gt) => BinOp::Gt,
            (2, TokenKind::Ge) => BinOp::Ge,
            (3, TokenKind::Plus) => BinOp::Add,
            (3, TokenKind::Minus) => BinOp::Sub,
            (4, TokenKind::Star) => BinOp::Mul,
            (4, TokenKind::Slash) => BinOp::Div,
            (4, TokenKind::Percent) => BinOp::Mod,
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, level: usize) -> Result<Expr, LangError> {
        if level > 4 {
            return self.application();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.pos += 1;
            // `1 + if p then a else b` style right-hand sides are allowed.
            let rhs = match self.peek() {
                Some(TokenKind::If) => self.if_expr()?,
                Some(TokenKind::Let) => self.let_expr()?,
                Some(TokenKind::Lambda) => self.lambda()?,
                _ => self.binary(level + 1)?,
            };
            lhs = Expr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn application(&mut self) -> Result<Expr, LangError> {
        let f = self.atom()?;
        let mut args = Vec::new();
        while self.starts_atom() {
            args.push(self.atom()?);
        }
        if args.is_empty() {
            Ok(f)
        } else {
            Ok(Expr::app(f, args))
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                TokenKind::Int(_)
                    | TokenKind::Ident(_)
                    | TokenKind::True
                    | TokenKind::False
                    | TokenKind::Nil
                    | TokenKind::LParen
                    | TokenKind::LBracket
            )
        )
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.next() {
            Some(TokenKind::Int(n)) => Ok(Expr::Int(n)),
            Some(TokenKind::True) => Ok(Expr::Bool(true)),
            Some(TokenKind::False) => Ok(Expr::Bool(false)),
            Some(TokenKind::Nil) => Ok(Expr::Nil),
            Some(TokenKind::Ident(s)) => Ok(Expr::Var(s)),
            Some(TokenKind::LParen) => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        match self.peek() {
                            Some(TokenKind::Comma) => {
                                self.pos += 1;
                            }
                            _ => break,
                        }
                    }
                }
                self.expect(&TokenKind::RBracket, "`]`")?;
                Ok(Expr::List(items))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected an expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        // 1 + 2 * 3 == 7 && true
        let e = parse("1 + 2 * 3 == 7 && true").unwrap();
        // top level is &&
        match e {
            Expr::BinOp(BinOp::And, l, r) => {
                assert_eq!(*r, Expr::Bool(true));
                match *l {
                    Expr::BinOp(BinOp::Eq, ll, _) => match *ll {
                        Expr::BinOp(BinOp::Add, _, mul) => {
                            assert!(matches!(*mul, Expr::BinOp(BinOp::Mul, _, _)));
                        }
                        other => panic!("wanted +, got {other:?}"),
                    },
                    other => panic!("wanted ==, got {other:?}"),
                }
            }
            other => panic!("wanted &&, got {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let e = parse("10 - 3 - 2").unwrap();
        match e {
            Expr::BinOp(BinOp::Sub, l, r) => {
                assert_eq!(*r, Expr::Int(2));
                assert!(matches!(*l, Expr::BinOp(BinOp::Sub, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_operators() {
        let e = parse("f x + g y").unwrap();
        match e {
            Expr::BinOp(BinOp::Add, l, r) => {
                assert!(matches!(*l, Expr::App(..)));
                assert!(matches!(*r, Expr::App(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lambda_and_application() {
        let e = parse("(\\x y -> x + y) 1 2").unwrap();
        match e {
            Expr::App(f, args) => {
                assert_eq!(args.len(), 2);
                assert!(matches!(*f, Expr::Lam(ref p, _) if p == &["x", "y"]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_with_multiple_bindings() {
        let e = parse("let rec a = 1; b = a in b").unwrap();
        match e {
            Expr::Let { rec, binds, .. } => {
                assert!(rec);
                assert_eq!(binds.len(), 2);
                assert_eq!(binds[0].name, "a");
                assert_eq!(binds[1].name, "b");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_extends_right() {
        let e = parse("if true then 1 else 2 + 3").unwrap();
        match e {
            Expr::If(_, _, els) => assert!(matches!(*els, Expr::BinOp(BinOp::Add, _, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_rhs_may_be_if() {
        let e = parse("1 + if true then 2 else 3").unwrap();
        assert!(matches!(e, Expr::BinOp(BinOp::Add, _, _)));
    }

    #[test]
    fn list_literals() {
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Expr::List(vec![Expr::Int(1), Expr::Int(2)])
        );
        assert_eq!(parse("[]").unwrap(), Expr::List(vec![]));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("let x = in x").is_err());
        assert!(parse("if true then 1").is_err());
        assert!(parse("(1 + 2").is_err());
        assert!(parse("1 2 3 )").is_err());
        assert!(parse("\\ -> 1").is_err());
    }

    #[test]
    fn error_position_is_useful() {
        match parse("let x = 1\nin (") {
            Err(LangError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }
}
