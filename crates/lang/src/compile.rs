//! Compiling lifted supercombinators into graph templates.

use std::collections::HashMap;

use dgr_graph::{
    GraphError, GraphStore, NodeLabel, Template, TemplateNode, TemplateRef, Value, VertexId,
};
use dgr_reduction::{TemplateId, TemplateStore};

use crate::error::LangError;
use crate::lift::{lift, LExpr, Sc};
use crate::parser::parse;

/// A compiled program: its templates and the entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The supercombinator templates (one per lifted function, plus
    /// `main`).
    pub templates: TemplateStore,
    /// The zero-arity entry supercombinator.
    pub main: TemplateId,
}

impl CompiledProgram {
    /// Installs the program into a graph: allocates the root application
    /// of `main` and returns the root vertex (the caller should
    /// `set_root` it).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Compile`] if the store cannot supply vertices
    /// (the store is grown automatically, so this only happens on
    /// pathological inputs).
    pub fn install(&self, g: &mut GraphStore) -> Result<VertexId, LangError> {
        if g.free_count() < 2 {
            g.grow(64);
        }
        let to_compile_err = |e: GraphError| LangError::Compile {
            message: e.to_string(),
        };
        let f = g
            .alloc(NodeLabel::Lit(Value::Fn(self.main, Vec::new())))
            .map_err(to_compile_err)?;
        let app = g.alloc(NodeLabel::Apply).map_err(to_compile_err)?;
        g.connect(app, f);
        Ok(app)
    }
}

/// Parses, lifts and compiles a program.
///
/// # Errors
///
/// Returns a [`LangError`] for any front-end problem.
pub fn compile_program(src: &str) -> Result<CompiledProgram, LangError> {
    let ast = parse(src)?;
    let lifted = lift(&ast)?;
    let mut templates = TemplateStore::new();
    // Supercombinator ids must equal template ids: register in order.
    for sc in &lifted.scs {
        let tpl = compile_sc(sc)?;
        templates.register(tpl);
    }
    Ok(CompiledProgram {
        templates,
        main: lifted.main as TemplateId,
    })
}

struct ScCompiler<'a> {
    nodes: Vec<TemplateNode>,
    env: HashMap<String, TemplateRef>,
    sc: &'a Sc,
}

fn compile_sc(sc: &Sc) -> Result<Template, LangError> {
    let mut c = ScCompiler {
        nodes: vec![TemplateNode::new(NodeLabel::Hole, vec![])], // root slot
        env: sc
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), TemplateRef::Param(i)))
            .collect(),
        sc,
    };
    c.compile_into(&sc.body, 0)?;
    Template::new(sc.name.clone(), sc.params.len(), c.nodes).map_err(|e| LangError::Compile {
        message: format!("{}: {e}", sc.name),
    })
}

impl ScCompiler<'_> {
    fn push(&mut self, node: TemplateNode) -> TemplateRef {
        self.nodes.push(node);
        TemplateRef::Local(self.nodes.len() - 1)
    }

    fn lookup(&self, name: &str) -> Result<TemplateRef, LangError> {
        self.env
            .get(name)
            .copied()
            .ok_or_else(|| LangError::Compile {
                message: format!("{}: `{name}` escaped lifting", self.sc.name),
            })
    }

    /// Compiles `e`, returning a reference to its node (or to the
    /// parameter/local it aliases).
    fn compile(&mut self, e: &LExpr) -> Result<TemplateRef, LangError> {
        Ok(match e {
            LExpr::Int(n) => self.push(TemplateNode::new(NodeLabel::lit_int(*n), vec![])),
            LExpr::Bool(b) => self.push(TemplateNode::new(NodeLabel::lit_bool(*b), vec![])),
            LExpr::Nil => self.push(TemplateNode::new(NodeLabel::Lit(Value::Nil), vec![])),
            LExpr::ScRef(id) => self.push(TemplateNode::new(
                NodeLabel::Lit(Value::Fn(*id as TemplateId, Vec::new())),
                vec![],
            )),
            LExpr::Var(x) => self.lookup(x)?,
            LExpr::Prim(op, args) => {
                let refs = args
                    .iter()
                    .map(|a| self.compile(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.push(TemplateNode::new(NodeLabel::Prim(*op), refs))
            }
            LExpr::Cons(h, t) => {
                let h = self.compile(h)?;
                let t = self.compile(t)?;
                self.push(TemplateNode::new(NodeLabel::Cons, vec![h, t]))
            }
            LExpr::If(p, t, e2) => {
                let p = self.compile(p)?;
                let t = self.compile(t)?;
                let e2 = self.compile(e2)?;
                self.push(TemplateNode::new(NodeLabel::If, vec![p, t, e2]))
            }
            LExpr::App(f, args) => {
                let f = self.compile(f)?;
                let mut refs = vec![f];
                for a in args {
                    refs.push(self.compile(a)?);
                }
                self.push(TemplateNode::new(NodeLabel::Apply, refs))
            }
            LExpr::LetData { rec, binds, body } => {
                if *rec {
                    // Reserve a slot per binding so cyclic references
                    // resolve, then fill each slot in place.
                    let slots: Vec<usize> = binds
                        .iter()
                        .map(|_| {
                            self.nodes.push(TemplateNode::new(NodeLabel::Hole, vec![]));
                            self.nodes.len() - 1
                        })
                        .collect();
                    for ((name, _), &slot) in binds.iter().zip(&slots) {
                        self.env.insert(name.clone(), TemplateRef::Local(slot));
                    }
                    for ((_, expr), &slot) in binds.iter().zip(&slots) {
                        self.compile_into(expr, slot)?;
                    }
                } else {
                    for (name, expr) in binds {
                        let r = self.compile(expr)?;
                        self.env.insert(name.clone(), r);
                    }
                }
                return self.compile(body);
            }
        })
    }

    /// Compiles `e` *into* node `slot` (for the template root and for
    /// recursive data bindings). Reference-like expressions become
    /// indirections.
    fn compile_into(&mut self, e: &LExpr, slot: usize) -> Result<(), LangError> {
        match e {
            LExpr::Int(n) => self.nodes[slot] = TemplateNode::new(NodeLabel::lit_int(*n), vec![]),
            LExpr::Bool(b) => self.nodes[slot] = TemplateNode::new(NodeLabel::lit_bool(*b), vec![]),
            LExpr::Nil => self.nodes[slot] = TemplateNode::new(NodeLabel::Lit(Value::Nil), vec![]),
            LExpr::ScRef(id) => {
                self.nodes[slot] = TemplateNode::new(
                    NodeLabel::Lit(Value::Fn(*id as TemplateId, Vec::new())),
                    vec![],
                )
            }
            LExpr::Var(x) => {
                let r = self.lookup(x)?;
                self.nodes[slot] = TemplateNode::new(NodeLabel::Ind, vec![r]);
            }
            LExpr::Prim(op, args) => {
                let refs = args
                    .iter()
                    .map(|a| self.compile(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.nodes[slot] = TemplateNode::new(NodeLabel::Prim(*op), refs);
            }
            LExpr::Cons(h, t) => {
                let h = self.compile(h)?;
                let t = self.compile(t)?;
                self.nodes[slot] = TemplateNode::new(NodeLabel::Cons, vec![h, t]);
            }
            LExpr::If(p, t, e2) => {
                let p = self.compile(p)?;
                let t = self.compile(t)?;
                let e2 = self.compile(e2)?;
                self.nodes[slot] = TemplateNode::new(NodeLabel::If, vec![p, t, e2]);
            }
            LExpr::App(f, args) => {
                let f = self.compile(f)?;
                let mut refs = vec![f];
                for a in args {
                    refs.push(self.compile(a)?);
                }
                self.nodes[slot] = TemplateNode::new(NodeLabel::Apply, refs);
            }
            LExpr::LetData { .. } => {
                let r = self.compile(e)?;
                self.nodes[slot] = TemplateNode::new(NodeLabel::Ind, vec![r]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_arithmetic() {
        let p = compile_program("1 + 2 * 3").unwrap();
        assert_eq!(p.templates.len(), 1);
        let main = p.templates.get(p.main);
        assert_eq!(main.arity(), 0);
        assert_eq!(main.name(), "main");
    }

    #[test]
    fn sharing_via_let() {
        // `let x = big in x + x` must reference one x node twice.
        let p = compile_program("let x = 2 * 3 in x + x").unwrap();
        let main = p.templates.get(p.main);
        // The let body compiles behind a root indirection; the + node's
        // two args must be the same local reference.
        let add = main
            .nodes()
            .iter()
            .find(|n| n.label == NodeLabel::Prim(dgr_graph::PrimOp::Add))
            .expect("one + node");
        assert_eq!(add.args[0], add.args[1]);
    }

    #[test]
    fn recursive_data_compiles_to_cycle() {
        let p = compile_program("let rec ones = cons 1 ones in ones").unwrap();
        let main = p.templates.get(p.main);
        // Some node's args reference itself (directly or via the root
        // indirection).
        let cyclic = main
            .nodes()
            .iter()
            .enumerate()
            .any(|(i, n)| n.args.contains(&TemplateRef::Local(i)));
        assert!(cyclic, "nodes: {:?}", main.nodes());
    }

    #[test]
    fn mutually_recursive_data() {
        let p =
            compile_program("let rec xs = cons 1 ys; ys = cons 2 xs in head (tail xs)").unwrap();
        assert_eq!(p.templates.len(), 1);
    }

    #[test]
    fn install_builds_root_application() {
        let p = compile_program("41 + 1").unwrap();
        let mut g = GraphStore::new();
        let root = p.install(&mut g).unwrap();
        assert_eq!(g.vertex(root).label, NodeLabel::Apply);
        assert_eq!(g.vertex(root).args().len(), 1);
    }

    #[test]
    fn unknown_variable_fails_compilation() {
        assert!(compile_program("zzz 1").is_err());
    }
}
