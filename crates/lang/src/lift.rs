//! Lambda lifting: turning nested lambdas into supercombinators.
//!
//! Binders are first alpha-renamed to globally unique names (so capture is
//! name-safe), then every lambda becomes a supercombinator whose extra
//! leading parameters are its free variables; mutually recursive function
//! groups get their free-variable sets by fixpoint iteration, and
//! recursive *data* bindings survive as `let rec` over graph nodes (the
//! source of cyclic structures).

use std::collections::{HashMap, HashSet};

use dgr_graph::PrimOp;

use crate::ast::{builtin_arity, BinOp, Binding, Expr};
use crate::error::LangError;

/// Lifted expression: no lambdas; supercombinator references instead.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LExpr {
    Int(i64),
    Bool(bool),
    Nil,
    Var(String),
    ScRef(usize),
    Prim(PrimOp, Vec<LExpr>),
    Cons(Box<LExpr>, Box<LExpr>),
    If(Box<LExpr>, Box<LExpr>, Box<LExpr>),
    App(Box<LExpr>, Vec<LExpr>),
    LetData {
        rec: bool,
        binds: Vec<(String, LExpr)>,
        body: Box<LExpr>,
    },
}

/// A supercombinator: a closed function of its parameters.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Sc {
    pub name: String,
    pub params: Vec<String>,
    pub body: LExpr,
}

/// The result of lifting a program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Lifted {
    pub scs: Vec<Sc>,
    pub main: usize,
}

/// Lifts a program.
pub(crate) fn lift(program: &Expr) -> Result<Lifted, LangError> {
    let unique = uniquify(program)?;
    let mut lifter = Lifter {
        scs: Vec::new(),
        wrappers: HashMap::new(),
        subst: HashMap::new(),
    };
    let body = lifter.lift_expr(&unique)?;
    let main = lifter.push_sc(Sc {
        name: "main".into(),
        params: Vec::new(),
        body,
    });
    let scs = lifter
        .scs
        .into_iter()
        .map(|o| o.expect("all reserved slots filled"))
        .collect();
    Ok(Lifted { scs, main })
}

// ---------------------------------------------------------------------
// Alpha renaming
// ---------------------------------------------------------------------

struct Renamer {
    counter: usize,
}

impl Renamer {
    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}${}", self.counter)
    }
}

fn uniquify(e: &Expr) -> Result<Expr, LangError> {
    let mut r = Renamer { counter: 0 };
    rename(e, &HashMap::new(), &mut r)
}

fn bind_names<'a>(
    names: impl Iterator<Item = &'a str>,
    env: &HashMap<String, String>,
    r: &mut Renamer,
) -> Result<HashMap<String, String>, LangError> {
    let mut out = env.clone();
    let mut seen = HashSet::new();
    for n in names {
        if !seen.insert(n.to_string()) {
            return Err(LangError::Duplicate { name: n.into() });
        }
        out.insert(n.to_string(), r.fresh(n));
    }
    Ok(out)
}

fn rename(e: &Expr, env: &HashMap<String, String>, r: &mut Renamer) -> Result<Expr, LangError> {
    Ok(match e {
        Expr::Int(n) => Expr::Int(*n),
        Expr::Bool(b) => Expr::Bool(*b),
        Expr::Nil => Expr::Nil,
        Expr::Var(x) => {
            if let Some(u) = env.get(x) {
                Expr::Var(u.clone())
            } else if builtin_arity(x).is_some() {
                Expr::Var(x.clone())
            } else {
                return Err(LangError::Unbound { name: x.clone() });
            }
        }
        Expr::BinOp(op, l, rr) => Expr::BinOp(
            *op,
            Box::new(rename(l, env, r)?),
            Box::new(rename(rr, env, r)?),
        ),
        Expr::If(p, t, el) => Expr::If(
            Box::new(rename(p, env, r)?),
            Box::new(rename(t, env, r)?),
            Box::new(rename(el, env, r)?),
        ),
        Expr::Lam(ps, body) => {
            let inner = bind_names(ps.iter().map(|s| s.as_str()), env, r)?;
            let ps2 = ps.iter().map(|p| inner[p].clone()).collect();
            Expr::Lam(ps2, Box::new(rename(body, &inner, r)?))
        }
        Expr::App(f, args) => {
            let f2 = rename(f, env, r)?;
            let args2 = args
                .iter()
                .map(|a| rename(a, env, r))
                .collect::<Result<_, _>>()?;
            Expr::App(Box::new(f2), args2)
        }
        Expr::List(items) => Expr::List(
            items
                .iter()
                .map(|i| rename(i, env, r))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Let { rec, binds, body } => {
            let inner = bind_names(binds.iter().map(|b| b.name.as_str()), env, r)?;
            let bind_env = if *rec { &inner } else { env };
            // Non-recursive bindings see only the outer scope (including
            // earlier bindings — but to keep scoping simple and
            // predictable, each non-rec binding sees the outer scope
            // only; use `let rec` for sequential dependencies).
            let binds2 = binds
                .iter()
                .map(|b| {
                    Ok(Binding {
                        name: inner[&b.name].clone(),
                        expr: rename(&b.expr, bind_env, r)?,
                    })
                })
                .collect::<Result<Vec<_>, LangError>>()?;
            Expr::Let {
                rec: *rec,
                binds: binds2,
                body: Box::new(rename(body, &inner, r)?),
            }
        }
    })
}

// ---------------------------------------------------------------------
// Free variables
// ---------------------------------------------------------------------

type Subst = HashMap<String, (usize, Vec<String>)>;

fn add_unique(acc: &mut Vec<String>, x: &str) {
    if !acc.iter().any(|a| a == x) {
        acc.push(x.to_string());
    }
}

/// Free variables of `e` (order of first occurrence), where names bound in
/// `bound` are skipped, substituted supercombinator names contribute their
/// captured variables, and builtins contribute nothing.
fn free_vars(e: &Expr, bound: &mut Vec<String>, subst: &Subst, acc: &mut Vec<String>) {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Nil => {}
        Expr::Var(x) => {
            if bound.iter().any(|b| b == x) {
                return;
            }
            if let Some((_, caps)) = subst.get(x) {
                for c in caps {
                    add_unique(acc, c);
                }
            } else if builtin_arity(x).is_none() {
                add_unique(acc, x);
            }
        }
        Expr::BinOp(_, l, r) => {
            free_vars(l, bound, subst, acc);
            free_vars(r, bound, subst, acc);
        }
        Expr::If(p, t, e2) => {
            free_vars(p, bound, subst, acc);
            free_vars(t, bound, subst, acc);
            free_vars(e2, bound, subst, acc);
        }
        Expr::Lam(ps, body) => {
            let n = bound.len();
            bound.extend(ps.iter().cloned());
            free_vars(body, bound, subst, acc);
            bound.truncate(n);
        }
        Expr::App(f, args) => {
            free_vars(f, bound, subst, acc);
            for a in args {
                free_vars(a, bound, subst, acc);
            }
        }
        Expr::List(items) => {
            for i in items {
                free_vars(i, bound, subst, acc);
            }
        }
        Expr::Let { rec, binds, body } => {
            let n = bound.len();
            if *rec {
                bound.extend(binds.iter().map(|b| b.name.clone()));
                for b in binds {
                    free_vars(&b.expr, bound, subst, acc);
                }
            } else {
                for b in binds {
                    free_vars(&b.expr, bound, subst, acc);
                }
                bound.extend(binds.iter().map(|b| b.name.clone()));
            }
            free_vars(body, bound, subst, acc);
            bound.truncate(n);
        }
    }
}

// ---------------------------------------------------------------------
// Lifting proper
// ---------------------------------------------------------------------

struct Lifter {
    scs: Vec<Option<Sc>>,
    wrappers: HashMap<String, usize>,
    /// Names bound to supercombinators: name → (sc id, captured vars).
    /// Flat (names are globally unique after alpha renaming).
    subst: Subst,
}

impl Lifter {
    fn push_sc(&mut self, sc: Sc) -> usize {
        self.scs.push(Some(sc));
        self.scs.len() - 1
    }

    fn reserve_sc(&mut self) -> usize {
        self.scs.push(None);
        self.scs.len() - 1
    }

    /// An eta-expanded wrapper supercombinator for a builtin used as a
    /// value (e.g. `map (cons 0) xss` needs `cons` as a function value).
    fn wrapper(&mut self, name: &str) -> usize {
        if let Some(&id) = self.wrappers.get(name) {
            return id;
        }
        let arity = builtin_arity(name).expect("only builtins get wrappers");
        let params: Vec<String> = (0..arity).map(|i| format!("${name}{i}")).collect();
        let args: Vec<LExpr> = params.iter().map(|p| LExpr::Var(p.clone())).collect();
        let body = builtin_node(name, args);
        let id = self.push_sc(Sc {
            name: format!("${name}"),
            params,
            body,
        });
        self.wrappers.insert(name.to_string(), id);
        id
    }

    fn sc_use(&self, id: usize, caps: &[String]) -> LExpr {
        if caps.is_empty() {
            LExpr::ScRef(id)
        } else {
            LExpr::App(
                Box::new(LExpr::ScRef(id)),
                caps.iter().map(|c| LExpr::Var(c.clone())).collect(),
            )
        }
    }

    fn lift_lambda(
        &mut self,
        name: String,
        reserved: usize,
        caps: Vec<String>,
        params: &[String],
        body: &Expr,
    ) -> Result<(), LangError> {
        let body = self.lift_expr(body)?;
        let mut all_params = caps;
        all_params.extend(params.iter().cloned());
        self.scs[reserved] = Some(Sc {
            name,
            params: all_params,
            body,
        });
        Ok(())
    }

    fn lift_expr(&mut self, e: &Expr) -> Result<LExpr, LangError> {
        Ok(match e {
            Expr::Int(n) => LExpr::Int(*n),
            Expr::Bool(b) => LExpr::Bool(*b),
            Expr::Nil => LExpr::Nil,
            Expr::Var(x) => {
                if let Some((id, caps)) = self.subst.get(x).cloned() {
                    self.sc_use(id, &caps)
                } else if builtin_arity(x).is_some() {
                    LExpr::ScRef(self.wrapper(x))
                } else {
                    LExpr::Var(x.clone())
                }
            }
            Expr::BinOp(op, l, r) => LExpr::Prim(
                binop_prim(*op),
                vec![self.lift_expr(l)?, self.lift_expr(r)?],
            ),
            Expr::If(p, t, e2) => LExpr::If(
                Box::new(self.lift_expr(p)?),
                Box::new(self.lift_expr(t)?),
                Box::new(self.lift_expr(e2)?),
            ),
            Expr::List(items) => {
                let mut out = LExpr::Nil;
                for item in items.iter().rev() {
                    out = LExpr::Cons(Box::new(self.lift_expr(item)?), Box::new(out));
                }
                out
            }
            Expr::Lam(ps, body) => {
                let mut caps = Vec::new();
                free_vars(e, &mut Vec::new(), &self.subst, &mut caps);
                let reserved = self.reserve_sc();
                let name = format!("lam#{reserved}");
                self.lift_lambda(name, reserved, caps.clone(), ps, body)?;
                self.sc_use(reserved, &caps)
            }
            Expr::App(f, args) => {
                if let Expr::Var(b) = f.as_ref() {
                    if !self.subst.contains_key(b) {
                        if let Some(arity) = builtin_arity(b) {
                            return self.lift_builtin_app(b, arity, args);
                        }
                    }
                }
                let f2 = self.lift_expr(f)?;
                let args2: Vec<LExpr> = args
                    .iter()
                    .map(|a| self.lift_expr(a))
                    .collect::<Result<_, _>>()?;
                app_merge(f2, args2)
            }
            Expr::Let {
                rec: false,
                binds,
                body,
            } => {
                let binds2 = binds
                    .iter()
                    .map(|b| Ok((b.name.clone(), self.lift_expr(&b.expr)?)))
                    .collect::<Result<Vec<_>, LangError>>()?;
                LExpr::LetData {
                    rec: false,
                    binds: binds2,
                    body: Box::new(self.lift_expr(body)?),
                }
            }
            Expr::Let {
                rec: true,
                binds,
                body,
            } => self.lift_letrec(binds, body)?,
        })
    }

    fn lift_builtin_app(
        &mut self,
        name: &str,
        arity: usize,
        args: &[Expr],
    ) -> Result<LExpr, LangError> {
        if args.len() < arity {
            // Under-applied builtin: partial application of the wrapper.
            let id = self.wrapper(name);
            let args2: Vec<LExpr> = args
                .iter()
                .map(|a| self.lift_expr(a))
                .collect::<Result<_, _>>()?;
            return Ok(LExpr::App(Box::new(LExpr::ScRef(id)), args2));
        }
        let direct: Vec<LExpr> = args[..arity]
            .iter()
            .map(|a| self.lift_expr(a))
            .collect::<Result<_, _>>()?;
        let node = builtin_node(name, direct);
        if args.len() == arity {
            Ok(node)
        } else {
            // Over-applied: the builtin's result is applied to the rest.
            let rest: Vec<LExpr> = args[arity..]
                .iter()
                .map(|a| self.lift_expr(a))
                .collect::<Result<_, _>>()?;
            Ok(LExpr::App(Box::new(node), rest))
        }
    }

    fn lift_letrec(&mut self, binds: &[Binding], body: &Expr) -> Result<LExpr, LangError> {
        // Partition: lambda bindings become supercombinators; the rest are
        // (possibly cyclic) data bindings compiled as graph nodes.
        let lambda_binds: Vec<&Binding> = binds
            .iter()
            .filter(|b| matches!(b.expr, Expr::Lam(..)))
            .collect();
        let data_binds: Vec<&Binding> = binds
            .iter()
            .filter(|b| !matches!(b.expr, Expr::Lam(..)))
            .collect();

        // Fixpoint free-variable computation for the function group: a
        // function capturing f also needs f's captures.
        let group: Vec<String> = lambda_binds.iter().map(|b| b.name.clone()).collect();
        let mut base: Vec<Vec<String>> = Vec::new();
        let mut deps: Vec<Vec<usize>> = Vec::new();
        for b in &lambda_binds {
            let mut bound = group.clone();
            let mut fv = Vec::new();
            free_vars(&b.expr, &mut bound, &self.subst, &mut fv);
            base.push(fv);
            // Which group members does this body mention?
            let mut mentions = Vec::new();
            let mut all = Vec::new();
            free_vars(&b.expr, &mut Vec::new(), &Subst::new(), &mut all);
            for (j, g) in group.iter().enumerate() {
                if all.iter().any(|x| x == g) {
                    mentions.push(j);
                }
            }
            deps.push(mentions);
        }
        let mut fvs = base.clone();
        loop {
            let mut changed = false;
            for i in 0..fvs.len() {
                for &j in &deps[i] {
                    let extra: Vec<String> = fvs[j]
                        .iter()
                        .filter(|x| !fvs[i].contains(x))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        fvs[i].extend(extra);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Reserve ids and register substitutions before lifting bodies so
        // recursive references resolve.
        let mut reserved = Vec::new();
        for (i, b) in lambda_binds.iter().enumerate() {
            let id = self.reserve_sc();
            reserved.push(id);
            self.subst.insert(b.name.clone(), (id, fvs[i].clone()));
        }
        for (i, b) in lambda_binds.iter().enumerate() {
            let Expr::Lam(ps, lam_body) = &b.expr else {
                unreachable!("partitioned above")
            };
            self.lift_lambda(b.name.clone(), reserved[i], fvs[i].clone(), ps, lam_body)?;
        }

        let data2 = data_binds
            .iter()
            .map(|b| Ok((b.name.clone(), self.lift_expr(&b.expr)?)))
            .collect::<Result<Vec<_>, LangError>>()?;
        let body2 = self.lift_expr(body)?;
        if data2.is_empty() {
            Ok(body2)
        } else {
            Ok(LExpr::LetData {
                rec: true,
                binds: data2,
                body: Box::new(body2),
            })
        }
    }
}

/// Merges nested applications: `App(App(f, xs), ys)` → `App(f, xs ++ ys)`
/// (the engine handles over- and under-saturation uniformly).
fn app_merge(f: LExpr, mut args: Vec<LExpr>) -> LExpr {
    match f {
        LExpr::App(inner, mut inner_args) => {
            inner_args.append(&mut args);
            LExpr::App(inner, inner_args)
        }
        other => LExpr::App(Box::new(other), args),
    }
}

fn builtin_node(name: &str, mut args: Vec<LExpr>) -> LExpr {
    match name {
        "cons" => {
            let t = args.pop().expect("cons arity 2");
            let h = args.pop().expect("cons arity 2");
            LExpr::Cons(Box::new(h), Box::new(t))
        }
        "head" => LExpr::Prim(PrimOp::Head, args),
        "tail" => LExpr::Prim(PrimOp::Tail, args),
        "isnil" => LExpr::Prim(PrimOp::IsNil, args),
        "not" => LExpr::Prim(PrimOp::Not, args),
        "neg" => LExpr::Prim(PrimOp::Neg, args),
        other => unreachable!("unknown builtin {other}"),
    }
}

fn binop_prim(op: BinOp) -> PrimOp {
    op.prim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lift_src(src: &str) -> Lifted {
        lift(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn plain_expression_is_main_only() {
        let l = lift_src("1 + 2");
        assert_eq!(l.scs.len(), 1);
        assert_eq!(l.scs[l.main].name, "main");
        assert!(l.scs[l.main].params.is_empty());
    }

    #[test]
    fn lambda_becomes_supercombinator() {
        let l = lift_src("(\\x -> x + 1) 5");
        assert_eq!(l.scs.len(), 2);
        let sc = l.scs.iter().find(|s| s.name != "main").unwrap();
        assert_eq!(sc.params.len(), 1);
    }

    #[test]
    fn free_variables_are_captured() {
        let l = lift_src("let y = 10 in (\\x -> x + y) 5");
        let sc = l.scs.iter().find(|s| s.name.starts_with("lam#")).unwrap();
        assert_eq!(sc.params.len(), 2, "captured y plus parameter x");
        assert!(sc.params[0].starts_with("y$"));
    }

    #[test]
    fn recursive_function_references_own_id() {
        let l = lift_src("let rec f = \\n -> if n == 0 then 0 else f (n - 1) in f 3");
        // f has no captures, so its body applies ScRef of itself.
        let f = l.scs.iter().find(|s| s.name.starts_with("f$")).unwrap();
        assert_eq!(f.params.len(), 1);
    }

    #[test]
    fn mutual_recursion_fixpoint_captures() {
        // even/odd capture k transitively: odd uses k, even only calls odd.
        let l = lift_src(
            "let k = 1 in
             let rec even = \\n -> if n == 0 then true else odd (n - k);
                     odd  = \\n -> if n == 0 then false else even (n - k)
             in even 4",
        );
        let even = l.scs.iter().find(|s| s.name.starts_with("even$")).unwrap();
        let odd = l.scs.iter().find(|s| s.name.starts_with("odd$")).unwrap();
        assert_eq!(
            even.params.len(),
            2,
            "k captured transitively: {:?}",
            even.params
        );
        assert_eq!(odd.params.len(), 2);
    }

    #[test]
    fn builtin_as_value_gets_wrapper() {
        let l = lift_src("(\\f -> f 1 nil) cons");
        assert!(l.scs.iter().any(|s| s.name == "$cons"));
    }

    #[test]
    fn saturated_builtin_is_direct_node() {
        let l = lift_src("head [1]");
        // No wrapper generated.
        assert!(!l.scs.iter().any(|s| s.name == "$head"));
    }

    #[test]
    fn recursive_data_stays_as_let() {
        let l = lift_src("let rec ones = cons 1 ones in head ones");
        let main = &l.scs[l.main];
        assert!(
            matches!(main.body, LExpr::LetData { rec: true, .. }),
            "{:?}",
            main.body
        );
    }

    #[test]
    fn shadowing_is_capture_safe() {
        // The f captured y=1; the inner \y must not capture-confuse.
        let l = lift_src("let y = 1 in let f = \\x -> x + y in (\\y -> f y) 10");
        // Two lambdas lifted; the one for f captures y$1.
        assert_eq!(l.scs.len(), 3);
    }

    #[test]
    fn unbound_variable_rejected() {
        assert!(matches!(
            lift(&parse("x + 1").unwrap()),
            Err(LangError::Unbound { .. })
        ));
    }

    #[test]
    fn duplicate_params_rejected() {
        assert!(matches!(
            lift(&parse("\\x x -> x").unwrap()),
            Err(LangError::Duplicate { .. })
        ));
        assert!(matches!(
            lift(&parse("let a = 1; a = 2 in a").unwrap()),
            Err(LangError::Duplicate { .. })
        ));
    }

    #[test]
    fn app_merge_flattens() {
        let merged = app_merge(
            LExpr::App(Box::new(LExpr::ScRef(0)), vec![LExpr::Int(1)]),
            vec![LExpr::Int(2)],
        );
        assert_eq!(
            merged,
            LExpr::App(
                Box::new(LExpr::ScRef(0)),
                vec![LExpr::Int(1), LExpr::Int(2)]
            )
        );
    }
}
