//! The standard prelude.

/// Standard functions available to [`eval_with_prelude`](crate::eval_with_prelude):
/// a `let rec` binding group (without the final `in`), so callers append
/// `in <expr>`.
///
/// Lists are lazy (a cons cell is in weak head normal form without
/// evaluating either component), so `take 3 (nats 0)` over the infinite
/// list of naturals terminates.
pub const PRELUDE: &str = r#"
let rec
  map = \f xs -> if isnil xs then nil else cons (f (head xs)) (map f (tail xs));
  filter = \p xs -> if isnil xs then nil
                    else if p (head xs) then cons (head xs) (filter p (tail xs))
                    else filter p (tail xs);
  foldl = \f acc xs -> if isnil xs then acc else foldl f (f acc (head xs)) (tail xs);
  sum = \xs -> foldl (\a b -> a + b) 0 xs;
  product = \xs -> foldl (\a b -> a * b) 1 xs;
  length = \xs -> if isnil xs then 0 else 1 + length (tail xs);
  append = \xs ys -> if isnil xs then ys else cons (head xs) (append (tail xs) ys);
  range = \a b -> if a > b then nil else cons a (range (a + 1) b);
  nats = \n -> cons n (nats (n + 1));
  take = \n xs -> if n == 0 then nil
                  else if isnil xs then nil
                  else cons (head xs) (take (n - 1) (tail xs));
  drop = \n xs -> if n == 0 then xs
                  else if isnil xs then nil
                  else drop (n - 1) (tail xs);
  nth = \n xs -> if n == 0 then head xs else nth (n - 1) (tail xs);
  replicate = \n x -> if n == 0 then nil else cons x (replicate (n - 1) x);
  reverse = \xs -> foldl (\acc x -> cons x acc) nil xs;
  max2 = \a b -> if a > b then a else b;
  min2 = \a b -> if a < b then a else b;
  compose = \f g x -> f (g x);
  twice = \f x -> f (f x);
  fib = \n -> if n < 2 then n else fib (n - 1) + fib (n - 2);
  nfib = \n -> if n < 2 then 1 else nfib (n - 1) + nfib (n - 2) + 1;
  fact = \n -> if n == 0 then 1 else n * fact (n - 1);
  gcd = \a b -> if b == 0 then a else gcd b (a % b);
  even = \n -> n % 2 == 0;
  odd = \n -> n % 2 == 1
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_program;

    #[test]
    fn prelude_compiles() {
        let full = format!("{PRELUDE}\nin 0");
        let p = compile_program(&full).unwrap();
        assert!(p.templates.len() > 20, "one template per function");
    }
}
