//! A mini lazy functional language compiled to supercombinator templates
//! for distributed graph reduction.
//!
//! The paper motivates its model with the λ-calculus and combinator
//! reduction; this crate provides that front end: a small language with
//! lambdas, `let`/`let rec`, conditionals, lists and integer arithmetic,
//! compiled by **lambda lifting** into the supercombinator
//! [`Template`](dgr_graph::Template)s that the reduction engine splices in
//! with `expand-node`.
//!
//! ```text
//! program := expr
//! expr    := let [rec] x = e; ... in e
//!          | \x y -> e
//!          | if e then e else e
//!          | e || e | e && e | e == e | e < e | ...
//!          | e1 e2 ...        (application)
//!          | 42 | true | nil | x | (e) | [e, e, ...]
//! ```
//!
//! Recursive data (`let rec ones = cons 1 ones in …`) compiles to a
//! template with a cyclic local reference, producing the self-referencing
//! structures whose reclamation defeats reference counting (the paper's
//! Section 4 argument).
//!
//! # Example
//!
//! ```
//! use dgr_lang::eval_source;
//! use dgr_reduction::{RunOutcome, SystemConfig};
//! use dgr_graph::Value;
//!
//! let out = eval_source(
//!     "let rec fib = \\n -> if n < 2 then n else fib (n-1) + fib (n-2)
//!      in fib 10",
//!     SystemConfig::default(),
//! ).unwrap();
//! assert_eq!(out, RunOutcome::Value(Value::Int(55)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod error;
mod lexer;
mod lift;
mod parser;
mod prelude;
mod pretty;

pub use ast::{BinOp, Expr};
pub use compile::{compile_program, CompiledProgram};
pub use error::LangError;
pub use lexer::{lex, Token};
pub use parser::parse;
pub use prelude::PRELUDE;
pub use pretty::pretty;

use dgr_graph::GraphStore;
use dgr_reduction::{RunOutcome, System, SystemConfig};

/// Parses, compiles and installs `src` into a fresh [`System`].
///
/// # Errors
///
/// Returns a [`LangError`] for lexical, syntactic or scoping problems.
pub fn build_system(src: &str, config: SystemConfig) -> Result<System, LangError> {
    let program = compile_program(src)?;
    let mut g = GraphStore::new();
    let root = program.install(&mut g)?;
    g.set_root(root);
    Ok(System::new(g, program.templates, config))
}

/// Parses, compiles and evaluates `src` to completion.
///
/// # Errors
///
/// Returns a [`LangError`] if the source does not compile.
pub fn eval_source(src: &str, config: SystemConfig) -> Result<RunOutcome, LangError> {
    let mut sys = build_system(src, config)?;
    Ok(sys.run())
}

/// Like [`eval_source`], but with the [`PRELUDE`] (map, filter, fold,
/// range, …) in scope.
///
/// # Errors
///
/// Returns a [`LangError`] if the source does not compile.
///
/// # Example
///
/// ```
/// use dgr_lang::eval_with_prelude;
/// use dgr_reduction::{RunOutcome, SystemConfig};
/// use dgr_graph::Value;
///
/// let out = eval_with_prelude(
///     "sum (map (\\x -> x * x) (range 1 5))",
///     SystemConfig::default(),
/// ).unwrap();
/// assert_eq!(out, RunOutcome::Value(Value::Int(55)));
/// ```
pub fn eval_with_prelude(src: &str, config: SystemConfig) -> Result<RunOutcome, LangError> {
    let full = format!("{PRELUDE}\nin ({src})");
    eval_source(&full, config)
}

/// Builds a system with the prelude in scope without running it.
///
/// # Errors
///
/// Returns a [`LangError`] if the source does not compile.
pub fn build_with_prelude(src: &str, config: SystemConfig) -> Result<System, LangError> {
    let full = format!("{PRELUDE}\nin ({src})");
    build_system(&full, config)
}
