//! End-to-end checks of the weak-memory model checker: litmus outcome
//! sets, the clean scenario corpus, and the seeded-mutation table.

use std::collections::BTreeSet;

use dgr_atomic::Ordering;
use dgr_check::atomics::{check_clean, check_mutation, litmus, Opts, MUTATIONS, SCENARIOS};

fn opts() -> Opts {
    Opts {
        // Debug-build execution rate is a few thousand per second; keep
        // the DFS cap low enough that the big scenarios (steal-half-2)
        // hand over to PCT sampling quickly. CI runs the release-mode
        // CLI with the full default budgets.
        max_execs: 30_000,
        pct_millis: 2_000,
        ..Opts::default()
    }
}

#[test]
fn litmus_store_buffer_relaxed_reaches_the_weak_outcome() {
    let (set, exhausted) = litmus::store_buffer(Ordering::Relaxed, 100_000);
    assert!(exhausted, "SB litmus should be tiny");
    // (0, 0) is impossible on x86 hardware but legal under Relaxed —
    // reaching it is the point of modeling the language, not the host.
    assert!(set.contains(&(0, 0)), "weak outcome missing: {set:?}");
    assert!(
        set.contains(&(1, 1)),
        "interleaved outcome missing: {set:?}"
    );
}

#[test]
fn litmus_store_buffer_seqcst_forbids_the_weak_outcome() {
    let (set, exhausted) = litmus::store_buffer(Ordering::SeqCst, 100_000);
    assert!(exhausted, "SB litmus should be tiny");
    assert!(!set.contains(&(0, 0)), "SeqCst must forbid (0, 0): {set:?}");
    assert!(set.contains(&(1, 1)), "{set:?}");
}

#[test]
fn litmus_message_pass_relaxed_leaks_stale_data() {
    let (set, exhausted) = litmus::message_pass(Ordering::Relaxed, Ordering::Relaxed, 100_000);
    assert!(exhausted, "MP litmus should be tiny");
    assert!(set.contains(&0), "stale payload missing: {set:?}");
    assert!(set.contains(&42), "fresh payload missing: {set:?}");
}

#[test]
fn litmus_message_pass_release_acquire_is_exact() {
    let (set, exhausted) = litmus::message_pass(Ordering::Release, Ordering::Acquire, 100_000);
    assert!(exhausted, "MP litmus should be tiny");
    assert_eq!(
        set,
        BTreeSet::from([42, litmus::MP_SKIPPED]),
        "release/acquire allows exactly fresh-or-skipped"
    );
}

#[test]
fn corpus_is_clean_on_unmutated_code() {
    let opts = opts();
    for sc in SCENARIOS {
        match check_clean(sc, &opts) {
            Ok(o) => println!("clean {:<24} {:>7} exec(s)", sc.name, o.execs()),
            Err(cx) => panic!(
                "scenario {} found a substrate bug:\n{}",
                sc.name,
                cx.script()
            ),
        }
    }
}

#[test]
fn every_seeded_mutation_is_caught_minimized_and_replayed() {
    let opts = opts();
    for m in MUTATIONS {
        // `check_mutation` internally minimizes and re-replays the
        // schedule; an Err is either an escaped mutation (vacuous
        // corpus) or a schedule that failed to reproduce.
        let cx = check_mutation(m, &opts).unwrap_or_else(|e| panic!("{e}"));
        assert!(!cx.failure.is_empty(), "{}", m.site.name());
        assert_eq!(cx.mutation, Some(m.site.name()));
        println!(
            "caught {:<28} after {:>6} exec(s), {} forced pick(s): {}",
            m.site.name(),
            cx.execs,
            cx.picks.len(),
            cx.failure
        );
    }
}
