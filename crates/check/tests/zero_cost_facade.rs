//! Proof that the `Atomics` facade is zero-cost in production: the
//! `StdAtomics` associated types *are* `std::sync::atomic`'s types (not
//! wrappers), the family carrier is zero-sized, the mutation hooks are
//! identity/`false` constants, and the substrate's default type
//! parameters monomorphize to exactly the `StdAtomics` instantiation.

use std::any::TypeId;

use dgr_atomic::{AtomicU64Api, Atomics, Ordering, Site, StdAtomics};

#[test]
fn std_family_types_are_stds_atomics() {
    assert_eq!(
        TypeId::of::<<StdAtomics as Atomics>::U64>(),
        TypeId::of::<std::sync::atomic::AtomicU64>()
    );
    assert_eq!(
        TypeId::of::<<StdAtomics as Atomics>::U32>(),
        TypeId::of::<std::sync::atomic::AtomicU32>()
    );
    assert_eq!(
        TypeId::of::<<StdAtomics as Atomics>::Usize>(),
        TypeId::of::<std::sync::atomic::AtomicUsize>()
    );
    assert_eq!(
        TypeId::of::<<StdAtomics as Atomics>::Bool>(),
        TypeId::of::<std::sync::atomic::AtomicBool>()
    );
    assert_eq!(std::mem::size_of::<StdAtomics>(), 0);
}

#[test]
fn production_mutation_hooks_are_inert() {
    for site in [
        Site::MwClaimCas,
        Site::MwParentPublish,
        Site::DequeBottomPublish,
        Site::DequeLastElem,
        Site::MailboxTailPublish,
        Site::QuiesceRelease,
    ] {
        for ord in [
            Ordering::Relaxed,
            Ordering::Acquire,
            Ordering::Release,
            Ordering::AcqRel,
            Ordering::SeqCst,
        ] {
            assert_eq!(StdAtomics::remap(site, ord), ord);
        }
        assert!(!StdAtomics::mutated(site));
    }
}

#[test]
fn substrate_defaults_monomorphize_to_std() {
    // The unparameterized spelling used across the workspace is the very
    // same type as the explicit `StdAtomics` instantiation — there is no
    // second copy of the hot paths in a production binary.
    assert_eq!(
        TypeId::of::<dgr_sim::StealDeque>(),
        TypeId::of::<dgr_sim::StealDeque<StdAtomics>>()
    );
    assert_eq!(
        TypeId::of::<dgr_sim::SpscRing>(),
        TypeId::of::<dgr_sim::SpscRing<StdAtomics>>()
    );
    assert_eq!(
        TypeId::of::<dgr_sim::MailboxGrid>(),
        TypeId::of::<dgr_sim::MailboxGrid<StdAtomics>>()
    );
    assert_eq!(
        TypeId::of::<dgr_sim::QuiesceState>(),
        TypeId::of::<dgr_sim::QuiesceState<StdAtomics>>()
    );
}

#[test]
fn std_u64_behaves_like_std() {
    // Smoke-check the delegation itself (a wrong self-call would recurse
    // or reorder arguments; TypeId equality alone cannot see that).
    let a = <<StdAtomics as Atomics>::U64 as AtomicU64Api>::new(7);
    assert_eq!(AtomicU64Api::load(&a, Ordering::SeqCst), 7);
    AtomicU64Api::store(&a, 9, Ordering::SeqCst);
    assert_eq!(
        AtomicU64Api::compare_exchange(&a, 9, 11, Ordering::SeqCst, Ordering::SeqCst),
        Ok(9)
    );
    assert_eq!(AtomicU64Api::load(&a, Ordering::SeqCst), 11);
}
