//! Property test for the `steal_half` batching path under the shim:
//! across thief counts and schedule samples, every pushed task is
//! consumed exactly once — never lost, never duplicated.
//!
//! The single-thief tree is small enough to enumerate outright; for 2–4
//! thieves the tree explodes combinatorially, so proptest drives the
//! PCT sampler with arbitrary seeds instead — each case is a fresh batch
//! of randomized-priority schedules over the same conservation assertion
//! (`make_steal_half` fails the execution itself on any discrepancy).

use std::time::Duration;

use dgr_check::atomics::{dfs_explore, make_steal_half, pct_explore, ExecCfg, Exploration};
use proptest::prelude::*;

fn cfg() -> ExecCfg {
    ExecCfg::default()
}

#[test]
fn steal_half_one_thief_is_exhaustively_conserved() {
    match dfs_explore(|| make_steal_half(1), &cfg(), 100_000) {
        Exploration::Clean { execs } => {
            println!("1 thief: clean, {execs} execs");
        }
        Exploration::Truncated { execs } => panic!("1-thief tree should exhaust, hit {execs}"),
        Exploration::Failed { outcome, .. } => {
            panic!("task lost or duplicated: {:?}", outcome.failure)
        }
    }
}

proptest! {
    // Each case runs a time-boxed batch of schedules; keep the case
    // count low so the whole test stays a few seconds in debug.
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn steal_half_conserves_tasks_across_thief_counts(
        thieves in 2usize..5,
        seed in any::<u64>(),
    ) {
        let out = pct_explore(
            || make_steal_half(thieves),
            &cfg(),
            Duration::from_millis(150),
            seed,
        );
        if let Exploration::Failed { outcome, .. } = out {
            prop_assert!(
                false,
                "{} thieves, seed {seed:#x}: {:?}",
                thieves,
                outcome.failure
            );
        }
    }
}
