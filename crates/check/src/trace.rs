//! Counterexample traces: event-by-event replay scripts.
//!
//! A [`Counterexample`] is self-contained: scenario name, interleaving
//! mode, injected fault, and the exact event sequence (breadth-first, so
//! minimal in length). [`replay`] re-executes it deterministically and
//! verifies the same violation fires on the final event — traces printed
//! by CI are guaranteed re-runnable.

use std::fmt::Write as _;

use crate::faults::Fault;
use crate::scenario::{self, MutAction};
use crate::world::{Action, Ctx, Mode, World};

/// A minimized, replayable violation trace.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Corpus scenario name ([`scenario::by_name`] resolves it).
    pub scenario: &'static str,
    /// Interleaving mode the violation was found under.
    pub mode: Mode,
    /// The injected fault (or [`Fault::None`] — a genuine protocol bug).
    pub fault: Fault,
    /// The event sequence; every prefix is violation-free, the last event
    /// trips the checker.
    pub events: Vec<Action>,
    /// The checker's description of the violation.
    pub failure: String,
}

impl Counterexample {
    /// Renders the trace as an event-by-event replay script.
    pub fn script(&self) -> String {
        let built = scenario::by_name(self.scenario).map(|s| (s.build)());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# scenario {} | mode {} | fault {} | {} event(s)",
            self.scenario,
            self.mode,
            self.fault.name(),
            self.events.len()
        );
        for (i, a) in self.events.iter().enumerate() {
            match a {
                Action::Deliver { pe, msg } => {
                    let _ = writeln!(out, "{:>3}. deliver pe{pe}: {msg:?}", i + 1);
                }
                Action::Mutate { idx } => {
                    let desc = built
                        .as_ref()
                        .and_then(|b| b.muts.get(*idx))
                        .map_or(String::from("?"), describe_mut);
                    let _ = writeln!(out, "{:>3}. mutate #{idx}: {desc}", i + 1);
                }
            }
        }
        let _ = writeln!(out, "  => {}", self.failure);
        out
    }
}

/// A minimized, replayable schedule from the weak-memory checker
/// ([`crate::atomics`]): the atomics-layer counterpart of
/// [`Counterexample`].
///
/// `picks` is the complete recorded choice string (thread switches and
/// weak-memory read choices, in operation order); feeding it back to
/// [`crate::atomics::replay`] reproduces the identical execution. The
/// minimizer has already reduced it to the shortest forced prefix that
/// still fails — everything past the prefix is the SC-like default, so
/// the printed schedule shows the fewest deviations from sequential
/// execution that trigger the bug.
#[derive(Debug, Clone)]
pub struct ScheduleCx {
    /// Scenario name ([`crate::atomics::scenario`] resolves it).
    pub scenario: String,
    /// Active seeded mutation ([`dgr_atomic::Site::name`]), or `None`
    /// for a failure found in unmutated code — a genuine substrate bug.
    pub mutation: Option<&'static str>,
    /// The checker's description of the violation (scenario assertion,
    /// data race, deadlock, or step-budget blowup).
    pub failure: String,
    /// The recorded choice string (the replay key).
    pub picks: Vec<usize>,
    /// Preemptions the schedule needed.
    pub preemptions: usize,
    /// Executions explored before this one was found.
    pub execs: usize,
    /// Human-readable operation log of the minimized execution.
    pub steps: Vec<String>,
}

impl ScheduleCx {
    /// Renders the schedule as a step-by-step script with the replay key.
    pub fn script(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# scenario {} | mutation {} | {} preemption(s) | found after {} exec(s)",
            self.scenario,
            self.mutation.unwrap_or("none"),
            self.preemptions,
            self.execs
        );
        let _ = writeln!(out, "# replay picks: {:?}", self.picks);
        for (i, s) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "{:>3}. {s}", i + 1);
        }
        let _ = writeln!(out, "  => {}", self.failure);
        out
    }
}

fn describe_mut(m: &MutAction) -> String {
    match *m {
        MutAction::AddReference { a, b, c } => format!("add-reference({a}, {b}, {c})"),
        MutAction::DeleteReference { a, b } => format!("delete-reference({a}, {b})"),
        MutAction::Dereference { x, y } => format!("dereference({x}, {y})"),
        MutAction::AddRequester { v, from } => format!("add-requester({v} ← {from})"),
        MutAction::GrowArc { from, to } => format!("grow-arc({from} → {to})"),
        MutAction::Expand { at, .. } => format!("expand-node({at})"),
    }
}

/// Re-executes a counterexample from the scenario's initial state and
/// verifies the identical violation fires on the final event.
///
/// # Errors
///
/// Describes any divergence: unknown scenario, an event that was not
/// enabled, an early violation, a different final violation, or no
/// violation at all.
pub fn replay(cx: &Counterexample) -> Result<(), String> {
    let sc = scenario::by_name(cx.scenario)
        .ok_or_else(|| format!("unknown scenario {:?}", cx.scenario))?;
    let ctx = Ctx::new(sc, cx.mode, cx.fault);
    let mut w = World::init(&ctx);
    if cx.events.is_empty() {
        return match w.check(&ctx) {
            Err(e) if e == cx.failure => Ok(()),
            Err(e) => Err(format!("initial state violates differently: {e}")),
            Ok(()) => Err("initial state shows no violation".into()),
        };
    }
    let last = cx.events.len() - 1;
    for (i, a) in cx.events.iter().enumerate() {
        match (w.step(&ctx, a), i == last) {
            (Ok(()), false) => {}
            (Ok(()), true) => {
                return Err("replay reached the end without reproducing the violation".into())
            }
            (Err(e), true) if e == cx.failure => return Ok(()),
            (Err(e), true) => return Err(format!("replay reproduced a different violation: {e}")),
            (Err(e), false) => {
                return Err(format!("replay violated early at event {}: {e}", i + 1))
            }
        }
    }
    unreachable!("loop returns on the last event");
}
