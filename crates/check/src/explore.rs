//! Breadth-first exhaustive exploration of delivery interleavings.
//!
//! States are deduplicated on their full canonical encoding
//! ([`crate::world::World::encode`]) — not a hash — so the pruning is
//! sound: two states merge only when genuinely equal, and every reachable
//! equivalence class is visited. Because the search is breadth-first, the
//! first violation found has a minimal-length trace; parent links
//! reconstruct it as an event list for [`crate::trace`].

use std::collections::{HashMap, VecDeque};

use crate::faults::Fault;
use crate::scenario::Scenario;
use crate::trace::Counterexample;
use crate::world::{Action, Ctx, Mode, World};

/// Exploration budget.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum number of distinct states to store. Exceeding it marks the
    /// report truncated (a truncated *clean* run fails CI: exhaustiveness
    /// is the point).
    pub max_states: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_states: 1_000_000,
        }
    }
}

/// Outcome of exploring one (scenario, mode, fault) combination.
#[derive(Debug)]
pub struct Report {
    /// Scenario name.
    pub scenario: &'static str,
    /// Interleaving mode.
    pub mode: Mode,
    /// Injected fault ([`Fault::None`] for clean runs).
    pub fault: Fault,
    /// Distinct states reached.
    pub states: usize,
    /// Transitions executed (including ones leading to already-seen
    /// states).
    pub transitions: usize,
    /// Maximum BFS depth reached (longest event prefix explored).
    pub depth: usize,
    /// Distinct quiescent (terminal) states.
    pub quiescent: usize,
    /// Whether the state budget was exhausted before the frontier drained.
    pub truncated: bool,
    /// The minimal counterexample, if a check failed.
    pub violation: Option<Counterexample>,
}

/// Explores every interleaving of the scenario under the given mode and
/// fault, stopping at the first violation (whose BFS trace is minimal).
pub fn explore(sc: Scenario, mode: Mode, fault: Fault, bounds: &Bounds) -> Report {
    let ctx = Ctx::new(sc, mode, fault);
    let w0 = World::init(&ctx);
    let mut report = Report {
        scenario: sc.name,
        mode,
        fault,
        states: 1,
        transitions: 0,
        depth: 0,
        quiescent: 0,
        truncated: false,
        violation: None,
    };
    if let Err(failure) = w0.check(&ctx) {
        report.violation = Some(Counterexample {
            scenario: sc.name,
            mode,
            fault,
            events: Vec::new(),
            failure,
        });
        return report;
    }

    // Parent links for counterexample reconstruction: node id → (parent
    // id, action taken).
    let mut parents: Vec<Option<(usize, Action)>> = vec![None];
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    seen.insert(w0.encode(&ctx), 0);

    let mut frontier: VecDeque<(usize, World, usize)> = VecDeque::new();
    frontier.push_back((0, w0, 0));
    while let Some((id, w, depth)) = frontier.pop_front() {
        for a in w.enabled(&ctx) {
            let mut w2 = w.clone();
            report.transitions += 1;
            match w2.step(&ctx, &a) {
                Err(failure) => {
                    report.violation = Some(Counterexample {
                        scenario: sc.name,
                        mode,
                        fault,
                        events: reconstruct(&parents, id, a),
                        failure,
                    });
                    return report;
                }
                Ok(()) => {
                    let key = w2.encode(&ctx);
                    if seen.contains_key(&key) {
                        continue;
                    }
                    if parents.len() >= bounds.max_states {
                        report.truncated = true;
                        continue;
                    }
                    let nid = parents.len();
                    seen.insert(key, nid);
                    parents.push(Some((id, a.clone())));
                    report.states += 1;
                    report.depth = report.depth.max(depth + 1);
                    if w2.is_quiescent(&ctx) {
                        report.quiescent += 1;
                    }
                    frontier.push_back((nid, w2, depth + 1));
                }
            }
        }
    }
    report
}

fn reconstruct(parents: &[Option<(usize, Action)>], mut id: usize, last: Action) -> Vec<Action> {
    let mut events = vec![last];
    while let Some((p, a)) = &parents[id] {
        events.push(a.clone());
        id = *p;
    }
    events.reverse();
    events
}
