//! Repo-specific source lints, run in CI alongside the model checker.
//!
//! Five rules, all scoped to `crates/*/src` and the root `src/`:
//!
//! 1. **mark-word ordering** — a line touching the packed `(epoch, color)`
//!    mark word (`r_words`, the lock-free probe target the SoA arrays
//!    generalized) must not use `Ordering::Relaxed`: the release/acquire
//!    pairing on the mark word is what publishes a vertex's marked state
//!    to other workers.
//! 2. **markword-array ordering** — same rule for the dense SoA arrays
//!    (`mark_words` / `par_words` in `dgr-graph`'s `markword` module):
//!    every access must use a sanctioned ordering (Acquire, Release,
//!    AcqRel, or SeqCst), never Relaxed. A Relaxed probe could observe a
//!    claimed color without the claim's preceding writes; a Relaxed
//!    drain could read a stale parent and misroute the return wave.
//! 3. **mark-state confinement** — direct mark-slot mutation
//!    (`mark_mut` / `slot_mut` / `mark_at_mut`) is allowed only in the
//!    graph crate itself, the handler/cooperation/compressed/threaded
//!    modules of `dgr-core` (the sequential and lock-based handler
//!    implementations), and the fault injector of this crate (whose job
//!    is to play a buggy implementation). Test modules are exempt.
//! 4. **deque confinement** — constructing a `StealDeque` is allowed only
//!    inside `crates/sim/src`: the work-stealing runtime owns the deques
//!    (one per PE, owner-push/owner-pop, thieves steal through the
//!    runtime). Other crates spawn through `SpawnScope`, so no code path
//!    outside the runtime can push a task that termination detection
//!    does not know about.
//! 5. **no `unsafe`** — the workspace forbids `unsafe` outside `vendor/`;
//!    this catches it even where a crate forgot its `forbid` attribute.
//! 6. **facade bypass** — the modules model-checked through the
//!    `dgr-atomic` facade (`deque`, `mailbox`, `quiesce`, `markword`)
//!    must not touch `std::sync::atomic` directly: a raw atomic there is
//!    invisible to `dgr-check -- atomics`, so its orderings are unverified
//!    by construction. Production code still gets std atomics — via the
//!    `StdAtomics` monomorphization, which the zero-cost test pins.
//! 7. **ordering comment** — in those modules (plus the runtime wiring in
//!    `sim/src/steal.rs`), every non-`Relaxed` ordering must carry an
//!    `// ordering:` comment on the same or one of the two preceding
//!    lines, stating what the edge publishes or acquires. The SeqCst
//!    audit that introduced the facade justified every survivor; this
//!    rule keeps future edits honest. Test modules are exempt.
//!
//! The needles below are spelled with `concat!` so the lint does not flag
//! its own source.

use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub text: String,
}

const MARK_WORD: &str = concat!("r_w", "ords");
const MARKWORD_ARRAYS: [&str; 2] = [concat!("mark_w", "ords"), concat!("par_w", "ords")];
const RELAXED: &str = concat!("Rel", "axed");
const DEQUE_NEW: &str = concat!("StealDeque::", "new(");
const MUT_NEEDLES: [&str; 3] = [
    concat!("mark_m", "ut("),
    concat!("slot_m", "ut("),
    concat!("mark_at_m", "ut("),
];
const UNSAFE_NEEDLES: [&str; 4] = [
    concat!("uns", "afe {"),
    concat!("uns", "afe fn"),
    concat!("uns", "afe impl"),
    concat!("uns", "afe trait"),
];
const STD_ATOMIC: &str = concat!("std::sync::", "atomic");
const ORDERING_STRONG: [&str; 4] = [
    concat!("Ordering::", "Acquire"),
    concat!("Ordering::", "Release"),
    concat!("Ordering::", "AcqRel"),
    concat!("Ordering::", "SeqCst"),
];
const ORDERING_COMMENT: &str = concat!("// ord", "ering:");

/// The substrate modules that are generic over the atomics facade and
/// model-checked by `atomics` — raw std atomics are banned here.
const SHIMMED: [&str; 4] = [
    "crates/sim/src/deque.rs",
    "crates/sim/src/mailbox.rs",
    "crates/sim/src/quiesce.rs",
    "crates/graph/src/markword.rs",
];

/// Where every surviving non-Relaxed ordering must be annotated.
fn ordering_commented_scope(rel: &str) -> bool {
    SHIMMED.contains(&rel) || rel == "crates/sim/src/steal.rs"
}

/// Files (repo-relative, `/`-separated) allowed to mutate mark slots
/// directly. `crates/graph/src/` is prefix-matched: the graph crate owns
/// the slots.
const MUT_ALLOWLIST: [&str; 5] = [
    "crates/core/src/handler.rs",
    "crates/core/src/coop.rs",
    "crates/core/src/compressed.rs",
    "crates/core/src/threaded.rs",
    "crates/check/src/faults.rs",
];

fn allowed_mut(rel: &str) -> bool {
    rel.starts_with("crates/graph/src/") || MUT_ALLOWLIST.contains(&rel)
}

fn allowed_deque(rel: &str) -> bool {
    // The runtime owns the deques; the weak-memory checker's scenario
    // harness legitimately constructs them to model-check that ownership.
    rel.starts_with("crates/sim/src/") || rel == "crates/check/src/atomics/harness.rs"
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// The `src` directories the rules apply to, under `root`.
fn src_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path().join("src");
            if p.is_dir() {
                dirs.push(p);
            }
        }
    }
    dirs
}

/// Runs all rules over the repository rooted at `root`; findings are
/// sorted by file and line.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for d in src_dirs(root) {
        collect_rs(&d, &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let mut in_tests = false;
        let lines: Vec<&str> = text.lines().collect();
        for (i, &l) in lines.iter().enumerate() {
            let t = l.trim();
            // Everything from the test module on is exempt from the
            // confinement rule (tests legitimately hand-construct states).
            if t == "#[cfg(test)]" || t.starts_with("mod tests") {
                in_tests = true;
            }
            if t.starts_with("//") {
                continue;
            }
            if l.contains(MARK_WORD) && l.contains(RELAXED) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "mark-word-relaxed",
                    text: t.to_string(),
                });
            }
            if MARKWORD_ARRAYS.iter().any(|n| l.contains(n)) && l.contains(RELAXED) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "markword-array-relaxed",
                    text: t.to_string(),
                });
            }
            if !in_tests && !allowed_deque(&rel) && l.contains(DEQUE_NEW) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "deque-confinement",
                    text: t.to_string(),
                });
            }
            if !in_tests && !allowed_mut(&rel) && MUT_NEEDLES.iter().any(|n| l.contains(n)) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "mark-state-confinement",
                    text: t.to_string(),
                });
            }
            if UNSAFE_NEEDLES.iter().any(|n| l.contains(n)) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "no-unsafe",
                    text: t.to_string(),
                });
            }
            if !in_tests && SHIMMED.contains(&rel.as_str()) && l.contains(STD_ATOMIC) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "facade-bypass",
                    text: t.to_string(),
                });
            }
            if !in_tests
                && ordering_commented_scope(&rel)
                && ORDERING_STRONG.iter().any(|n| l.contains(n))
            {
                // The annotation may sit on the same line or anywhere in
                // the contiguous run of non-blank lines above (rustfmt
                // splits builder chains, and the justification comments
                // span several lines); a blank line ends the statement's
                // neighborhood. Capped at 12 lines so a far-away comment
                // can't blanket a whole function.
                let annotated = (i.saturating_sub(12)..=i)
                    .rev()
                    .take_while(|&j| j == i || !lines[j].trim().is_empty())
                    .any(|j| lines[j].contains(ORDERING_COMMENT));
                if !annotated {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: i + 1,
                        rule: "ordering-comment",
                        text: t.to_string(),
                    });
                }
            }
        }
    }
    findings
}

/// The repository root, resolved from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check sits two levels below the repo root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_is_lint_clean() {
        let findings = run(&repo_root());
        assert!(findings.is_empty(), "repo lint findings: {:#?}", findings);
    }

    #[test]
    fn rules_fire_on_bad_code() {
        let dir = std::env::temp_dir().join("dgr-check-lint-fixture");
        let src = dir.join("crates").join("evil").join("src");
        fs::create_dir_all(&src).unwrap();
        let bad = format!(
            "fn f() {{\n    x.{}y, Ordering::{});\n    g.{}v, s).mt_cnt += 1;\n    \
             self.{}[i].load(Ordering::{});\n    let q = {}64);\n}}\n",
            MARK_WORD, RELAXED, MUT_NEEDLES[0], MARKWORD_ARRAYS[1], RELAXED, DEQUE_NEW
        );
        fs::write(src.join("evil.rs"), bad).unwrap();
        let findings = run(&dir);
        assert!(findings.iter().any(|f| f.rule == "mark-word-relaxed"));
        assert!(findings.iter().any(|f| f.rule == "mark-state-confinement"));
        assert!(findings.iter().any(|f| f.rule == "markword-array-relaxed"));
        assert!(findings.iter().any(|f| f.rule == "deque-confinement"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomics_rules_fire_in_shimmed_modules() {
        let dir = std::env::temp_dir().join("dgr-check-lint-fixture-atomics");
        let src = dir.join("crates").join("sim").join("src");
        fs::create_dir_all(&src).unwrap();
        // A raw std atomic and an unannotated strong ordering, placed in
        // a shimmed module path; an annotated one must NOT fire.
        let bad = format!(
            "use {}::AtomicU64;\nfn f(x: &AtomicU64) {{\n    x.load({});\n    \
             {} top publishes stolen cells\n    x.store(1, {});\n}}\n",
            STD_ATOMIC, ORDERING_STRONG[3], ORDERING_COMMENT, ORDERING_STRONG[1]
        );
        fs::write(src.join("deque.rs"), bad).unwrap();
        let findings = run(&dir);
        assert!(findings.iter().any(|f| f.rule == "facade-bypass"));
        let oc: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "ordering-comment")
            .collect();
        assert_eq!(oc.len(), 1, "only the unannotated ordering fires: {oc:#?}");
        assert_eq!(oc[0].line, 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
