//! The model-checked world: graph + marking state + per-PE mailboxes +
//! scripted mutator script position, with a canonical byte encoding used
//! for state deduplication.
//!
//! A world advances by [`Action`]s: deliver one pending marking message, or
//! apply the next scripted mutation. [`World::step`] applies an action and
//! immediately re-checks the marking invariants (and, at quiescence, the
//! end-state contract), so a violation is reported on the exact event that
//! introduced it.

use std::collections::VecDeque;
use std::fmt::{self, Write as _};

use dgr_core::{coop, handle_mark, invariants, MarkMsg, MarkState};
use dgr_graph::{
    oracle, GraphStore, PartitionMap, PartitionStrategy, Priority, Requester, Slot, VertexId,
    VertexSet,
};

use crate::faults::{self, Fault};
use crate::scenario::{Built, MutAction, PassKind, Scenario};

/// Which delivery interleavings the explorer enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// `true`: any pending message may be delivered next (a superset of
    /// every mailbox discipline and of every `SchedPolicy`). `false`:
    /// per-PE FIFO mailboxes — the choice is *which PE* delivers next,
    /// exactly the nondeterminism of the deterministic simulator.
    pub any_order: bool,
    /// Number of processing elements (modulo partition).
    pub num_pes: u16,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}pe",
            if self.any_order { "any" } else { "mailbox" },
            self.num_pes
        )
    }
}

/// One transition of the explored system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Deliver a pending marking message on a PE.
    Deliver {
        /// The PE whose mailbox holds the message.
        pe: u16,
        /// The message (identified by value; duplicates are
        /// interchangeable).
        msg: MarkMsg,
    },
    /// Apply the next scripted mutator action.
    Mutate {
        /// Index into the scenario's mutation script.
        idx: usize,
    },
}

/// Immutable per-run context: the scenario instance, interleaving mode,
/// injected fault, routing, and the oracle expectations (computed once on
/// the initial and final graphs).
pub struct Ctx {
    /// The scenario being explored.
    pub scenario: Scenario,
    /// The pristine built instance (worlds clone from it).
    pub built: Built,
    /// Interleaving mode.
    pub mode: Mode,
    /// Injected protocol fault ([`Fault::None`] for clean runs).
    pub fault: Fault,
    /// Vertex → PE map.
    pub partition: PartitionMap,
    /// `R` of the initial graph.
    pub r_initial: VertexSet,
    /// `R` of the final graph (after the full mutation script).
    pub r_final: VertexSet,
    /// Oracle priorities on the final graph.
    pub prior_final: Vec<Option<Priority>>,
    /// `T` of the initial graph.
    pub t_initial: VertexSet,
    /// `T` of the final graph.
    pub t_final: VertexSet,
}

impl Ctx {
    /// Builds the context: instantiates the scenario and precomputes the
    /// oracle expectations.
    pub fn new(scenario: Scenario, mode: Mode, fault: Fault) -> Ctx {
        let built = (scenario.build)();
        let gf = built.final_graph();
        let partition =
            PartitionMap::new(mode.num_pes, built.g.capacity(), PartitionStrategy::Modulo);
        Ctx {
            r_initial: oracle::reachable_r(&built.g),
            r_final: oracle::reachable_r(&gf),
            prior_final: oracle::priorities(&gf),
            t_initial: oracle::reachable_t(&built.g, &built.tasks),
            t_final: oracle::reachable_t(&gf, &built.tasks),
            scenario,
            built,
            mode,
            fault,
            partition,
        }
    }

    /// The mark slot this run operates on.
    pub fn slot(&self) -> Slot {
        self.built.kind.slot()
    }

    /// Routes a message to its owning PE (dummy-root returns go to PE 0,
    /// where the pass was initiated — same as the drivers).
    pub fn route_pe(&self, msg: &MarkMsg) -> u16 {
        msg.dest_vertex()
            .map(|v| self.partition.pe_of(v).raw())
            .unwrap_or(0)
    }
}

/// One reachable state of the explored system.
#[derive(Clone)]
pub struct World {
    /// The (mutating) graph.
    pub g: GraphStore,
    /// Marking-process state.
    pub state: MarkState,
    /// Per-PE FIFO mailboxes of undelivered marking messages.
    pub queues: Vec<VecDeque<MarkMsg>>,
    /// How many scripted mutations have been applied.
    pub mut_cursor: usize,
    /// Whether the injected fault has fired yet (faults fire once).
    pub fault_fired: bool,
    /// T-arcs created while their source was already T-marked: exempt from
    /// invariants 1/2 on the T slot (snapshot semantics; see
    /// [`dgr_core::coop::coop_t_arc`]).
    pub screened: Vec<(VertexId, VertexId)>,
}

impl World {
    /// The initial world of a run: pristine graph, initial messages
    /// enqueued, no mutations applied.
    pub fn init(ctx: &Ctx) -> World {
        let mut w = World {
            g: ctx.built.g.clone(),
            state: ctx.built.state.clone(),
            queues: vec![VecDeque::new(); ctx.mode.num_pes as usize],
            mut_cursor: 0,
            fault_fired: false,
            screened: Vec::new(),
        };
        for m in ctx.built.initial.clone() {
            w.enqueue(ctx, m);
        }
        w
    }

    fn enqueue(&mut self, ctx: &Ctx, m: MarkMsg) {
        let pe = ctx.route_pe(&m) as usize;
        self.queues[pe].push_back(m);
    }

    /// All undelivered messages, in mailbox order.
    pub fn pending(&self) -> Vec<MarkMsg> {
        self.queues.iter().flat_map(|q| q.iter().copied()).collect()
    }

    /// `true` once every message is delivered and every mutation applied.
    pub fn is_quiescent(&self, ctx: &Ctx) -> bool {
        self.mut_cursor == ctx.built.muts.len() && self.queues.iter().all(|q| q.is_empty())
    }

    /// The actions enabled in this state. Identical pending messages are
    /// interchangeable, so only one delivery per distinct message is
    /// offered in any-order mode.
    pub fn enabled(&self, ctx: &Ctx) -> Vec<Action> {
        let mut acts = Vec::new();
        if ctx.mode.any_order {
            let mut seen: Vec<MarkMsg> = Vec::new();
            for (pe, q) in self.queues.iter().enumerate() {
                for &m in q {
                    if !seen.contains(&m) {
                        seen.push(m);
                        acts.push(Action::Deliver {
                            pe: pe as u16,
                            msg: m,
                        });
                    }
                }
            }
        } else {
            for (pe, q) in self.queues.iter().enumerate() {
                if let Some(&m) = q.front() {
                    acts.push(Action::Deliver {
                        pe: pe as u16,
                        msg: m,
                    });
                }
                // One-shot transport reorder: the second message may jump
                // the queue. Skipped when it equals the front by value —
                // delivering it would not be a reorder at all.
                if ctx.fault == Fault::ReorderDeliver && !self.fault_fired {
                    if let Some(&m) = q.get(1) {
                        if q.front() != Some(&m) {
                            acts.push(Action::Deliver {
                                pe: pe as u16,
                                msg: m,
                            });
                        }
                    }
                }
            }
        }
        if self.mut_cursor < ctx.built.muts.len() {
            acts.push(Action::Mutate {
                idx: self.mut_cursor,
            });
        }
        acts
    }

    /// Applies one action, then re-checks the invariants (and the
    /// end-state contract if the world became quiescent).
    ///
    /// # Errors
    ///
    /// Returns the violation description; messages starting with
    /// `replay desync` indicate the action was not enabled (only possible
    /// when replaying a foreign trace).
    pub fn step(&mut self, ctx: &Ctx, action: &Action) -> Result<(), String> {
        match *action {
            Action::Deliver { pe, msg } => {
                let q = self
                    .queues
                    .get_mut(pe as usize)
                    .ok_or_else(|| format!("replay desync: no PE {pe}"))?;
                let pos = q
                    .iter()
                    .position(|m| *m == msg)
                    .ok_or_else(|| format!("replay desync: {msg:?} not pending on pe{pe}"))?;
                if !ctx.mode.any_order && pos != 0 {
                    if ctx.fault == Fault::ReorderDeliver && !self.fault_fired && pos == 1 {
                        self.fault_fired = true;
                    } else {
                        return Err(format!("replay desync: {msg:?} not at front of pe{pe}"));
                    }
                }
                q.remove(pos);
                let mut out: Vec<MarkMsg> = Vec::new();
                if !faults::pre_deliver(self, ctx, &msg, &mut out) {
                    handle_mark(&mut self.state, &mut self.g, msg, &mut |m| out.push(m));
                }
                faults::post_deliver(self, ctx, &msg, &mut out);
                for m in out {
                    self.enqueue(ctx, m);
                }
            }
            Action::Mutate { idx } => {
                if idx != self.mut_cursor {
                    return Err(format!(
                        "replay desync: mutation #{idx} but cursor at {}",
                        self.mut_cursor
                    ));
                }
                self.apply_mut(ctx, idx);
            }
        }
        self.check(ctx)
    }

    /// Notes a new T-arc `from → to` created while `from` was already
    /// T-marked: deliberately not chased (snapshot semantics), hence
    /// exempt from invariants 1/2 on the T slot.
    fn note_t_arc(&mut self, from: VertexId, to: VertexId) {
        if self.state.t_active && self.g.mark(from, Slot::T).is_marked() {
            self.screened.push((from, to));
        }
    }

    fn apply_mut(&mut self, ctx: &Ctx, idx: usize) {
        let mut out: Vec<MarkMsg> = Vec::new();
        match ctx.built.muts[idx].clone() {
            MutAction::AddReference { a, b, c } => {
                if ctx.fault == Fault::SkipCoopSplice && !self.fault_fired {
                    // The injected bug: splice the arc without cooperating
                    // with the marking processes.
                    self.fault_fired = true;
                    self.g.connect(a, c);
                } else {
                    self.note_t_arc(a, c);
                    coop::add_reference(&mut self.state, &mut self.g, a, b, c, &mut |m| {
                        out.push(m)
                    })
                    .expect("scenario script: add_reference precondition");
                }
            }
            MutAction::DeleteReference { a, b } => {
                coop::delete_reference(&mut self.g, a, b);
            }
            MutAction::Dereference { x, y } => {
                coop::dereference(&mut self.g, x, y);
            }
            MutAction::AddRequester { v, from } => {
                self.note_t_arc(v, from);
                coop::add_requester(
                    &mut self.state,
                    &mut self.g,
                    v,
                    Requester::Vertex(from),
                    &mut |m| out.push(m),
                );
            }
            MutAction::GrowArc { from, to } => {
                self.note_t_arc(from, to);
                coop::coop_r_arc(&mut self.state, &mut self.g, from, to, &mut |m| out.push(m));
                coop::coop_t_arc(&mut self.state, &mut self.g, from, to, &mut |m| out.push(m));
                self.g.connect(from, to);
            }
            MutAction::Expand { at, actuals } => {
                let tpl = ctx
                    .built
                    .template
                    .as_ref()
                    .expect("Expand needs a template");
                coop::expand_node(&mut self.state, &mut self.g, at, tpl, &actuals, &mut |m| {
                    out.push(m)
                })
                .expect("scenario script: expand_node");
            }
        }
        self.mut_cursor += 1;
        for m in out {
            self.enqueue(ctx, m);
        }
    }

    /// Runs the per-event checks on the current state.
    ///
    /// # Errors
    ///
    /// Returns the first invariant or end-state violation found.
    pub fn check(&self, ctx: &Ctx) -> Result<(), String> {
        let pending = self.pending();
        let slot = ctx.slot();
        let screened = &self.screened;
        invariants::check_invariants_where(&self.g, slot, &pending, &self.state, |p, c| {
            slot == Slot::T && screened.contains(&(p, c))
        })?;
        if self.is_quiescent(ctx) {
            self.check_end(ctx)?;
        }
        Ok(())
    }

    /// End-state safety/liveness against the oracle expectations.
    fn check_end(&self, ctx: &Ctx) -> Result<(), String> {
        let slot = ctx.slot();
        match ctx.built.kind {
            PassKind::Mark1 | PassKind::Mark2 => {
                if !self.state.r_done {
                    return Err("liveness: quiescent but the R-side done flag is unset".into());
                }
            }
            PassKind::Mark3 => {
                if !self.state.t_done {
                    return Err("liveness: quiescent but t_done is unset".into());
                }
            }
        }
        for v in self.g.live_ids() {
            if self.g.mark(v, slot).is_transient() {
                return Err(format!("liveness: quiescent but {v} is still transient"));
            }
        }
        let marked: VertexSet = self
            .g
            .live_ids()
            .filter(|&v| self.g.mark(v, slot).is_marked())
            .collect();
        match ctx.built.kind {
            PassKind::Mark3 => {
                // Snapshot semantics: T_initial ⊆ marked ⊆ T_final.
                for v in ctx.t_initial.iter() {
                    if !marked.contains(v) {
                        return Err(format!("liveness: {v} ∈ T at cycle start but not T-marked"));
                    }
                }
                for v in marked.iter() {
                    if !ctx.t_final.contains(v) {
                        return Err(format!("safety: {v} T-marked but never task-reachable"));
                    }
                }
            }
            PassKind::Mark1 | PassKind::Mark2 => {
                // Liveness: everything reachable in the final graph is
                // marked — equivalently GAR ∩ R = ∅ for the garbage report
                // (garbage = live ∧ unmarked).
                for v in ctx.r_final.iter() {
                    if !marked.contains(v) {
                        return Err(format!(
                            "liveness: {v} ∈ R not marked — it would be collected as garbage"
                        ));
                    }
                }
                // Safety: all pre-cycle garbage is found. A marked vertex
                // must be reachable in the final graph (exact scenarios) or
                // at least have been reachable at one end of the cycle.
                for v in marked.iter() {
                    let ok = if ctx.built.end.exact {
                        ctx.r_final.contains(v)
                    } else {
                        ctx.r_final.contains(v) || ctx.r_initial.contains(v)
                    };
                    if !ok {
                        return Err(format!("safety: garbage vertex {v} is marked"));
                    }
                }
                if ctx.built.end.priorities {
                    for v in self.g.live_ids() {
                        let s = self.g.mark(v, Slot::R);
                        let got = s.is_marked().then_some(s.prior);
                        if got != ctx.prior_final[v.index()] {
                            return Err(format!(
                                "priority mismatch at {v}: marked {got:?}, oracle {:?}",
                                ctx.prior_final[v.index()]
                            ));
                        }
                    }
                }
                if ctx.built.end.closure {
                    invariants::check_priority_closure(&self.g)?;
                }
            }
        }
        Ok(())
    }

    /// Canonical byte encoding of this state, used as the deduplication
    /// key. Full encodings (not hashes) keep the search sound: two states
    /// merge only if genuinely equal. Mark slots are read through the
    /// normalizing accessor so stale epochs cannot split equal states; in
    /// any-order mode mailbox layout is irrelevant, so the message multiset
    /// is encoded sorted.
    pub fn encode(&self, ctx: &Ctx) -> Vec<u8> {
        let mut s = String::new();
        let _ = write!(s, "root={:?};", self.g.root());
        for v in self.g.live_ids() {
            let vx = self.g.vertex(v);
            let _ = write!(
                s,
                "v{}:a{:?}k{:?}q{:?}val{}|{:?}|{:?};",
                v.index(),
                vx.args(),
                vx.request_kinds(),
                vx.requested(),
                vx.value.is_some(),
                self.g.mark(v, Slot::R),
                self.g.mark(v, Slot::T),
            );
        }
        let _ = write!(
            s,
            "st={:?};mc={};ff={};scr={:?};",
            self.state, self.mut_cursor, self.fault_fired, self.screened
        );
        if ctx.mode.any_order {
            let mut msgs: Vec<String> = self
                .queues
                .iter()
                .flatten()
                .map(|m| format!("{m:?}"))
                .collect();
            msgs.sort();
            let _ = write!(s, "q={msgs:?}");
        } else {
            for (pe, q) in self.queues.iter().enumerate() {
                let _ = write!(s, "q{pe}={q:?};");
            }
        }
        s.into_bytes()
    }
}
