//! Litmus self-tests for the weak-memory model.
//!
//! These are not substrate checks — they check the *checker*: classic
//! two-thread litmus patterns whose allowed outcome sets under C11 are
//! known. `dgr-check -- atomics` (and the integration tests) assert the
//! model reaches exactly the weak outcomes the declared orderings allow:
//! store buffering under `Relaxed` must reach `(0, 0)` (illegal on x86's
//! TSO hardware, legal in the language model — the whole reason a shim
//! layer exists), and must not under `SeqCst`; message passing must leak
//! a stale payload under a `Relaxed` flag and must not under
//! release/acquire.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use dgr_atomic::{AtomicU64Api, Ordering};

use super::sched::{dfs_explore, ExecCfg, Exploration};
use super::shim::{spawn, ShimAtomicU64, ShimCell};

/// Outcome recorded by [`message_pass`] when the consumer saw no flag.
pub const MP_SKIPPED: u64 = 99;

fn collect<T: Ord + Clone + Send + 'static>(
    make: impl FnMut() -> Box<dyn FnOnce() + Send + 'static>,
    seen: Arc<Mutex<BTreeSet<T>>>,
    max_execs: usize,
) -> (BTreeSet<T>, bool) {
    let ex = dfs_explore(make, &ExecCfg::default(), max_execs);
    let exhausted = match ex {
        Exploration::Clean { .. } => true,
        Exploration::Truncated { .. } => false,
        Exploration::Failed { outcome, .. } => {
            unreachable!("litmus scenario has no assertions: {:?}", outcome.failure)
        }
    };
    let set = seen.lock().unwrap_or_else(|e| e.into_inner()).clone();
    (set, exhausted)
}

/// Store buffering (SB): `t1: x=1; r1=y` ∥ `t2: y=1; r2=x`, both with
/// `ord`. Returns every `(r1, r2)` the bounded exploration reached, and
/// whether the exploration was exhaustive.
pub fn store_buffer(ord: Ordering, max_execs: usize) -> (BTreeSet<(u64, u64)>, bool) {
    let seen: Arc<Mutex<BTreeSet<(u64, u64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let make = {
        let seen = Arc::clone(&seen);
        move || {
            let seen = Arc::clone(&seen);
            Box::new(move || {
                let x = Arc::new(ShimAtomicU64::new(0));
                let y = Arc::new(ShimAtomicU64::new(0));
                let r1c = Arc::new(ShimCell::new(0));
                let r2c = Arc::new(ShimCell::new(0));
                let t1 = {
                    let (x, y, r1c) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1c));
                    spawn(move || {
                        x.store(1, ord);
                        r1c.write(y.load(ord));
                    })
                };
                let t2 = {
                    let (x, y, r2c) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2c));
                    spawn(move || {
                        y.store(1, ord);
                        r2c.write(x.load(ord));
                    })
                };
                t1.join();
                t2.join();
                seen.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert((r1c.read(), r2c.read()));
            }) as Box<dyn FnOnce() + Send + 'static>
        }
    };
    collect(make, seen, max_execs)
}

/// Message passing (MP): `t1: data=42 (Relaxed); flag=1 (pub_ord)` ∥
/// `t2: if flag (con_ord) { r=data (Relaxed) }`. Returns every observed
/// `r` ([`MP_SKIPPED`] when the consumer missed the flag), and whether
/// the exploration was exhaustive.
pub fn message_pass(
    pub_ord: Ordering,
    con_ord: Ordering,
    max_execs: usize,
) -> (BTreeSet<u64>, bool) {
    let seen: Arc<Mutex<BTreeSet<u64>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let make = {
        let seen = Arc::clone(&seen);
        move || {
            let seen = Arc::clone(&seen);
            Box::new(move || {
                let data = Arc::new(ShimAtomicU64::new(0));
                let flag = Arc::new(ShimAtomicU64::new(0));
                let rc = Arc::new(ShimCell::new(0));
                let t1 = {
                    let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                    spawn(move || {
                        data.store(42, Ordering::Relaxed);
                        flag.store(1, pub_ord);
                    })
                };
                let t2 = {
                    let (data, flag, rc) = (Arc::clone(&data), Arc::clone(&flag), Arc::clone(&rc));
                    spawn(move || {
                        let r = if flag.load(con_ord) == 1 {
                            data.load(Ordering::Relaxed)
                        } else {
                            MP_SKIPPED
                        };
                        rc.write(r);
                    })
                };
                t1.join();
                t2.join();
                seen.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(rc.read());
            }) as Box<dyn FnOnce() + Send + 'static>
        }
    };
    collect(make, seen, max_execs)
}
