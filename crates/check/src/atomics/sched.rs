//! The controlled scheduler: virtual threads on a token-passing mutex,
//! every nondeterministic decision funneled through one recorded choice
//! stream.
//!
//! Scenario code runs on real OS threads, but only the thread holding the
//! **token** may perform a shim operation; finishing an operation picks
//! the next token holder. Two kinds of choice points exist:
//!
//! * **thread choices** — which runnable virtual thread runs next. The
//!   default (index 0) keeps the current thread running; alternatives are
//!   the other runnable threads. Switching away from a still-runnable
//!   thread is a *preemption*, and depth-first exploration bounds the
//!   number of preemptions per execution (classic context-bounding: the
//!   seeded ordering bugs here all need ≤ 2);
//! * **read choices** — which message a weak-memory load observes
//!   (index 0 = newest, the SC-like default; see
//!   [`Memory`](super::memory::Memory)).
//!
//! Every choice is recorded as `(picked, alternatives)`. Re-running with
//! a recorded prefix **forced** reproduces the execution deterministically
//! — that is the replay format — and advancing the deepest prefix digit
//! with an untried alternative enumerates the whole bounded tree
//! (lexicographic DFS, no repeats). When the bounded-exhaustive budget is
//! too small, a randomized PCT-style fallback assigns each thread a
//! random priority, demotes the running thread at a few random change
//! points, and picks the highest-priority runnable thread — still
//! recording choices, so anything it finds replays and minimizes exactly
//! like a DFS counterexample.
//!
//! Minimization reruns the failing choice string under progressively
//! shorter forced prefixes (the suffix falls back to the SC-like
//! defaults) and keeps the shortest prefix that still fails — the result
//! is a schedule with the fewest forced deviations from sequential
//! execution, which is what `trace::ScheduleCx` renders.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use dgr_atomic::{Ordering, Site};

use super::memory::{LocKind, Memory, ReadChooser};

/// Marker payload for unwinding a virtual thread out of an aborted
/// execution (not a real panic).
struct AbortedExec;

/// Silences the default panic printer for [`AbortedExec`] unwinds —
/// they fire on every aborted execution, and an exploration aborts
/// thousands. Real panics still reach the previous hook.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortedExec>() {
                prev(info);
            }
        }));
    });
}

/// What a recorded choice decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceKind {
    /// Which virtual thread runs next.
    Thread,
    /// Which message a load of this location observed.
    Read(usize),
}

/// One recorded nondeterministic decision.
#[derive(Debug, Clone)]
pub struct ChoiceRec {
    /// Index taken (0 = the SC-like / run-on default).
    pub picked: usize,
    /// How many alternatives existed.
    pub alts: usize,
    /// What was decided.
    pub kind: ChoiceKind,
}

/// Exploration strategy for choices beyond the forced prefix.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Defaults (index 0) — the DFS leaves, and the replay mode.
    Dfs,
    /// Randomized priority scheduling from this seed.
    Pct {
        /// xorshift64* seed (vary per attempt).
        seed: u64,
    },
}

/// Per-execution configuration.
#[derive(Debug, Clone)]
pub struct ExecCfg {
    /// The seeded mutation active in this execution, if any.
    pub mutation: Option<Site>,
    /// Max preemptions DFS may force (PCT ignores this).
    pub preemption_bound: usize,
    /// Hard step budget — exceeding it fails the execution loudly.
    pub max_steps: usize,
    /// Choice strategy beyond the forced prefix.
    pub strategy: Strategy,
}

impl Default for ExecCfg {
    fn default() -> Self {
        ExecCfg {
            mutation: None,
            preemption_bound: 2,
            max_steps: 20_000,
            strategy: Strategy::Dfs,
        }
    }
}

/// Everything one finished execution reports back.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// First failure observed (race, scenario assertion, deadlock, step
    /// budget), or `None` for a clean execution.
    pub failure: Option<String>,
    /// The full recorded choice stream (the replay key).
    pub choices: Vec<ChoiceRec>,
    /// Human-readable step log.
    pub oplog: Vec<String>,
    /// Preemptions the schedule used.
    pub preemptions: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    Ready,
    BlockedOn(usize),
    Finished,
}

struct Chooser {
    forced: Vec<usize>,
    pos: usize,
    recorded: Vec<ChoiceRec>,
    strategy: Strategy,
    rng: u64,
}

impl Chooser {
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic per seed, no global entropy.
        let mut x = self.rng.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Picks one of `n` alternatives (`default_pick` applies beyond the
    /// forced prefix in DFS mode).
    fn choose(&mut self, n: usize, default_pick: usize, kind: ChoiceKind) -> usize {
        debug_assert!(n > 0);
        let picked = if self.pos < self.forced.len() {
            // A forced digit can exceed `n` only when minimization probes
            // a prefix against a diverged execution; clamping keeps the
            // probe running (its outcome simply won't be adopted).
            self.forced[self.pos].min(n - 1)
        } else {
            match self.strategy {
                Strategy::Dfs => default_pick.min(n - 1),
                Strategy::Pct { .. } => match kind {
                    // Thread picks under PCT are priority-driven by the
                    // caller, which passes them via `default_pick`.
                    ChoiceKind::Thread => default_pick.min(n - 1),
                    ChoiceKind::Read(_) => (self.next_rand() % n as u64) as usize,
                },
            }
        };
        self.pos += 1;
        self.recorded.push(ChoiceRec {
            picked,
            alts: n,
            kind,
        });
        picked
    }
}

impl ReadChooser for Chooser {
    fn choose_read(&mut self, loc: usize, n: usize) -> usize {
        self.choose(n, 0, ChoiceKind::Read(loc))
    }
}

/// Why the scheduler is picking a new thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Switch {
    /// After an ordinary operation: staying on the current thread is the
    /// default, leaving is a preemption.
    AfterOp,
    /// An explicit yield: the point is to run *someone else*.
    Yield,
    /// The current thread blocked or finished: it is not a candidate.
    Gone,
}

struct Inner {
    mem: Memory,
    chooser: Chooser,
    threads: Vec<VState>,
    current: usize,
    mutation: Option<Site>,
    preemption_bound: usize,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    abort: bool,
    oplog: Vec<String>,
    /// PCT state: per-thread priorities and remaining change points
    /// (step indices at which the running thread is demoted).
    pct_prio: Vec<u64>,
    pct_changes: Vec<usize>,
    pct: bool,
}

/// The shared scheduler + memory of one execution. Shim atomic types talk
/// to this through the thread-local context in `atomics::shim`.
pub struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn new(cfg: &ExecCfg, forced: Vec<usize>) -> Arc<Self> {
        let (pct, seed) = match cfg.strategy {
            Strategy::Dfs => (false, 1),
            Strategy::Pct { seed } => (true, seed),
        };
        let mut chooser = Chooser {
            forced,
            pos: 0,
            recorded: Vec::new(),
            strategy: cfg.strategy.clone(),
            rng: seed,
        };
        let mut pct_changes = Vec::new();
        let mut pct_prio = Vec::new();
        if pct {
            // d − 1 = 2 change points over an assumed ~200-step run; the
            // exact horizon matters little, variety across seeds does.
            for _ in 0..2 {
                pct_changes.push((chooser.next_rand() % 200) as usize);
            }
            pct_prio.push(chooser.next_rand());
        }
        let mut mem = Memory::default();
        mem.ensure_thread(0);
        Arc::new(Shared {
            inner: Mutex::new(Inner {
                mem,
                chooser,
                threads: vec![VState::Ready],
                current: 0,
                mutation: cfg.mutation,
                preemption_bound: cfg.preemption_bound,
                preemptions: 0,
                steps: 0,
                max_steps: cfg.max_steps,
                failure: None,
                abort: false,
                oplog: Vec::new(),
                pct_prio,
                pct_changes,
                pct,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The mutation active in this execution (read by `ShimAtomics`).
    pub fn mutation(&self) -> Option<Site> {
        self.lock().mutation
    }

    /// Allocates a model location. Scenario setup runs on the root thread
    /// before any spawn, so allocation order is deterministic.
    pub fn alloc_loc(&self, kind: LocKind, init: u64) -> usize {
        self.lock().mem.alloc(kind, init)
    }

    /// Waits for the token (or unwinds if the execution aborted).
    fn enter(&self, me: usize) -> MutexGuard<'_, Inner> {
        let mut g = self.lock();
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(AbortedExec);
            }
            if g.current == me {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn fail_locked(&self, g: &mut Inner, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.abort = true;
        self.cv.notify_all();
    }

    /// Records a scenario-level failure and unwinds the calling thread.
    pub fn fail(&self, me: usize, msg: String) -> ! {
        let mut g = self.enter(me);
        let msg = format!("t{me}: {msg}");
        self.fail_locked(&mut g, msg);
        drop(g);
        panic::panic_any(AbortedExec);
    }

    fn bump_step(&self, g: &mut Inner) -> bool {
        g.steps += 1;
        if g.steps > g.max_steps {
            self.fail_locked(
                g,
                format!("step budget exceeded ({} shim operations)", g.max_steps),
            );
            return false;
        }
        true
    }

    /// Picks the next token holder; `me` is the thread giving it up.
    fn pick_next(&self, g: &mut Inner, me: usize, why: Switch) {
        // Unblock any join whose target has finished.
        for t in 0..g.threads.len() {
            if let VState::BlockedOn(j) = g.threads[t] {
                if g.threads[j] == VState::Finished {
                    g.threads[t] = VState::Ready;
                }
            }
        }
        let runnable: Vec<usize> = (0..g.threads.len())
            .filter(|&t| g.threads[t] == VState::Ready)
            .collect();
        if runnable.is_empty() {
            if g.threads.iter().any(|&s| s != VState::Finished) {
                self.fail_locked(g, "deadlock: unfinished threads, none runnable".into());
            }
            g.current = usize::MAX; // execution over
            self.cv.notify_all();
            return;
        }
        let me_runnable = g.threads.get(me) == Some(&VState::Ready);
        // Build the ordered alternative list: default first.
        let mut alts: Vec<usize> = Vec::with_capacity(runnable.len());
        match why {
            Switch::AfterOp if me_runnable => {
                if g.preemptions >= g.preemption_bound && !g.pct {
                    alts.push(me); // bound exhausted: run on
                } else {
                    alts.push(me);
                    alts.extend(runnable.iter().copied().filter(|&t| t != me));
                }
            }
            Switch::Yield if me_runnable => {
                // The point of a yield is to let someone else run.
                alts.extend(runnable.iter().copied().filter(|&t| t != me));
                if alts.is_empty() {
                    alts.push(me);
                }
            }
            _ => alts.extend(runnable.iter().copied()),
        }
        let default_pick = if g.pct {
            // Highest-priority runnable thread, with demotions at the
            // pre-drawn change points.
            if g.pct_changes.first().is_some_and(|&s| g.steps >= s) {
                g.pct_changes.remove(0);
                if let Some(p) = g.pct_prio.get_mut(me) {
                    *p = 0;
                }
            }
            alts.iter()
                .enumerate()
                .max_by_key(|(_, &t)| g.pct_prio.get(t).copied().unwrap_or(0))
                .map(|(i, _)| i)
                .unwrap_or(0)
        } else {
            0
        };
        let pick = g
            .chooser
            .choose(alts.len(), default_pick, ChoiceKind::Thread);
        let next = alts[pick];
        if next != me {
            if me_runnable && why == Switch::AfterOp {
                g.preemptions += 1;
                let line = format!("-- t{me} => t{next} (preempt)");
                g.oplog.push(line);
            } else {
                g.oplog.push(format!("-- t{me} => t{next}"));
            }
        }
        g.current = next;
        self.cv.notify_all();
    }

    /// One complete shim operation: wait for the token, run `body`
    /// against the memory, log, reschedule.
    fn op<R>(
        &self,
        me: usize,
        body: impl FnOnce(&mut Memory, &mut Chooser) -> Result<(R, String), String>,
        why: Switch,
    ) -> R {
        let mut g = self.enter(me);
        if !self.bump_step(&mut g) {
            drop(g);
            panic::panic_any(AbortedExec);
        }
        let inner = &mut *g;
        match body(&mut inner.mem, &mut inner.chooser) {
            Ok((r, line)) => {
                if !line.is_empty() {
                    inner.oplog.push(format!("t{me} {line}"));
                }
                self.pick_next(&mut g, me, why);
                drop(g);
                r
            }
            Err(msg) => {
                let msg = format!("t{me}: {msg}");
                self.fail_locked(&mut g, msg);
                drop(g);
                panic::panic_any(AbortedExec);
            }
        }
    }

    fn ord_name(ord: Ordering) -> &'static str {
        match ord {
            Ordering::Relaxed => "Relaxed",
            Ordering::Acquire => "Acquire",
            Ordering::Release => "Release",
            Ordering::AcqRel => "AcqRel",
            Ordering::SeqCst => "SeqCst",
            _ => "?",
        }
    }

    /// Atomic load through the model.
    pub fn atomic_load(&self, me: usize, loc: usize, ord: Ordering) -> u64 {
        self.op(
            me,
            |mem, ch| {
                let v = mem.load(me, loc, ord, ch);
                let name = &mem.locs[loc].name;
                Ok((v, format!("{name}.load({}) = {v}", Self::ord_name(ord))))
            },
            Switch::AfterOp,
        )
    }

    /// Atomic store through the model.
    pub fn atomic_store(&self, me: usize, loc: usize, val: u64, ord: Ordering) {
        self.op(
            me,
            |mem, _| {
                mem.store(me, loc, val, ord);
                let name = &mem.locs[loc].name;
                Ok(((), format!("{name}.store({val}, {})", Self::ord_name(ord))))
            },
            Switch::AfterOp,
        )
    }

    /// Atomic fetch-and-apply (`f` must be total — always stores).
    pub fn atomic_fetch(
        &self,
        me: usize,
        loc: usize,
        ord: Ordering,
        label: &str,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.op(
            me,
            |mem, _| {
                let old = mem.rmw(me, loc, ord, |v| Some(f(v)));
                let name = &mem.locs[loc].name;
                Ok((
                    old,
                    format!("{name}.{label}({}) = {old}", Self::ord_name(ord)),
                ))
            },
            Switch::AfterOp,
        )
    }

    /// Atomic compare-exchange (strong; weak maps here too — spurious
    /// failure is not modeled, which only removes retry interleavings).
    pub fn atomic_cas(
        &self,
        me: usize,
        loc: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.op(
            me,
            |mem, _| {
                let newest = mem.locs[loc].msgs.last().expect("init").val;
                let (res, ord, verdict) = if newest == current {
                    (Ok(current), success, "ok")
                } else {
                    (Err(newest), failure, "failed")
                };
                let got = mem.rmw(me, loc, ord, |v| {
                    (res.is_ok() && v == current).then_some(new)
                });
                debug_assert_eq!(got, newest);
                let name = &mem.locs[loc].name;
                Ok((
                    res,
                    format!(
                        "{name}.cas({current} -> {new}, {}) {verdict} (saw {newest})",
                        Self::ord_name(ord)
                    ),
                ))
            },
            Switch::AfterOp,
        )
    }

    /// Race-checked non-atomic read.
    pub fn cell_read(&self, me: usize, loc: usize) -> u64 {
        self.op(
            me,
            |mem, _| match mem.cell_read(me, loc) {
                Ok(v) => {
                    let name = &mem.locs[loc].name;
                    Ok((v, format!("{name}.read() = {v}")))
                }
                Err(r) => Err(r.0),
            },
            Switch::AfterOp,
        )
    }

    /// Race-checked non-atomic write.
    pub fn cell_write(&self, me: usize, loc: usize, val: u64) {
        self.op(
            me,
            |mem, _| match mem.cell_write(me, loc, val) {
                Ok(()) => {
                    let name = &mem.locs[loc].name;
                    Ok(((), format!("{name}.write({val})")))
                }
                Err(r) => Err(r.0),
            },
            Switch::AfterOp,
        )
    }

    /// Fence through the model.
    pub fn fence(&self, me: usize, ord: Ordering) {
        self.op(
            me,
            |mem, _| {
                mem.fence(me, ord);
                Ok(((), format!("fence({})", Self::ord_name(ord))))
            },
            Switch::AfterOp,
        )
    }

    /// Scheduling point that prefers to run someone else.
    pub fn yield_now(&self, me: usize) {
        self.op(me, |_, _| Ok(((), String::new())), Switch::Yield)
    }

    /// Registers a new virtual thread; returns its id. Called with the
    /// spawner holding the token (spawn itself is not a choice point).
    /// The child starts with the spawner's view — thread creation is a
    /// happens-before edge.
    pub fn register_vthread(&self, spawner: usize) -> usize {
        let mut g = self.lock();
        let tid = g.threads.len();
        g.threads.push(VState::Ready);
        g.mem.ensure_thread(tid);
        let pv = g.mem.views[spawner].clone();
        g.mem.views[tid] = pv;
        if g.pct {
            let p = g.chooser.next_rand();
            g.pct_prio.push(p);
        }
        g.oplog.push(format!("-- t{spawner} spawns t{tid}"));
        tid
    }

    /// Tracks the OS thread backing a virtual thread.
    pub fn track_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Blocks `me` until `target` finishes (a scheduling operation).
    /// Completing a join is a happens-before edge: the joiner inherits
    /// the target's final view.
    pub fn join_vthread(&self, me: usize, target: usize) {
        loop {
            let mut g = self.enter(me);
            if g.threads[target] == VState::Finished {
                if !self.bump_step(&mut g) {
                    drop(g);
                    panic::panic_any(AbortedExec);
                }
                let tv = g.mem.views[target].clone();
                g.mem.views[me].join(&tv);
                g.oplog.push(format!("-- t{me} joined t{target}"));
                self.pick_next(&mut g, me, Switch::AfterOp);
                return;
            }
            g.threads[me] = VState::BlockedOn(target);
            g.oplog.push(format!("-- t{me} joins t{target}"));
            self.pick_next(&mut g, me, Switch::Gone);
            // Loop back into `enter` until the scheduler hands the token
            // back (it re-readies us once the target finishes).
        }
    }

    /// Marks `me` finished and hands the token on.
    pub fn finish_vthread(&self, me: usize) {
        let mut g = self.lock();
        g.threads[me] = VState::Finished;
        if g.current == me || g.current == usize::MAX {
            self.pick_next(&mut g, me, Switch::Gone);
        }
        self.cv.notify_all();
    }
}

/// Handles a virtual thread's exit: real panics become failures, the
/// abort marker unwinds silently, and the thread is marked finished.
pub(super) fn record_thread_exit(
    shared: &Arc<Shared>,
    tid: usize,
    r: Result<(), Box<dyn std::any::Any + Send>>,
) {
    if let Err(payload) = r {
        if payload.downcast_ref::<AbortedExec>().is_none() {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic in scenario".into());
            let mut g = shared.lock();
            shared.fail_locked(&mut g, format!("t{tid} panicked: {msg}"));
        }
    }
    shared.finish_vthread(tid);
}

/// Runs one scenario execution under `forced` choices. `scenario` runs as
/// virtual thread 0; it spawns the other threads through
/// [`spawn`](super::shim::spawn).
pub fn run_one<F>(scenario: F, forced: &[usize], cfg: &ExecCfg) -> ExecOutcome
where
    F: FnOnce() + Send + 'static,
{
    install_quiet_abort_hook();
    let shared = Shared::new(cfg, forced.to_vec());
    let root = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            super::shim::set_current(Arc::clone(&shared), 0);
            let r = panic::catch_unwind(AssertUnwindSafe(scenario));
            super::shim::clear_current();
            record_thread_exit(&shared, 0, r);
        })
    };
    let _ = root.join();
    // Spawned vthreads may still be draining their abort unwinds.
    loop {
        let h = shared
            .os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let g = shared.lock();
    ExecOutcome {
        failure: g.failure.clone(),
        choices: g.chooser.recorded.clone(),
        oplog: g.oplog.clone(),
        preemptions: g.preemptions,
    }
}

/// Result of a bounded-exhaustive or randomized exploration.
#[derive(Debug)]
pub enum Exploration {
    /// Every execution within the bounds passed.
    Clean {
        /// Executions explored.
        execs: usize,
    },
    /// The execution budget ran out before the tree was covered.
    Truncated {
        /// Executions explored before giving up.
        execs: usize,
    },
    /// A failing execution was found.
    Failed {
        /// The failing execution (its `choices` replay it).
        outcome: ExecOutcome,
        /// Executions explored up to and including the failure.
        execs: usize,
    },
}

/// Advances the DFS odometer: the deepest choice with an untried
/// alternative is incremented and everything after it is dropped.
fn advance(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    for i in (0..choices.len()).rev() {
        if choices[i].picked + 1 < choices[i].alts {
            let mut f: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
            f.push(choices[i].picked + 1);
            return Some(f);
        }
    }
    None
}

/// Bounded-exhaustive DFS over every choice (thread interleavings up to
/// the preemption bound × all weak-memory read choices).
pub fn dfs_explore(
    mut make: impl FnMut() -> Box<dyn FnOnce() + Send + 'static>,
    cfg: &ExecCfg,
    max_execs: usize,
) -> Exploration {
    let mut forced: Vec<usize> = Vec::new();
    let mut execs = 0;
    loop {
        let out = run_one(make(), &forced, cfg);
        execs += 1;
        if out.failure.is_some() {
            return Exploration::Failed {
                outcome: out,
                execs,
            };
        }
        match advance(&out.choices) {
            Some(next) => forced = next,
            None => return Exploration::Clean { execs },
        }
        if execs >= max_execs {
            return Exploration::Truncated { execs };
        }
    }
}

/// Randomized PCT-style fallback: keeps sampling fresh seeds until the
/// time budget runs out or a failure appears.
pub fn pct_explore(
    mut make: impl FnMut() -> Box<dyn FnOnce() + Send + 'static>,
    cfg: &ExecCfg,
    budget: std::time::Duration,
    base_seed: u64,
) -> Exploration {
    let start = std::time::Instant::now();
    let mut execs = 0;
    let mut seed = base_seed.max(1);
    while start.elapsed() < budget {
        let mut c = cfg.clone();
        c.strategy = Strategy::Pct { seed };
        let out = run_one(make(), &[], &c);
        execs += 1;
        if out.failure.is_some() {
            return Exploration::Failed {
                outcome: out,
                execs,
            };
        }
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    Exploration::Clean { execs }
}

/// Minimizes a failing choice string: finds the shortest forced prefix
/// whose default-completed execution still fails, then returns that
/// execution (fewest deviations from the sequential default schedule).
pub fn minimize(
    mut make: impl FnMut() -> Box<dyn FnOnce() + Send + 'static>,
    cfg: &ExecCfg,
    failing: &ExecOutcome,
) -> ExecOutcome {
    let picks: Vec<usize> = failing.choices.iter().map(|c| c.picked).collect();
    let mut replay_cfg = cfg.clone();
    replay_cfg.strategy = Strategy::Dfs;
    for len in 0..=picks.len() {
        let out = run_one(make(), &picks[..len], &replay_cfg);
        if out.failure.is_some() {
            return out;
        }
    }
    // The full pick string must fail (deterministic replay).
    failing.clone()
}

/// Deterministically replays a choice string (e.g. a minimized schedule);
/// returns the resulting execution.
pub fn replay(
    scenario: Box<dyn FnOnce() + Send + 'static>,
    picks: &[usize],
    cfg: &ExecCfg,
) -> ExecOutcome {
    let mut c = cfg.clone();
    c.strategy = Strategy::Dfs;
    run_one(scenario, picks, &c)
}
