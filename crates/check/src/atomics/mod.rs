//! Deterministic weak-memory model checking for the lock-free
//! work-stealing substrate.
//!
//! The substrate's hot paths (`StealDeque`, `SpscRing`/`MailboxGrid`,
//! `MarkWords`, `QuiesceState`) are generic over the
//! [`dgr_atomic::Atomics`] facade. Production monomorphizes them to
//! `std::sync::atomic` (a zero-cost identity — see the
//! `zero_cost_facade` test); this module monomorphizes the *same code*
//! to [`ShimAtomics`], whose every operation routes through an
//! operational C11-style memory model plus a controlled scheduler:
//!
//! * **memory** — per-location modification order with per-thread views
//!   (vector-clock lower bounds). Release-or-stronger stores attach the
//!   writer's view; acquire-or-stronger loads join the message's view;
//!   `Relaxed` loads may observe any message at or above the thread's
//!   per-location floor. Executions that are impossible on x86's strong
//!   hardware but legal under the language model (store buffering,
//!   stale message passing) are therefore explored — the bugs this
//!   checker exists to catch are exactly the ones an x86 stress test
//!   can never produce.
//! * **sched** — virtual threads serialized on a token; every thread
//!   switch and every weak-memory read choice is a recorded decision.
//!   Bounded-exhaustive DFS (preemption bound 2 by default) covers the
//!   corpus scenarios completely; a randomized PCT-style fallback
//!   samples deeper schedules under a time budget. Failures minimize to
//!   the shortest forced prefix and replay deterministically
//!   ([`crate::trace::ScheduleCx`] is the printed artifact).
//!
//! **Model simplifications** (all conservative about the substrate's
//! orderings, documented so nobody mistakes this for a full C11 model):
//! `SeqCst` accesses synchronize through a **per-location** global SC
//! front: each SC access floors its own location at the front and
//! publishes the timestamp it touched, which (with the execution's step
//! order totally ordering SC accesses) enforces C11's SC axioms without
//! inventing cross-location release edges — an earlier whole-view
//! formulation silently made the Chase–Lev stale-`bottom` mutation
//! unobservable. SC *fences* still exchange full views (over-strong,
//! never weak). Failed CAS and every RMW read the
//! *newest* message (a legal trimming: the stale-read interleavings it
//! drops are reachable as schedule choices). RMWs propagate the read
//! message's view into the written one (release-sequence
//! continuation). `compare_exchange_weak` never fails spuriously.
//! Fences are modeled as SC fences (over-strong; the substrate's hot
//! paths use none).
//!
//! The scenario corpus and the seeded-mutation table live in
//! [`harness`]; [`litmus`] self-tests the model against textbook SB/MP
//! outcome sets.

pub mod harness;
pub mod litmus;
mod memory;
mod sched;
mod shim;

pub use harness::{make_steal_half, scenario, Mutation, Scenario, MUTATIONS, SCENARIOS};
pub use sched::{
    dfs_explore, minimize, pct_explore, replay, run_one, ChoiceKind, ChoiceRec, ExecCfg,
    ExecOutcome, Exploration, Strategy,
};
pub use shim::{
    shim_assert, spawn, ShimAtomicBool, ShimAtomicU32, ShimAtomicU64, ShimAtomicUsize, ShimAtomics,
    ShimCell, ShimJoinHandle,
};

use crate::trace::ScheduleCx;

/// Budgets for one scenario/mutation check.
#[derive(Debug, Clone)]
pub struct Opts {
    /// DFS execution cap per check (the corpus scenarios exhaust well
    /// below this; hitting it falls back to PCT sampling).
    pub max_execs: usize,
    /// DFS preemption bound (every seeded mutation is caught within 2).
    pub preemption_bound: usize,
    /// PCT sampling budget in milliseconds (used when DFS truncates).
    pub pct_millis: u64,
    /// Base seed for PCT priority draws.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            max_execs: 200_000,
            preemption_bound: 2,
            pct_millis: 2_000,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl Opts {
    fn cfg(&self, mutation: Option<dgr_atomic::Site>) -> ExecCfg {
        ExecCfg {
            mutation,
            preemption_bound: self.preemption_bound,
            max_steps: 20_000,
            strategy: Strategy::Dfs,
        }
    }
}

/// How a clean scenario was shown clean.
#[derive(Debug, Clone, Copy)]
pub enum CleanOutcome {
    /// The bounded tree was fully enumerated.
    Exhausted {
        /// Executions explored.
        execs: usize,
    },
    /// DFS truncated at the execution cap; PCT sampling found nothing.
    Sampled {
        /// DFS executions before truncation.
        dfs_execs: usize,
        /// PCT executions sampled on top.
        pct_execs: usize,
    },
}

impl CleanOutcome {
    /// Total executions run.
    pub fn execs(&self) -> usize {
        match *self {
            CleanOutcome::Exhausted { execs } => execs,
            CleanOutcome::Sampled {
                dfs_execs,
                pct_execs,
            } => dfs_execs + pct_execs,
        }
    }
}

fn build_cx(
    sc: &Scenario,
    mutation: Option<&'static str>,
    failing: &ExecOutcome,
    execs: usize,
    cfg: &ExecCfg,
) -> ScheduleCx {
    let min = minimize(|| (sc.make)(), cfg, failing);
    ScheduleCx {
        scenario: sc.name.to_string(),
        mutation,
        failure: min.failure.clone().unwrap_or_default(),
        picks: min.choices.iter().map(|c| c.picked).collect(),
        preemptions: min.preemptions,
        execs,
        steps: min.oplog,
    }
}

/// Explores a scenario with no mutation: it must be clean. On failure the
/// minimized, replayable schedule is returned — that is a real substrate
/// bug.
///
/// # Errors
///
/// The minimized counterexample if any explored execution failed.
pub fn check_clean(sc: &Scenario, opts: &Opts) -> Result<CleanOutcome, Box<ScheduleCx>> {
    let cfg = opts.cfg(None);
    match dfs_explore(|| (sc.make)(), &cfg, opts.max_execs) {
        Exploration::Clean { execs } => Ok(CleanOutcome::Exhausted { execs }),
        Exploration::Failed { outcome, execs } => {
            Err(Box::new(build_cx(sc, None, &outcome, execs, &cfg)))
        }
        Exploration::Truncated { execs } => {
            let budget = std::time::Duration::from_millis(opts.pct_millis);
            match pct_explore(|| (sc.make)(), &cfg, budget, opts.seed) {
                Exploration::Failed { outcome, execs: p } => {
                    Err(Box::new(build_cx(sc, None, &outcome, execs + p, &cfg)))
                }
                Exploration::Clean { execs: p } | Exploration::Truncated { execs: p } => {
                    Ok(CleanOutcome::Sampled {
                        dfs_execs: execs,
                        pct_execs: p,
                    })
                }
            }
        }
    }
}

/// Activates one seeded ordering mutation and demands the checker catch
/// it: DFS first, PCT fallback, then the counterexample is minimized and
/// re-verified by deterministic replay.
///
/// # Errors
///
/// A description if the mutation escaped the exploration budgets (which
/// would mean the corpus is vacuous for that site), or if the minimized
/// schedule failed to replay.
pub fn check_mutation(m: &Mutation, opts: &Opts) -> Result<ScheduleCx, String> {
    let sc = scenario(m.scenario).ok_or_else(|| {
        format!(
            "mutation {} names unknown scenario {}",
            m.site.name(),
            m.scenario
        )
    })?;
    let cfg = opts.cfg(Some(m.site));
    let found = match dfs_explore(|| (sc.make)(), &cfg, opts.max_execs) {
        Exploration::Failed { outcome, execs } => Some((outcome, execs)),
        Exploration::Clean { execs } | Exploration::Truncated { execs } => {
            let budget = std::time::Duration::from_millis(opts.pct_millis);
            match pct_explore(|| (sc.make)(), &cfg, budget, opts.seed) {
                Exploration::Failed { outcome, execs: p } => Some((outcome, execs + p)),
                _ => None,
            }
        }
    };
    let (outcome, execs) = found.ok_or_else(|| {
        format!(
            "mutation {} ({}) escaped: {} clean within budget on scenario {}",
            m.site.name(),
            m.what,
            execs_hint(opts),
            m.scenario
        )
    })?;
    let cx = build_cx(sc, Some(m.site.name()), &outcome, execs, &cfg);
    let rep = replay((sc.make)(), &cx.picks, &cfg);
    match rep.failure {
        Some(_) => Ok(cx),
        None => Err(format!(
            "minimized schedule for mutation {} did not replay to a failure",
            m.site.name()
        )),
    }
}

fn execs_hint(opts: &Opts) -> String {
    format!(
        "DFS ≤ {} execs + PCT {} ms",
        opts.max_execs, opts.pct_millis
    )
}
