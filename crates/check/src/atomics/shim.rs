//! The `ShimAtomics` family: the substrate's [`Atomics`] facade backed by
//! the weak-memory model and the controlled scheduler.
//!
//! A `StealDeque<ShimAtomics>` (or `MailboxGrid`, `QuiesceState`,
//! `MarkWords`) is *the production code*, monomorphized over atomic types
//! whose every operation routes through [`Shared`]: loads may observe
//! stale messages, release stores attach views, and each operation is a
//! scheduling point. Which virtual thread is executing comes from a
//! thread-local context installed by the execution driver
//! ([`run_one`](super::sched::run_one)) and by [`spawn`].
//!
//! [`ShimCell`] is the non-atomic companion: scenario data the protocol
//! under test is supposed to publish (task payloads, vertex prep). Its
//! reads and writes are race-checked against the happens-before the
//! atomics actually established — a stale read *is* the bug the seeded
//! mutations are expected to surface.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use dgr_atomic::{
    AtomicBoolApi, AtomicU32Api, AtomicU64Api, AtomicUsizeApi, Atomics, Ordering, Site,
};

use super::memory::LocKind;
use super::sched::{record_thread_exit, Shared};

struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
    mutation: Option<Site>,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Installs the virtual-thread context for the calling OS thread.
pub(super) fn set_current(shared: Arc<Shared>, tid: usize) {
    let mutation = shared.mutation();
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared,
            tid,
            mutation,
        });
    });
}

/// Clears the context when the virtual thread exits.
pub(super) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn ctx() -> (Arc<Shared>, usize) {
    CURRENT.with(|c| {
        let b = c.borrow();
        let x = b
            .as_ref()
            .expect("shim atomic used outside a model execution");
        (Arc::clone(&x.shared), x.tid)
    })
}

/// Scenario assertion: on failure the execution aborts with `msg` as the
/// counterexample's violated invariant.
pub fn shim_assert(cond: bool, msg: impl FnOnce() -> String) {
    if !cond {
        let (shared, tid) = ctx();
        shared.fail(tid, msg());
    }
}

/// The model-checking [`Atomics`] family.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShimAtomics;

impl Atomics for ShimAtomics {
    type U64 = ShimAtomicU64;
    type U32 = ShimAtomicU32;
    type Usize = ShimAtomicUsize;
    type Bool = ShimAtomicBool;

    fn remap(site: Site, default: Ordering) -> Ordering {
        if Self::mutated(site) {
            Ordering::Relaxed
        } else {
            default
        }
    }

    fn mutated(site: Site) -> bool {
        CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .is_some_and(|x| x.mutation == Some(site))
        })
    }

    fn fence(ord: Ordering) {
        let (shared, tid) = ctx();
        shared.fence(tid, ord);
    }

    fn yield_now() {
        let (shared, tid) = ctx();
        shared.yield_now(tid);
    }
}

macro_rules! shim_loc_type {
    ($name:ident) => {
        /// A model-checked atomic location (value stored as `u64`).
        #[derive(Debug)]
        pub struct $name {
            loc: usize,
        }

        impl Default for $name {
            fn default() -> Self {
                let (shared, _) = ctx();
                $name {
                    loc: shared.alloc_loc(LocKind::Atomic, 0),
                }
            }
        }
    };
}

shim_loc_type!(ShimAtomicU64);
shim_loc_type!(ShimAtomicU32);
shim_loc_type!(ShimAtomicUsize);
shim_loc_type!(ShimAtomicBool);

impl AtomicU64Api for ShimAtomicU64 {
    fn new(v: u64) -> Self {
        let (shared, _) = ctx();
        ShimAtomicU64 {
            loc: shared.alloc_loc(LocKind::Atomic, v),
        }
    }
    fn load(&self, ord: Ordering) -> u64 {
        let (shared, tid) = ctx();
        shared.atomic_load(tid, self.loc, ord)
    }
    fn store(&self, v: u64, ord: Ordering) {
        let (shared, tid) = ctx();
        shared.atomic_store(tid, self.loc, v, ord);
    }
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let (shared, tid) = ctx();
        shared.atomic_cas(tid, self.loc, current, new, success, failure)
    }
    fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        // Spurious failure is not modeled (it only inserts extra retry
        // interleavings, every one of which is also reachable as a real
        // CAS failure in some schedule).
        self.compare_exchange(current, new, success, failure)
    }
    fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        let (shared, tid) = ctx();
        shared.atomic_fetch(tid, self.loc, ord, "fetch_add", |old| old.wrapping_add(v))
    }
    fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        let (shared, tid) = ctx();
        shared.atomic_fetch(tid, self.loc, ord, "fetch_sub", |old| old.wrapping_sub(v))
    }
}

impl AtomicU32Api for ShimAtomicU32 {
    fn new(v: u32) -> Self {
        let (shared, _) = ctx();
        ShimAtomicU32 {
            loc: shared.alloc_loc(LocKind::Atomic, u64::from(v)),
        }
    }
    fn load(&self, ord: Ordering) -> u32 {
        let (shared, tid) = ctx();
        shared.atomic_load(tid, self.loc, ord) as u32
    }
    fn store(&self, v: u32, ord: Ordering) {
        let (shared, tid) = ctx();
        shared.atomic_store(tid, self.loc, u64::from(v), ord);
    }
}

impl AtomicUsizeApi for ShimAtomicUsize {
    fn new(v: usize) -> Self {
        let (shared, _) = ctx();
        ShimAtomicUsize {
            loc: shared.alloc_loc(LocKind::Atomic, v as u64),
        }
    }
    fn load(&self, ord: Ordering) -> usize {
        let (shared, tid) = ctx();
        shared.atomic_load(tid, self.loc, ord) as usize
    }
    fn store(&self, v: usize, ord: Ordering) {
        let (shared, tid) = ctx();
        shared.atomic_store(tid, self.loc, v as u64, ord);
    }
    fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        let (shared, tid) = ctx();
        shared.atomic_fetch(tid, self.loc, ord, "fetch_add", |old| {
            old.wrapping_add(v as u64)
        }) as usize
    }
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        let (shared, tid) = ctx();
        shared.atomic_fetch(tid, self.loc, ord, "fetch_sub", |old| {
            old.wrapping_sub(v as u64)
        }) as usize
    }
}

impl AtomicBoolApi for ShimAtomicBool {
    fn new(v: bool) -> Self {
        let (shared, _) = ctx();
        ShimAtomicBool {
            loc: shared.alloc_loc(LocKind::Atomic, u64::from(v)),
        }
    }
    fn load(&self, ord: Ordering) -> bool {
        let (shared, tid) = ctx();
        shared.atomic_load(tid, self.loc, ord) != 0
    }
    fn store(&self, v: bool, ord: Ordering) {
        let (shared, tid) = ctx();
        shared.atomic_store(tid, self.loc, u64::from(v), ord);
    }
}

/// Non-atomic scenario data under happens-before race detection.
#[derive(Debug)]
pub struct ShimCell {
    loc: usize,
}

impl ShimCell {
    /// Allocates a cell holding `v`.
    pub fn new(v: u64) -> Self {
        let (shared, _) = ctx();
        ShimCell {
            loc: shared.alloc_loc(LocKind::Cell, v),
        }
    }

    /// Race-checked read of the newest write.
    pub fn read(&self) -> u64 {
        let (shared, tid) = ctx();
        shared.cell_read(tid, self.loc)
    }

    /// Race-checked write.
    pub fn write(&self, v: u64) {
        let (shared, tid) = ctx();
        shared.cell_write(tid, self.loc, v);
    }
}

/// Handle to a spawned virtual thread.
pub struct ShimJoinHandle {
    tid: usize,
}

impl ShimJoinHandle {
    /// Blocks the calling virtual thread until this one finishes
    /// (a happens-before edge, like real `join`).
    pub fn join(self) {
        let (shared, me) = ctx();
        shared.join_vthread(me, self.tid);
    }
}

/// Spawns a virtual thread running `f` under the model (a happens-before
/// edge from the spawner, like real `spawn`).
pub fn spawn(f: impl FnOnce() + Send + 'static) -> ShimJoinHandle {
    let (shared, me) = ctx();
    let tid = shared.register_vthread(me);
    let s2 = Arc::clone(&shared);
    let h = std::thread::spawn(move || {
        set_current(Arc::clone(&s2), tid);
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        clear_current();
        record_thread_exit(&s2, tid, r);
    });
    shared.track_os_handle(h);
    ShimJoinHandle { tid }
}
