//! A view-based operational model of the C11 memory fragment the
//! substrate uses (Relaxed/Acquire/Release/AcqRel/SeqCst atomics, plus
//! non-atomic cells with happens-before race detection).
//!
//! Every location carries its full **modification order** as a list of
//! timestamped messages; every virtual thread carries a **view** — a per-
//! location lower bound on the timestamps it may still read. The model is
//! the standard "promising-free" view machine:
//!
//! * a **store** appends a message at the tail of the location's
//!   modification order; a release-or-stronger store attaches the storing
//!   thread's current view to the message;
//! * a **load** may read *any* message timestamped at or above the
//!   thread's view of that location — which message is a branch point the
//!   scheduler enumerates. An acquire-or-stronger load joins the message's
//!   attached view into the thread's (that edge is exactly
//!   release/acquire synchronization); a Relaxed load only advances the
//!   per-location bound, which is how store-buffering and message-passing
//!   reorderings become *observable* here even though the host is x86;
//! * an **RMW** always reads the newest message (atomicity of the
//!   modification order) and always propagates the read message's
//!   attached view into the one it writes (release-sequence
//!   continuation), joining its own view in when its write half is
//!   release-or-stronger;
//! * **SeqCst** accesses additionally synchronize through one global SC
//!   front `S` (itself a view), **per location**: before the access the
//!   thread raises its bound for *that location* to `S`'s, and after the
//!   access it publishes the timestamp it read or wrote into `S` for that
//!   location. Because the execution's step order totally orders all SC
//!   accesses (and extends happens-before), this enforces C11's SC
//!   axioms — an SC load can never read below the newest SC store to the
//!   same location — while deliberately *not* transferring the thread's
//!   whole view: an SC load of `top` must not act as a release of an
//!   earlier Relaxed store to `bottom`, or real Chase–Lev ordering bugs
//!   become unobservable. SC **fences** do exchange full views with `S`
//!   (join both ways), the classic over-approximation of fence-to-fence
//!   SC edges — stronger than C11, never weaker;
//! * a **cell** (non-atomic data) keeps a write counter in the same
//!   timestamp space: reading while the thread's view is behind the
//!   newest write, or writing over an unseen write, is reported as a data
//!   race. (Write-after-unseen-read is not tracked; the seeded mutations
//!   all manifest as stale reads or write-write races.)
//!
//! A failed CAS reads the newest message rather than enumerating stale
//! ones — a legal (always-available) choice that trims the search space;
//! the stale-read behaviors a failed CAS could exhibit are covered by the
//! plain loads in the same protocols.

use dgr_atomic::Ordering;

/// Timestamp in a location's modification order (`0` = the initial
/// value); doubles as the write counter of non-atomic cells.
pub type Ts = u64;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Per-location lower bounds on readable timestamps. Missing entries
/// (locations allocated after the view was created) read as `0`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct View {
    lb: Vec<Ts>,
}

impl View {
    /// The bound for `loc`.
    pub fn get(&self, loc: usize) -> Ts {
        self.lb.get(loc).copied().unwrap_or(0)
    }

    /// Raises the bound for `loc` to at least `ts`.
    pub fn raise(&mut self, loc: usize, ts: Ts) {
        if self.lb.len() <= loc {
            self.lb.resize(loc + 1, 0);
        }
        self.lb[loc] = self.lb[loc].max(ts);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &View) {
        if self.lb.len() < other.lb.len() {
            self.lb.resize(other.lb.len(), 0);
        }
        for (loc, &ts) in other.lb.iter().enumerate() {
            self.lb[loc] = self.lb[loc].max(ts);
        }
    }
}

/// One message in a location's modification order.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Position in the modification order (index in `msgs`).
    pub ts: Ts,
    /// The stored value.
    pub val: u64,
    /// The release view attached by a release-or-stronger store (what an
    /// acquire load of this message synchronizes with).
    pub view: Option<View>,
}

/// What kind of location this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocKind {
    /// An atomic touched only through the facade traits.
    Atomic,
    /// A non-atomic cell under race detection.
    Cell,
}

/// One location's full state.
#[derive(Debug)]
pub struct LocState {
    /// Short render name (`a3`, `c1`) used in schedules.
    pub name: String,
    /// Atomic or race-checked cell.
    pub kind: LocKind,
    /// The modification order, oldest first; `msgs[0]` is the initial
    /// value with timestamp `0`.
    pub msgs: Vec<Msg>,
}

/// A data race (or model-level error) detected during an execution.
#[derive(Debug, Clone)]
pub struct Race(pub String);

/// Supplies the read-message branch decisions (the scheduler).
pub trait ReadChooser {
    /// Picks among `n` readable messages of `loc` (index `0` = newest).
    fn choose_read(&mut self, loc: usize, n: usize) -> usize;
}

/// The whole shared memory of one model execution.
#[derive(Debug, Default)]
pub struct Memory {
    /// Every allocated location, atomics and cells alike.
    pub locs: Vec<LocState>,
    /// The global SC view `S`.
    pub sc: View,
    /// Per-virtual-thread views.
    pub views: Vec<View>,
}

impl Memory {
    /// Allocates a location holding `init`; returns its id.
    pub fn alloc(&mut self, kind: LocKind, init: u64) -> usize {
        let id = self.locs.len();
        let prefix = match kind {
            LocKind::Atomic => 'a',
            LocKind::Cell => 'c',
        };
        self.locs.push(LocState {
            name: format!("{prefix}{id}"),
            kind,
            msgs: vec![Msg {
                ts: 0,
                val: init,
                view: None,
            }],
        });
        id
    }

    /// Makes sure a view exists for virtual thread `tid`.
    pub fn ensure_thread(&mut self, tid: usize) {
        if self.views.len() <= tid {
            self.views.resize(tid + 1, View::default());
        }
    }

    fn newest(&self, loc: usize) -> &Msg {
        self.locs[loc]
            .msgs
            .last()
            .expect("init message always exists")
    }

    /// Atomic load; `chooser` picks which readable message is observed.
    /// Returns the value read.
    pub fn load(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        chooser: &mut dyn ReadChooser,
    ) -> u64 {
        debug_assert_eq!(self.locs[loc].kind, LocKind::Atomic);
        if ord == Ordering::SeqCst {
            let s = self.sc.get(loc);
            self.views[tid].raise(loc, s);
        }
        let floor = self.views[tid].get(loc);
        // Newest first, so choice 0 (the default) is the SC-like read and
        // forced alternatives walk backward into progressively staler
        // messages.
        let readable: Vec<usize> = (0..self.locs[loc].msgs.len())
            .rev()
            .filter(|&i| self.locs[loc].msgs[i].ts >= floor)
            .collect();
        let pick = chooser.choose_read(loc, readable.len());
        let msg = &self.locs[loc].msgs[readable[pick]];
        let (ts, val, mview) = (msg.ts, msg.val, msg.view.clone());
        self.views[tid].raise(loc, ts);
        if is_acquire(ord) {
            if let Some(v) = mview {
                self.views[tid].join(&v);
            }
        }
        if ord == Ordering::SeqCst {
            self.sc.raise(loc, ts);
        }
        val
    }

    /// Atomic store: appends at the tail of the modification order.
    pub fn store(&mut self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        let ts = self.newest(loc).ts + 1;
        self.views[tid].raise(loc, ts);
        let view = is_release(ord).then(|| self.views[tid].clone());
        self.locs[loc].msgs.push(Msg { ts, val, view });
        if ord == Ordering::SeqCst {
            self.sc.raise(loc, ts);
        }
    }

    /// Atomic read-modify-write: reads the newest message, stores
    /// `f(old)` after it (if `Some`), and returns the old value. A `None`
    /// from `f` (failed CAS) degrades to a newest-message load at `ord`.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        if ord == Ordering::SeqCst {
            let s = self.sc.get(loc);
            self.views[tid].raise(loc, s);
        }
        let msg = self.newest(loc);
        let (old_ts, old, read_view) = (msg.ts, msg.val, msg.view.clone());
        self.views[tid].raise(loc, old_ts);
        if is_acquire(ord) {
            if let Some(v) = &read_view {
                self.views[tid].join(v);
            }
        }
        if let Some(new) = f(old) {
            let ts = old_ts + 1;
            self.views[tid].raise(loc, ts);
            // Release-sequence continuation: the written message carries
            // the read message's release view even if this RMW's own
            // write half is not a release.
            let mut view = if is_release(ord) {
                Some(self.views[tid].clone())
            } else {
                None
            };
            if let Some(rv) = read_view {
                match &mut view {
                    Some(v) => v.join(&rv),
                    None => view = Some(rv),
                }
            }
            self.locs[loc].msgs.push(Msg { ts, val: new, view });
        }
        if ord == Ordering::SeqCst {
            let v = self.views[tid].clone();
            self.sc.join(&v);
        }
        old
    }

    /// Non-atomic cell write with write-write race detection.
    pub fn cell_write(&mut self, tid: usize, loc: usize, val: u64) -> Result<(), Race> {
        debug_assert_eq!(self.locs[loc].kind, LocKind::Cell);
        let newest = self.newest(loc).ts;
        if self.views[tid].get(loc) < newest {
            return Err(Race(format!(
                "data race: t{tid} writes {} over an unseen write (view ts {} < newest ts {newest})",
                self.locs[loc].name,
                self.views[tid].get(loc),
            )));
        }
        let ts = newest + 1;
        self.views[tid].raise(loc, ts);
        self.locs[loc].msgs.push(Msg {
            ts,
            val,
            view: None,
        });
        Ok(())
    }

    /// Non-atomic cell read with stale-read race detection.
    pub fn cell_read(&self, tid: usize, loc: usize) -> Result<u64, Race> {
        let newest = self.newest(loc);
        if self.views[tid].get(loc) < newest.ts {
            return Err(Race(format!(
                "data race: t{tid} reads {} without happens-before to its last write \
                 (view ts {} < newest ts {})",
                self.locs[loc].name,
                self.views[tid].get(loc),
                newest.ts,
            )));
        }
        Ok(newest.val)
    }

    /// Memory fence. Modeled as an SC fence regardless of `ord` — an
    /// over-approximation that is conservative for the *checker* (it can
    /// hide weak-fence bugs, never invent behaviors); the substrate's hot
    /// paths use no fences, so nothing currently leans on this.
    pub fn fence(&mut self, tid: usize, _ord: Ordering) {
        let sc = self.sc.clone();
        self.views[tid].join(&sc);
        let v = self.views[tid].clone();
        self.sc.join(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces a fixed read choice sequence; panics if asked past the end.
    struct Fixed(Vec<usize>, usize);
    impl ReadChooser for Fixed {
        fn choose_read(&mut self, _loc: usize, n: usize) -> usize {
            let c = if self.1 < self.0.len() {
                self.0[self.1]
            } else {
                0
            };
            self.1 += 1;
            assert!(c < n, "forced choice out of range");
            c
        }
    }

    #[test]
    fn relaxed_load_can_read_stale_store() {
        let mut m = Memory::default();
        let x = m.alloc(LocKind::Atomic, 0);
        m.ensure_thread(1);
        m.store(0, x, 1, Ordering::Relaxed);
        // Thread 1 never synchronized: both messages are readable.
        let mut newest = Fixed(vec![0], 0);
        assert_eq!(m.load(1, x, Ordering::Relaxed, &mut newest), 1);
        let mut m2 = Memory::default();
        let x2 = m2.alloc(LocKind::Atomic, 0);
        m2.ensure_thread(1);
        m2.store(0, x2, 1, Ordering::Relaxed);
        let mut stale = Fixed(vec![1], 0);
        assert_eq!(m2.load(1, x2, Ordering::Relaxed, &mut stale), 0);
    }

    #[test]
    fn release_acquire_forbids_stale_data() {
        // MP: data Relaxed + flag Release/Acquire — after acquiring the
        // flag message, the data's old message is below the view floor.
        let mut m = Memory::default();
        let data = m.alloc(LocKind::Atomic, 0);
        let flag = m.alloc(LocKind::Atomic, 0);
        m.ensure_thread(1);
        m.store(0, data, 42, Ordering::Relaxed);
        m.store(0, flag, 1, Ordering::Release);
        let mut newest = Fixed(vec![0], 0);
        assert_eq!(m.load(1, flag, Ordering::Acquire, &mut newest), 1);
        // Only one readable message remains for `data`.
        let floor = m.views[1].get(data);
        assert_eq!(floor, 1, "acquire joined the release view");
        let mut only = Fixed(vec![0], 0);
        assert_eq!(m.load(1, data, Ordering::Relaxed, &mut only), 42);
    }

    #[test]
    fn seqcst_loads_cannot_miss_seqcst_stores() {
        let mut m = Memory::default();
        let x = m.alloc(LocKind::Atomic, 0);
        m.ensure_thread(1);
        m.store(0, x, 7, Ordering::SeqCst);
        // The SC view forces the floor up before the load: exactly one
        // readable message.
        struct Count(usize);
        impl ReadChooser for Count {
            fn choose_read(&mut self, _loc: usize, n: usize) -> usize {
                self.0 = n;
                0
            }
        }
        let mut c = Count(0);
        assert_eq!(m.load(1, x, Ordering::SeqCst, &mut c), 7);
        assert_eq!(c.0, 1, "stale init not readable at SeqCst");
    }

    #[test]
    fn rmw_reads_newest_and_continues_release_sequence() {
        let mut m = Memory::default();
        let data = m.alloc(LocKind::Cell, 0);
        let x = m.alloc(LocKind::Atomic, 0);
        m.ensure_thread(2);
        m.cell_write(0, data, 5).unwrap();
        m.store(0, x, 1, Ordering::Release);
        // t1: Relaxed RMW still propagates the release view.
        assert_eq!(m.rmw(1, x, Ordering::Relaxed, |v| Some(v + 1)), 1);
        // t2: acquires the RMW's message and must see the cell write.
        let mut newest = Fixed(vec![0], 0);
        assert_eq!(m.load(2, x, Ordering::Acquire, &mut newest), 2);
        assert_eq!(m.cell_read(2, data).unwrap(), 5);
    }

    #[test]
    fn stale_cell_read_is_a_race() {
        let mut m = Memory::default();
        let c = m.alloc(LocKind::Cell, 0);
        m.ensure_thread(1);
        m.cell_write(0, c, 9).unwrap();
        assert!(m.cell_read(1, c).is_err(), "no happens-before edge");
        assert_eq!(m.cell_read(0, c).unwrap(), 9, "writer reads its own");
    }
}
