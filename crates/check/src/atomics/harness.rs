//! The model-checking scenario corpus for the lock-free substrate, and
//! the seeded-mutation table that proves the corpus is not vacuous.
//!
//! Each scenario instantiates *production* substrate code —
//! [`StealDeque`], [`SpscRing`], [`MarkWords`], [`QuiesceState`] — with
//! [`ShimAtomics`] and drives the smallest thread pattern that exercises
//! one protocol edge. Scenario checks are exact conservation/routing
//! invariants (`shim_assert`); stale reads of [`ShimCell`] payload data
//! are caught by the model's race detector without any assertion at all.
//!
//! Scenarios are deliberately tiny (two or three virtual threads, a
//! handful of operations): the bounded-exhaustive search covers them
//! completely at preemption bound 2, and every seeded mutation in
//! [`MUTATIONS`] is observable within that bound plus the weak-memory
//! read choices.

use std::sync::Arc;

use dgr_atomic::Site;
use dgr_graph::markword::Claim;
use dgr_graph::{MarkParent, MarkWords};
use dgr_sim::deque::Steal;
use dgr_sim::{QuiesceState, SpscRing, StealDeque};

use super::shim::{shim_assert, spawn, ShimAtomics, ShimCell};

/// Sentinel for "this thread recorded no value" (distinguishable from a
/// stolen stale `0`, which is itself a bug we must observe).
const NONE: u64 = u64::MAX;

/// One model-checking scenario.
pub struct Scenario {
    /// Stable name (used by mutations, reports, and the CLI).
    pub name: &'static str,
    /// What the scenario exercises (one line, for reports).
    pub about: &'static str,
    /// Builds a fresh scenario body for one execution.
    pub make: fn() -> Box<dyn FnOnce() + Send + 'static>,
}

/// Owner pops while a thief makes two steal attempts over a two-task
/// deque. The dangerous shape is the owner's non-CAS fast path
/// (`top < bottom` after its decrement) racing a thief whose *stale*
/// bottom read lets it steal the same deepest cell — only the SeqCst
/// store/load pair on `bottom`/`top` forbids it. Every task must be
/// consumed exactly once.
fn deque_last_elem() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let q: Arc<StealDeque<ShimAtomics>> = Arc::new(StealDeque::new(8));
        q.push(10).unwrap();
        q.push(20).unwrap();
        let got = Arc::new(ShimCell::new(NONE));
        let got2 = Arc::new(ShimCell::new(NONE));
        let t = {
            let q = Arc::clone(&q);
            let (got, got2) = (Arc::clone(&got), Arc::clone(&got2));
            spawn(move || {
                if let Steal::Success(v) = q.steal() {
                    got.write(v);
                }
                if let Steal::Success(v) = q.steal() {
                    got2.write(v);
                }
            })
        };
        let mut seen = Vec::new();
        if let Some(v) = q.pop() {
            seen.push(v);
        }
        t.join();
        for c in [&got, &got2] {
            let tv = c.read();
            if tv != NONE {
                seen.push(tv);
            }
        }
        // Drain any leftover state (a double-take shows up as a repeated
        // value across the pop, the steals, and this drain).
        for _ in 0..3 {
            if let Some(v) = q.pop() {
                seen.push(v);
            }
        }
        seen.sort_unstable();
        shim_assert(seen == [10, 20], || {
            format!("last-element conservation violated: consumed {seen:?}, pushed [10, 20]")
        });
    })
}

/// Owner pushes while a thief steals: theft must observe fully published
/// cells (never the ring's initial garbage).
fn deque_publish() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let q: Arc<StealDeque<ShimAtomics>> = Arc::new(StealDeque::new(8));
        let got = Arc::new(ShimCell::new(NONE));
        let t = {
            let q = Arc::clone(&q);
            let got = Arc::clone(&got);
            spawn(move || {
                if let Steal::Success(v) = q.steal() {
                    got.write(v);
                }
            })
        };
        q.push(10).unwrap();
        q.push(20).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            if let Some(v) = q.pop() {
                seen.push(v);
            }
        }
        t.join();
        let tv = got.read();
        if tv != NONE {
            seen.push(tv);
        }
        seen.sort_unstable();
        shim_assert(seen == [10, 20], || {
            format!("publish conservation violated: consumed {seen:?}, pushed [10, 20]")
        });
    })
}

/// The `steal_half` batching path under `thieves` concurrent thieves:
/// every pushed task is consumed exactly once, wherever it lands.
pub fn make_steal_half(thieves: usize) -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(move || {
        const TASKS: [u64; 3] = [10, 20, 30];
        let q: Arc<StealDeque<ShimAtomics>> = Arc::new(StealDeque::new(8));
        // Per-thief recording cells (up to all tasks each).
        let cells: Vec<Arc<Vec<ShimCell>>> = (0..thieves)
            .map(|_| Arc::new((0..TASKS.len()).map(|_| ShimCell::new(NONE)).collect()))
            .collect();
        let handles: Vec<_> = cells
            .iter()
            .map(|cells| {
                let q = Arc::clone(&q);
                let cells = Arc::clone(cells);
                spawn(move || {
                    let mut out = Vec::new();
                    q.steal_half(&mut out);
                    for (i, v) in out.iter().enumerate() {
                        cells[i].write(*v);
                    }
                })
            })
            .collect();
        for v in TASKS {
            q.push(v).unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..TASKS.len() + 1 {
            if let Some(v) = q.pop() {
                seen.push(v);
            }
        }
        for h in handles {
            h.join();
        }
        for cells in &cells {
            for c in cells.iter() {
                let v = c.read();
                if v != NONE {
                    seen.push(v);
                }
            }
        }
        seen.sort_unstable();
        shim_assert(seen == TASKS, || {
            format!("steal_half conservation violated: consumed {seen:?}, pushed {TASKS:?}")
        });
    })
}

fn steal_half_1() -> Box<dyn FnOnce() + Send + 'static> {
    make_steal_half(1)
}

fn steal_half_2() -> Box<dyn FnOnce() + Send + 'static> {
    make_steal_half(2)
}

/// SPSC mailbox ring: the consumer drains concurrently with the
/// producer's pushes and must see an exact in-order prefix of them.
fn mailbox_spsc() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let ring: Arc<SpscRing<ShimAtomics>> = Arc::new(SpscRing::new(8));
        let rec: Arc<Vec<ShimCell>> = Arc::new((0..3).map(|_| ShimCell::new(NONE)).collect());
        let t = {
            let ring = Arc::clone(&ring);
            let rec = Arc::clone(&rec);
            spawn(move || {
                let mut out = Vec::new();
                ring.drain(&mut out);
                ring.drain(&mut out);
                for (i, v) in out.iter().enumerate() {
                    if i < rec.len() {
                        rec[i].write(*v);
                    }
                }
                shim_assert(out.len() <= 2, || {
                    format!("consumer drained {} tasks of 2 sent", out.len())
                });
            })
        };
        ring.push(7).unwrap();
        ring.push(9).unwrap();
        t.join();
        let mut consumed: Vec<u64> = rec
            .iter()
            .map(|c| c.read())
            .filter(|&v| v != NONE)
            .collect();
        // Whatever the consumer missed is still in the ring.
        let mut rest = Vec::new();
        ring.drain(&mut rest);
        consumed.extend(rest);
        shim_assert(consumed == [7, 9], || {
            format!("spsc delivery violated: consumed {consumed:?}, sent [7, 9]")
        });
    })
}

/// Mark-word claim publication: a worker that observes a claimed color
/// via a lock-free probe happens-after everything the claimer did first.
fn markword_claim_publish() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let words: Arc<MarkWords<ShimAtomics>> = Arc::new(MarkWords::new(1));
        let prep = Arc::new(ShimCell::new(NONE));
        let t1 = {
            let words = Arc::clone(&words);
            let prep = Arc::clone(&prep);
            spawn(move || {
                prep.write(42);
                words.try_claim(0, 1, 1, MarkParent::RootPar);
            })
        };
        let t2 = {
            let words = Arc::clone(&words);
            let prep = Arc::clone(&prep);
            spawn(move || {
                if words.probe(0, 1).is_some() {
                    // The claim is visible, so its prep must be too; a
                    // stale read here is a data race the model reports.
                    let v = prep.read();
                    shim_assert(v == 42, || {
                        format!("probe saw the claim but prep reads {v}")
                    });
                }
            })
        };
        t1.join();
        t2.join();
    })
}

/// Two rival claimants: exactly one wins, and the eventual drain returns
/// the *winner's* parent (the PR 6 parent-clobber regression pin).
fn markword_parent_race() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let words: Arc<MarkWords<ShimAtomics>> = Arc::new(MarkWords::new(1));
        let w1 = Arc::new(ShimCell::new(0));
        let w2 = Arc::new(ShimCell::new(0));
        let t1 = {
            let words = Arc::clone(&words);
            let w1 = Arc::clone(&w1);
            spawn(move || {
                if let Claim::Won(_) = words.try_claim(0, 1, 1, MarkParent::RootPar) {
                    w1.write(1);
                }
            })
        };
        let t2 = {
            let words = Arc::clone(&words);
            let w2 = Arc::clone(&w2);
            spawn(move || {
                if let Claim::Won(_) = words.try_claim(0, 1, 1, MarkParent::TaskRootPar) {
                    w2.write(1);
                }
            })
        };
        t1.join();
        t2.join();
        let (a, b) = (w1.read(), w2.read());
        shim_assert(a + b == 1, || {
            format!("claim atomicity violated: {} winners", a + b)
        });
        let expect = if a == 1 {
            MarkParent::RootPar
        } else {
            MarkParent::TaskRootPar
        };
        let got = words.complete_child(0, 1);
        shim_assert(got == Some(expect), || {
            format!("drain returned {got:?}, winner registered {expect:?}")
        });
    })
}

/// Quiescence: the worker whose release drives the count to zero must
/// see every other worker's task effects through the counter's
/// release/acquire chain.
fn quiesce_publish() -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(|| {
        let q: Arc<QuiesceState<ShimAtomics>> = Arc::new(QuiesceState::new(2));
        let e1 = Arc::new(ShimCell::new(NONE));
        let e2 = Arc::new(ShimCell::new(NONE));
        let t1 = {
            let q = Arc::clone(&q);
            let (e1, e2) = (Arc::clone(&e1), Arc::clone(&e2));
            spawn(move || {
                e1.write(11);
                if q.release(1) {
                    // Zero-observer: the other worker's effect must be
                    // visible (stale read = race).
                    let v = e2.read();
                    shim_assert(v == 22, || format!("quiescence saw effect {v}, want 22"));
                }
            })
        };
        let t2 = {
            let q = Arc::clone(&q);
            let (e1, e2) = (Arc::clone(&e1), Arc::clone(&e2));
            spawn(move || {
                e2.write(22);
                if q.release(1) {
                    let v = e1.read();
                    shim_assert(v == 11, || format!("quiescence saw effect {v}, want 11"));
                }
            })
        };
        t1.join();
        t2.join();
        shim_assert(q.is_done(), || "both released but not done".into());
        shim_assert(q.pending() == 0, || {
            format!("pending {} after quiescence", q.pending())
        });
    })
}

/// The scenario corpus, smallest first.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "deque-last-elem",
        about: "owner pop fast path vs a stale-bottom thief",
        make: deque_last_elem,
    },
    Scenario {
        name: "deque-publish",
        about: "thief steals concurrently with owner pushes",
        make: deque_publish,
    },
    Scenario {
        name: "steal-half-1",
        about: "steal_half batching vs owner, one thief",
        make: steal_half_1,
    },
    Scenario {
        name: "steal-half-2",
        about: "steal_half batching vs owner, two thieves",
        make: steal_half_2,
    },
    Scenario {
        name: "mailbox-spsc",
        about: "SPSC ring producer/consumer prefix delivery",
        make: mailbox_spsc,
    },
    Scenario {
        name: "markword-claim-publish",
        about: "probe of a claimed color publishes the claimer's prep",
        make: markword_claim_publish,
    },
    Scenario {
        name: "markword-parent-race",
        about: "rival claims: one winner, drain returns its parent",
        make: markword_parent_race,
    },
    Scenario {
        name: "quiesce-publish",
        about: "zero-observer sees every released worker's effects",
        make: quiesce_publish,
    },
];

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// One seeded ordering mutation and the invariant expected to kill it.
pub struct Mutation {
    /// The weakened/moved operation.
    pub site: Site,
    /// The scenario that must catch it.
    pub scenario: &'static str,
    /// What the mutation does to the code.
    pub what: &'static str,
    /// The invariant (or race) that kills it.
    pub killed_by: &'static str,
}

/// The full mutation table: every entry must be *caught* (a clean
/// exploration of the same scenario must also pass — see
/// `check_mutation` / `check_clean`).
pub const MUTATIONS: &[Mutation] = &[
    Mutation {
        site: Site::DequeLastElem,
        scenario: "deque-last-elem",
        what: "the pop-store/steal-load SeqCst pair on bottom -> Relaxed",
        killed_by: "deepest task consumed twice (owner fast path + stale-bottom steal)",
    },
    Mutation {
        site: Site::DequeBottomPublish,
        scenario: "deque-publish",
        what: "push's bottom publish Release -> Relaxed",
        killed_by: "thief steals an unpublished cell (stale ring garbage)",
    },
    Mutation {
        site: Site::MailboxTailPublish,
        scenario: "mailbox-spsc",
        what: "ring tail publish Release -> Relaxed",
        killed_by: "consumer drains a stale head-of-ring cell",
    },
    Mutation {
        site: Site::MwClaimCas,
        scenario: "markword-claim-publish",
        what: "claim CAS success AcqRel -> Relaxed",
        killed_by: "probe sees the claim, prep read races (stale payload)",
    },
    Mutation {
        site: Site::MwParentPublish,
        scenario: "markword-parent-race",
        what: "parent word published before the claim CAS",
        killed_by: "loser clobbers winner's parent; drain misroutes the return",
    },
    Mutation {
        site: Site::QuiesceRelease,
        scenario: "quiesce-publish",
        what: "quiescence decrement AcqRel -> Relaxed",
        killed_by: "zero-observer misses a released worker's effect (race)",
    },
];
