//! The adversarial corpus: small graphs + scripted mutations whose every
//! interleaving the explorer enumerates.
//!
//! Each scenario pins down the strongest end-state property that holds
//! under *arbitrary* interleaving of its mutations with marking:
//!
//! * `exact` — the marked set equals `R` of the final graph (mutations, if
//!   any, preserve reachability or only grow it);
//! * otherwise *safe/live* bounds — `R_final ⊆ marked ⊆ R_initial ∪
//!   R_final` (nothing live is lost, nothing never-reachable is marked);
//! * for `mark2`, optionally exact per-vertex priorities and/or priority
//!   closure;
//! * for `mark3`, `T_initial ⊆ marked ⊆ T_final` (snapshot semantics).

use dgr_core::{MarkMsg, MarkState, RMode};
use dgr_graph::{
    GraphStore, MarkParent, NodeLabel, PrimOp, Priority, RequestKind, Requester, Slot,
    TaskEndpoints, Template, TemplateNode, TemplateRef, VertexId,
};

/// Which marking pass the scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// `mark1` (Figure 4-1).
    Mark1,
    /// `mark2` / `M_R` (Figures 5-1/5-2).
    Mark2,
    /// `mark3` / `M_T` (Figure 5-3).
    Mark3,
}

impl PassKind {
    /// The mark slot the pass operates on.
    pub fn slot(self) -> Slot {
        match self {
            PassKind::Mark1 | PassKind::Mark2 => Slot::R,
            PassKind::Mark3 => Slot::T,
        }
    }
}

/// One scripted mutator step, applied through the cooperating primitives
/// of Figure 4-2 (except under the `SkipCoopSplice` fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutAction {
    /// `add-reference(a, b, c)`: splice arc `a → c` (three adjacent
    /// vertices).
    AddReference {
        /// Gaining vertex.
        a: VertexId,
        /// Its child through which `c` is currently reached.
        b: VertexId,
        /// The grandchild gaining a direct arc.
        c: VertexId,
    },
    /// `delete-reference(a, b)`: drop arc `a → b`.
    DeleteReference {
        /// Source of the arc.
        a: VertexId,
        /// Target of the arc.
        b: VertexId,
    },
    /// Dereference: drop arc `x → y` and `x` from `requested(y)`.
    Dereference {
        /// The vertex losing interest.
        x: VertexId,
        /// The formerly requested vertex.
        y: VertexId,
    },
    /// Add `from` to `requested(v)` — a new T-arc `v → from`.
    AddRequester {
        /// The vertex gaining a requester.
        v: VertexId,
        /// The new requester.
        from: VertexId,
    },
    /// A plain new R-arc `from → to` outside the `add-reference` pattern
    /// (restructuring), via `coop_r_arc`/`coop_t_arc`.
    GrowArc {
        /// Source of the new arc.
        from: VertexId,
        /// Target of the new arc.
        to: VertexId,
    },
    /// `expand-node(at, template)` with the given actuals.
    Expand {
        /// The application vertex being expanded.
        at: VertexId,
        /// Actual parameters substituted for template params.
        actuals: Vec<VertexId>,
    },
}

/// What to assert once the world is quiescent (beyond the protocol's own
/// `done` flag, which is always asserted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndCheck {
    /// Marked set must equal `R` of the final graph (else the safe/live
    /// bounds `R_final ⊆ marked ⊆ R_initial ∪ R_final` apply).
    pub exact: bool,
    /// Per-vertex priorities must equal the oracle's (mark2, no request
    /// kinds changed mid-pass).
    pub priorities: bool,
    /// `check_priority_closure` must hold (mark2).
    pub closure: bool,
}

/// A fully built scenario instance: graph, initial messages, scripted
/// mutations, and the end-state contract.
#[derive(Debug, Clone)]
pub struct Built {
    /// Which pass is driven.
    pub kind: PassKind,
    /// The initial graph.
    pub g: GraphStore,
    /// The initial marking-process state.
    pub state: MarkState,
    /// The initial mark messages (already "sent", not yet delivered).
    pub initial: Vec<MarkMsg>,
    /// Mutator script, applied in order, interleaved arbitrarily with
    /// message deliveries.
    pub muts: Vec<MutAction>,
    /// Task endpoints seeding `M_T` (empty for R-side scenarios).
    pub tasks: TaskEndpoints,
    /// Template used by `Expand` mutations.
    pub template: Option<Template>,
    /// End-state contract.
    pub end: EndCheck,
}

impl Built {
    /// Applies the mutation script *structurally* (cooperation disabled) to
    /// a clone of the initial graph: the final graph the oracle
    /// expectations are computed on. Deterministic — template expansion
    /// allocates from the same free list in every interleaving.
    pub fn final_graph(&self) -> GraphStore {
        let mut g = self.g.clone();
        let mut off = MarkState::new();
        off.cooperation_enabled = false;
        let mut sink = |_m: MarkMsg| {};
        for m in &self.muts {
            match *m {
                MutAction::AddReference { a, b, c } => {
                    dgr_core::coop::add_reference(&mut off, &mut g, a, b, c, &mut sink)
                        .expect("scenario script: add_reference precondition");
                }
                MutAction::DeleteReference { a, b } => {
                    dgr_core::coop::delete_reference(&mut g, a, b);
                }
                MutAction::Dereference { x, y } => {
                    dgr_core::coop::dereference(&mut g, x, y);
                }
                MutAction::AddRequester { v, from } => {
                    g.vertex_mut(v).add_requester(Requester::Vertex(from));
                }
                MutAction::GrowArc { from, to } => {
                    g.connect(from, to);
                }
                MutAction::Expand { at, ref actuals } => {
                    let tpl = self.template.as_ref().expect("Expand needs a template");
                    dgr_core::coop::expand_node(&mut off, &mut g, at, tpl, actuals, &mut sink)
                        .expect("scenario script: expand_node");
                }
            }
        }
        g
    }
}

/// A named scenario: a builder function plus its name.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable name, used in reports and to look scenarios up for replay.
    pub name: &'static str,
    /// Builds a fresh instance.
    pub build: fn() -> Built,
}

fn end_exact() -> EndCheck {
    EndCheck {
        exact: true,
        priorities: false,
        closure: false,
    }
}

fn end_safe() -> EndCheck {
    EndCheck {
        exact: false,
        priorities: false,
        closure: false,
    }
}

fn mark1_seed(g: &GraphStore) -> Vec<MarkMsg> {
    vec![MarkMsg::Mark1 {
        v: g.root().expect("scenario graph has a root"),
        par: MarkParent::RootPar,
    }]
}

fn mark2_seed(g: &GraphStore) -> Vec<MarkMsg> {
    vec![MarkMsg::Mark2 {
        v: g.root().expect("scenario graph has a root"),
        par: MarkParent::RootPar,
        prior: Priority::Vital,
    }]
}

fn r_state(mode: RMode) -> MarkState {
    let mut s = MarkState::new();
    s.begin_r(mode);
    s
}

/// Diamond with a back-edge: root → a, b; a → c; b → c; c → root.
/// The static adversary for `mark1` — sharing plus a cycle.
fn cycle_diamond() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::If).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let c = g.alloc(NodeLabel::If).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, a);
    g.connect(root, b);
    g.connect(a, c);
    g.connect(b, c);
    g.connect(c, root);
    g.set_root(root);
    let initial = mark1_seed(&g);
    Built {
        kind: PassKind::Mark1,
        g,
        state: r_state(RMode::Simple),
        initial,
        muts: vec![],
        tasks: TaskEndpoints::new(),
        template: None,
        end: end_exact(),
    }
}

/// The Section 4.2 lost-vertex adversary: chain root → a → b → c; mid-mark
/// the mutator moves c up (`add-reference(a, b, c)`) and severs the old
/// path (`delete-reference(b, c)`). Reachability is preserved, so the
/// marked set must be exact in every interleaving.
fn move_mid_mark() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::If).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, a);
    g.connect(a, b);
    g.connect(b, c);
    g.set_root(root);
    let initial = mark1_seed(&g);
    Built {
        kind: PassKind::Mark1,
        g,
        state: r_state(RMode::Simple),
        initial,
        muts: vec![
            MutAction::AddReference { a, b, c },
            MutAction::DeleteReference { a: b, b: c },
        ],
        tasks: TaskEndpoints::new(),
        template: None,
        end: end_exact(),
    }
}

/// Mid-mark deletion creating floating garbage: root → a → b → d; the arc
/// a → b is severed while marking may or may not have passed it. b and d
/// may legitimately end up marked (they were live at cycle start) — the
/// contract is the safe/live bound, and the stray vertex must never be
/// marked.
fn deref_drops_subtree() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::If).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let d = g.alloc(NodeLabel::lit_int(2)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, a);
    g.connect(a, b);
    g.connect(b, d);
    g.vertex_mut(a)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.vertex_mut(b).add_requester(Requester::Vertex(a));
    g.set_root(root);
    let initial = mark1_seed(&g);
    Built {
        kind: PassKind::Mark1,
        g,
        state: r_state(RMode::Simple),
        initial,
        muts: vec![MutAction::Dereference { x: a, y: b }],
        tasks: TaskEndpoints::new(),
        template: None,
        end: end_safe(),
    }
}

/// Restructuring splices an arc to a previously unreachable component:
/// root → a, plus an island b → d. Mid-mark, `root → b` is grown via
/// `coop_r_arc` — depending on root's color this hangs a mark on root,
/// executes synchronously against the virtual extra root, or just adds the
/// arc. The island must be marked in every interleaving.
fn grow_arc_late() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let d = g.alloc(NodeLabel::lit_int(2)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, a);
    g.connect(b, d);
    g.set_root(root);
    let initial = mark1_seed(&g);
    Built {
        kind: PassKind::Mark1,
        g,
        state: r_state(RMode::Simple),
        initial,
        muts: vec![MutAction::GrowArc { from: root, to: b }],
        tasks: TaskEndpoints::new(),
        template: None,
        end: end_exact(),
    }
}

fn inc_template() -> Template {
    Template::new(
        "inc",
        1,
        vec![
            TemplateNode::new(
                NodeLabel::Prim(PrimOp::Add),
                vec![TemplateRef::Param(0), TemplateRef::Local(1)],
            ),
            TemplateNode::new(NodeLabel::lit_int(1), vec![]),
        ],
    )
    .unwrap()
}

/// `expand-node` mid-mark: an application vertex is expanded while marking
/// races past it. The fresh body must be marked whether the expansion hits
/// the vertex unmarked, transient, or marked.
fn expand_mid_mark() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let app = g.alloc(NodeLabel::Apply).unwrap();
    let arg = g.alloc(NodeLabel::lit_int(41)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, app);
    g.connect(app, arg);
    g.set_root(root);
    let initial = mark1_seed(&g);
    Built {
        kind: PassKind::Mark1,
        g,
        state: r_state(RMode::Simple),
        initial,
        muts: vec![MutAction::Expand {
            at: app,
            actuals: vec![arg],
        }],
        tasks: TaskEndpoints::new(),
        template: Some(inc_template()),
        end: end_exact(),
    }
}

/// The re-marking diamond (Figure 5-2's upgrade rule): the eager path can
/// reach d first, forcing the vital path to re-mark d and everything below
/// it. Exact priorities and closure are demanded in every interleaving.
fn shared_upgrade() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let d = g.alloc(NodeLabel::If).unwrap();
    let below = g.alloc(NodeLabel::lit_int(0)).unwrap();
    let mid = g.alloc(NodeLabel::If).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, d);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(root, mid);
    g.vertex_mut(root)
        .set_request_kind(1, Some(RequestKind::Vital));
    g.connect(mid, d);
    g.vertex_mut(mid)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(d, below);
    g.vertex_mut(d)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.set_root(root);
    let initial = mark2_seed(&g);
    Built {
        kind: PassKind::Mark2,
        g,
        state: r_state(RMode::Priority),
        initial,
        muts: vec![],
        tasks: TaskEndpoints::new(),
        template: None,
        end: EndCheck {
            exact: true,
            priorities: true,
            closure: true,
        },
    }
}

/// Priority marking over a cycle with mixed request kinds:
/// root -v-> x -e-> y -v-> x (back-edge), y → z unrequested. The min-over-
/// path / max-over-paths fixpoint must be reached regardless of the order
/// marks chase the cycle.
fn cycle_priorities() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let x = g.alloc(NodeLabel::If).unwrap();
    let y = g.alloc(NodeLabel::If).unwrap();
    let z = g.alloc(NodeLabel::lit_int(0)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, x);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(x, y);
    g.vertex_mut(x)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(y, x);
    g.vertex_mut(y)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(y, z);
    g.set_root(root);
    let initial = mark2_seed(&g);
    Built {
        kind: PassKind::Mark2,
        g,
        state: r_state(RMode::Priority),
        initial,
        muts: vec![],
        tasks: TaskEndpoints::new(),
        template: None,
        end: EndCheck {
            exact: true,
            priorities: true,
            closure: true,
        },
    }
}

/// The move adversary under priority marking. Reachability is preserved
/// (exact marked set), but the deleted path may have lent c a priority the
/// final graph no longer justifies — so exact priorities are *not*
/// demanded, only closure (the new arc is unrequested, needing ≥ Reserve).
fn move_mid_mark2() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::If).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(root, a);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(a, b);
    g.vertex_mut(a)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(b, c);
    g.vertex_mut(b)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.set_root(root);
    let initial = mark2_seed(&g);
    Built {
        kind: PassKind::Mark2,
        g,
        state: r_state(RMode::Priority),
        initial,
        muts: vec![
            MutAction::AddReference { a, b, c },
            MutAction::DeleteReference { a: b, b: c },
        ],
        tasks: TaskEndpoints::new(),
        template: None,
        end: EndCheck {
            exact: true,
            priorities: false,
            closure: true,
        },
    }
}

/// `M_T` with shared structure and a requester added mid-pass: seeds are
/// the endpoints of a task `<a, b>`; the mutator gives c a new requester d
/// while c may already be T-marked (snapshot semantics — the arc is then
/// deliberately not chased). Contract: `T_initial ⊆ marked ⊆ T_final`.
fn mark3_requesters() -> Built {
    let mut g = GraphStore::with_capacity(8);
    let a = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
    let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
    let c = g.alloc(NodeLabel::If).unwrap();
    let e = g.alloc(NodeLabel::lit_int(2)).unwrap();
    let d = g.alloc(NodeLabel::If).unwrap();
    let _stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
    g.connect(a, b);
    g.vertex_mut(a)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(a, c); // unrequested: a T-arc
    g.connect(c, e); // unrequested: a T-arc
    g.vertex_mut(b).add_requester(Requester::Vertex(a));
    g.set_root(a);

    let mut tasks = TaskEndpoints::new();
    tasks.push_task(Some(a), b);
    let mut state = MarkState::new();
    state.begin_t(tasks.seeds().len() as u32);
    let initial = tasks
        .seeds()
        .iter()
        .map(|&v| MarkMsg::Mark3 {
            v,
            par: MarkParent::TaskRootPar,
        })
        .collect();
    Built {
        kind: PassKind::Mark3,
        g,
        state,
        initial,
        muts: vec![MutAction::AddRequester { v: c, from: d }],
        tasks,
        template: None,
        end: end_safe(),
    }
}

/// The full corpus, in report order.
pub fn corpus() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "mark1-cycle-diamond",
            build: cycle_diamond,
        },
        Scenario {
            name: "mark1-move-mid-mark",
            build: move_mid_mark,
        },
        Scenario {
            name: "mark1-deref-drops-subtree",
            build: deref_drops_subtree,
        },
        Scenario {
            name: "mark1-grow-arc-late",
            build: grow_arc_late,
        },
        Scenario {
            name: "mark1-expand-mid-mark",
            build: expand_mid_mark,
        },
        Scenario {
            name: "mark2-shared-upgrade",
            build: shared_upgrade,
        },
        Scenario {
            name: "mark2-cycle-priorities",
            build: cycle_priorities,
        },
        Scenario {
            name: "mark2-move-mid-mark",
            build: move_mid_mark2,
        },
        Scenario {
            name: "mark3-shared-requesters",
            build: mark3_requesters,
        },
    ]
}

/// Looks a scenario up by name (for trace replay).
pub fn by_name(name: &str) -> Option<Scenario> {
    corpus().into_iter().find(|s| s.name == name)
}
