//! Bounded model checking of the decentralized marking protocol.
//!
//! The drivers in `dgr-core` test the handful of delivery orders that
//! `SchedPolicy::{Fifo,Lifo,RoundRobin,Random}` happen to produce. This
//! crate instead enumerates **every** delivery interleaving (up to state
//! equivalence) of a marking pass on a corpus of small adversarial graphs —
//! cycles, shared subgraphs, and runs with the cooperating mutator
//! primitives of Figure 4-2 injected mid-marking — and checks, after every
//! single event:
//!
//! * the three marking invariants of Sections 4.2/5.4
//!   ([`dgr_core::invariants::check_invariants`]), and
//! * at quiescence, end-state safety and liveness against the sequential
//!   oracle (`GAR ∩ R = ∅`, all pre-cycle garbage found, exact priorities
//!   and [`dgr_core::invariants::check_priority_closure`] where the
//!   scenario permits), plus the protocol's own termination signal.
//!
//! Exploration is breadth-first with full-state deduplication, so any
//! counterexample found is an *event-minimal* trace; [`trace`] renders it
//! as an event-by-event replay script and can re-execute it.
//!
//! The [`faults`] module is the oracle's oracle: it injects known protocol
//! faults (drop a `Return`, skip the `add-reference` splice, double-count
//! `mt-cnt`, mark a vertex early, skip a priority upgrade, misroute a
//! return, run `M_R` before `M_T`) and demands that the same checkers
//! catch every one — proving the green corpus runs are not vacuous.
//!
//! [`lint`] is a small repo-specific source lint (mark-word memory
//! orderings, mark-state mutation confinement, atomics-facade bypasses)
//! run in CI alongside the model checker.
//!
//! [`atomics`] is the second model-checking layer: where [`explore`]
//! enumerates *message delivery* interleavings over the protocol state
//! machine, `atomics` enumerates *instruction-level* interleavings and
//! C11 weak-memory behaviors of the lock-free work-stealing substrate
//! itself (`StealDeque`, mailbox rings, mark words, quiescence), by
//! monomorphizing the production code over a shim `Atomics` facade. It
//! has its own seeded-mutation table proving those checks non-vacuous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod explore;
pub mod faults;
pub mod lint;
pub mod scenario;
pub mod trace;
pub mod world;
