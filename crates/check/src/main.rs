//! `dgr-check` — bounded model checking of the marking protocol.
//!
//! ```text
//! dgr-check [all|corpus|faults|lint|atomics]
//!           [--max-states N] [--write-traces FILE]
//!           [--max-execs N] [--pct-millis MS] [--write-schedules FILE]
//! ```
//!
//! * `corpus` — exhaustively explore every delivery interleaving of each
//!   corpus scenario under each interleaving mode; any invariant or
//!   end-state violation (or a truncated search) fails the run.
//! * `faults` — inject each protocol fault and demand the explorer finds a
//!   violation, replays it, and (with `--write-traces`) saves the traces.
//! * `lint` — run the repo-specific source lints.
//! * `atomics` — weak-memory model checking of the lock-free substrate:
//!   litmus self-tests, the clean shim scenario corpus (bounded-exhaustive
//!   DFS with a PCT fallback of `--pct-millis` per scenario), and the
//!   seeded-ordering-mutation table (every mutation must be caught,
//!   minimized, and replayed; `--write-schedules` saves the schedules).
//! * `all` (default) — everything above.
//!
//! Exit code 0 = everything green; 1 = violation found, fault or mutation
//! undetected, clean search truncated, or lint finding.

use std::process::ExitCode;

use dgr_atomic::Ordering;
use dgr_check::atomics::{self, litmus, Opts};
use dgr_check::explore::{explore, Bounds};
use dgr_check::faults::{self, Fault};
use dgr_check::scenario;
use dgr_check::trace;
use dgr_check::world::Mode;

/// Interleaving modes every clean scenario is explored under: the
/// any-order superset (covers every mailbox discipline and scheduler
/// policy) plus per-PE FIFO mailboxes at three PE counts.
const MODES: [Mode; 4] = [
    Mode {
        any_order: true,
        num_pes: 2,
    },
    Mode {
        any_order: false,
        num_pes: 1,
    },
    Mode {
        any_order: false,
        num_pes: 2,
    },
    Mode {
        any_order: false,
        num_pes: 4,
    },
];

/// Faults are hunted under the any-order superset: maximal adversarial
/// power, and the minimal counterexample is the clearest.
const FAULT_MODE: Mode = Mode {
    any_order: true,
    num_pes: 2,
};

struct Args {
    cmd: String,
    bounds: Bounds,
    write_traces: Option<String>,
    opts: Opts,
    write_schedules: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut cmd = String::from("all");
    let mut bounds = Bounds::default();
    let mut write_traces = None;
    let mut opts = Opts::default();
    let mut write_schedules = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "all" | "corpus" | "faults" | "lint" | "atomics" => cmd = a,
            "--max-states" => {
                let v = it.next().ok_or("--max-states needs a value")?;
                bounds.max_states = v.parse().map_err(|_| format!("bad --max-states {v:?}"))?;
            }
            "--write-traces" => {
                write_traces = Some(it.next().ok_or("--write-traces needs a path")?);
            }
            "--max-execs" => {
                let v = it.next().ok_or("--max-execs needs a value")?;
                opts.max_execs = v.parse().map_err(|_| format!("bad --max-execs {v:?}"))?;
            }
            "--pct-millis" => {
                let v = it.next().ok_or("--pct-millis needs a value")?;
                opts.pct_millis = v.parse().map_err(|_| format!("bad --pct-millis {v:?}"))?;
            }
            "--write-schedules" => {
                write_schedules = Some(it.next().ok_or("--write-schedules needs a path")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        cmd,
        bounds,
        write_traces,
        opts,
        write_schedules,
    })
}

fn run_corpus(bounds: &Bounds) -> bool {
    println!("== corpus: exhaustive interleaving search (clean runs) ==");
    println!(
        "{:<28} {:<12} {:>9} {:>11} {:>6} {:>7}  verdict",
        "scenario", "mode", "states", "transitions", "depth", "quiesc"
    );
    let mut ok = true;
    for sc in scenario::corpus() {
        for mode in MODES {
            let r = explore(sc, mode, Fault::None, bounds);
            let verdict = if let Some(cx) = &r.violation {
                ok = false;
                format!("VIOLATION\n{}", cx.script())
            } else if r.truncated {
                ok = false;
                format!("TRUNCATED at {} states (raise --max-states)", r.states)
            } else {
                String::from("ok")
            };
            println!(
                "{:<28} {:<12} {:>9} {:>11} {:>6} {:>7}  {verdict}",
                r.scenario,
                mode.to_string(),
                r.states,
                r.transitions,
                r.depth,
                r.quiescent
            );
        }
    }
    ok
}

fn run_faults(bounds: &Bounds, write_traces: Option<&str>) -> bool {
    println!("== oracle mutation tests: every injected fault must be caught ==");
    let mut ok = true;
    let mut traces = String::new();
    for fault in Fault::INJECTED {
        let sc = scenario::by_name(fault.scenario()).expect("fault maps to a corpus scenario");
        let r = explore(sc, FAULT_MODE, fault, bounds);
        match r.violation {
            Some(cx) => {
                let replayed = trace::replay(&cx);
                let status = match &replayed {
                    Ok(()) => "detected, trace replays",
                    Err(_) => "detected, REPLAY FAILED",
                };
                if replayed.is_err() {
                    ok = false;
                }
                println!(
                    "{:<18} in {:<24} {} ({} events)",
                    fault.name(),
                    cx.scenario,
                    status,
                    cx.events.len()
                );
                print!("{}", cx.script());
                if let Err(e) = replayed {
                    println!("  replay error: {e}");
                }
                traces.push_str(&cx.script());
                traces.push('\n');
            }
            None => {
                ok = false;
                println!(
                    "{:<18} in {:<24} NOT DETECTED ({} states explored{})",
                    fault.name(),
                    sc.name,
                    r.states,
                    if r.truncated { ", truncated" } else { "" }
                );
            }
        }
    }

    println!("== transport robustness: one-shot FIFO reorder must stay clean ==");
    for sc in scenario::corpus() {
        for mode in MODES.iter().filter(|m| !m.any_order) {
            let r = explore(sc, *mode, Fault::ReorderDeliver, bounds);
            let verdict = if let Some(cx) = &r.violation {
                ok = false;
                format!("VIOLATION (protocol leans on FIFO order)\n{}", cx.script())
            } else if r.truncated {
                ok = false;
                format!("TRUNCATED at {} states (raise --max-states)", r.states)
            } else {
                String::from("ok")
            };
            println!(
                "{:<18} in {:<24} {:<12} {:>9} states  {verdict}",
                Fault::ReorderDeliver.name(),
                r.scenario,
                mode.to_string(),
                r.states
            );
        }
    }

    let ord = faults::pass_ordering();
    println!(
        "{:<18} in {:<24} {} (correct order: {} false flags, faulty order: {})",
        "swap-pass-order",
        "fig3-1-deadlock",
        if ord.detected() {
            "detected"
        } else {
            "NOT DETECTED"
        },
        ord.correct_false_flags,
        ord.wrong_false_flags
    );
    if !ord.detected() {
        ok = false;
    }

    if let Some(path) = write_traces {
        if let Err(e) = std::fs::write(path, &traces) {
            println!("failed to write traces to {path}: {e}");
            ok = false;
        } else {
            println!("counterexample traces written to {path}");
        }
    }
    ok
}

fn run_atomics(opts: &Opts, write_schedules: Option<&str>) -> bool {
    let mut ok = true;

    println!("== atomics: litmus self-tests of the memory model ==");
    let (sb_rlx, _) = litmus::store_buffer(Ordering::Relaxed, 100_000);
    let (sb_sc, _) = litmus::store_buffer(Ordering::SeqCst, 100_000);
    let (mp_rlx, _) = litmus::message_pass(Ordering::Relaxed, Ordering::Relaxed, 100_000);
    let (mp_ra, _) = litmus::message_pass(Ordering::Release, Ordering::Acquire, 100_000);
    let litmus_ok = sb_rlx.contains(&(0, 0))
        && !sb_sc.contains(&(0, 0))
        && mp_rlx.contains(&0)
        && !mp_ra.contains(&0);
    println!(
        "SB/Relaxed {sb_rlx:?}  SB/SeqCst {sb_sc:?}  MP/Relaxed {mp_rlx:?}  MP/RelAcq {mp_ra:?}  \
         => {}",
        if litmus_ok { "ok" } else { "MODEL BROKEN" }
    );
    ok &= litmus_ok;

    println!("== atomics: clean shim corpus (bounded DFS, PCT fallback) ==");
    for sc in atomics::SCENARIOS {
        match atomics::check_clean(sc, opts) {
            Ok(o) => {
                let how = match o {
                    atomics::CleanOutcome::Exhausted { .. } => "exhausted",
                    atomics::CleanOutcome::Sampled { .. } => "sampled",
                };
                println!("{:<24} {:>9} exec(s)  {how:<9}  ok", sc.name, o.execs());
            }
            Err(cx) => {
                ok = false;
                println!("{:<24} VIOLATION (substrate bug)", sc.name);
                print!("{}", cx.script());
            }
        }
    }

    println!("== atomics: every seeded ordering mutation must be caught ==");
    let mut schedules = String::new();
    for m in atomics::MUTATIONS {
        match atomics::check_mutation(m, opts) {
            Ok(cx) => {
                println!(
                    "{:<28} caught after {:>7} exec(s), {:>2} forced pick(s): {}",
                    m.site.name(),
                    cx.execs,
                    cx.picks.len(),
                    cx.failure
                );
                schedules.push_str(&cx.script());
                schedules.push('\n');
            }
            Err(e) => {
                ok = false;
                println!("{:<28} NOT DETECTED: {e}", m.site.name());
            }
        }
    }

    if let Some(path) = write_schedules {
        if let Err(e) = std::fs::write(path, &schedules) {
            println!("failed to write schedules to {path}: {e}");
            ok = false;
        } else {
            println!("minimized schedules written to {path}");
        }
    }
    ok
}

fn run_lint() -> bool {
    println!("== repo lint pass ==");
    let findings = dgr_check::lint::run(&dgr_check::lint::repo_root());
    for f in &findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.text);
    }
    if findings.is_empty() {
        println!("clean");
        true
    } else {
        println!("{} finding(s)", findings.len());
        false
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dgr-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if args.cmd == "all" || args.cmd == "corpus" {
        ok &= run_corpus(&args.bounds);
    }
    if args.cmd == "all" || args.cmd == "faults" {
        ok &= run_faults(&args.bounds, args.write_traces.as_deref());
    }
    if args.cmd == "all" || args.cmd == "lint" {
        ok &= run_lint();
    }
    if args.cmd == "all" || args.cmd == "atomics" {
        ok &= run_atomics(&args.opts, args.write_schedules.as_deref());
    }
    if ok {
        println!("dgr-check: all green");
        ExitCode::SUCCESS
    } else {
        println!("dgr-check: FAILURES (see above)");
        ExitCode::FAILURE
    }
}
