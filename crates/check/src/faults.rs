//! Oracle mutation testing: deliberately injected protocol faults.
//!
//! A checker that never fires is indistinguishable from a checker that
//! works. Each [`Fault`] here re-creates a known way to get the protocol
//! wrong — dropping a `Return`, delivering one twice, double-counting
//! `mt-cnt`, marking a vertex before its children returned, skipping
//! `mark2`'s upgrade rule, misrouting a return to the dummy root, splicing
//! an arc without the `add-reference` cooperation — and the harness
//! demands the explorer catches every one with a replayable
//! counterexample. [`pass_ordering`] covers the one fault that is not an
//! interleaving fault: running `M_R` before `M_T` across a GC cycle, which
//! fabricates deadlocks. [`Fault::ReorderDeliver`] points the other way:
//! it is a *transport* fault the protocol must tolerate, so it is explored
//! over the whole corpus and must stay clean.
//!
//! This module is the only place outside the graph/handler layer allowed
//! to mutate mark state directly (`mark_mut`) — that is the point: it
//! plays the buggy implementation. The repo lint pass ([`crate::lint`])
//! enforces the allowlist.

use dgr_core::driver::{run_mark2, run_mark3, MarkRunConfig};
use dgr_core::MarkMsg;
use dgr_gc::deadlocked_vertices;
use dgr_graph::{
    Color, GraphStore, MarkParent, NodeLabel, Oracle, PrimOp, RequestKind, Slot, TaskEndpoints,
};

use crate::world::{Ctx, World};

/// An injected protocol fault. Every fault fires at most once per run (the
/// first opportunity), mimicking a rare but systematic implementation bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Clean run — no fault injected.
    None,
    /// Drop the first `Return` a handler emits (breaks the marking tree's
    /// count accounting).
    DropReturn,
    /// Rewrite the first vertex-addressed `Return` to the dummy root
    /// (the spawning vertex never sees its mark return).
    MisrouteReturn,
    /// Increment `mt-cnt` once more than marks were spawned.
    DoubleCount,
    /// Force a transient vertex with outstanding children to `Marked`.
    PrematureMark,
    /// Ignore `mark2`'s upgrade rule: treat a higher-priority re-mark as a
    /// duplicate and return immediately.
    SkipUpgrade,
    /// Perform `add-reference` as a raw arc splice, without the
    /// Figure 4-2 cooperation.
    SkipCoopSplice,
    /// Re-enqueue the first delivered `Return` (duplicate delivery —
    /// breaks count accounting in the opposite direction from
    /// [`Fault::DropReturn`]; invariant 3's owed-return tally must flag
    /// the extra message the moment it enters a mailbox).
    DuplicateDeliver,
    /// Once per run, a FIFO mailbox may deliver its second message before
    /// its first. Unlike every other variant this is a fault of the
    /// *transport*, not the protocol, and the protocol must tolerate it:
    /// the corpus is explored under it and must stay clean (the paper's
    /// marking protocol never leans on mailbox ordering — any-order mode
    /// already proves the superset, this pins the FIFO modes too).
    ReorderDeliver,
}

impl Fault {
    /// The interleaving faults the harness injects (pass ordering is
    /// checked separately by [`pass_ordering`]).
    pub const INJECTED: [Fault; 7] = [
        Fault::DropReturn,
        Fault::MisrouteReturn,
        Fault::DoubleCount,
        Fault::PrematureMark,
        Fault::SkipUpgrade,
        Fault::SkipCoopSplice,
        Fault::DuplicateDeliver,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::DropReturn => "drop-return",
            Fault::MisrouteReturn => "misroute-return",
            Fault::DoubleCount => "double-count",
            Fault::PrematureMark => "premature-mark",
            Fault::SkipUpgrade => "skip-upgrade",
            Fault::SkipCoopSplice => "skip-coop-splice",
            Fault::DuplicateDeliver => "duplicate-deliver",
            Fault::ReorderDeliver => "reorder-deliver",
        }
    }

    /// The corpus scenario this fault is injected into.
    pub fn scenario(self) -> &'static str {
        match self {
            Fault::SkipUpgrade => "mark2-shared-upgrade",
            Fault::SkipCoopSplice => "mark1-move-mid-mark",
            _ => "mark1-cycle-diamond",
        }
    }
}

/// Pre-delivery hook. Returns `true` if the fault consumed the message
/// (the real handler must then be skipped).
pub fn pre_deliver(w: &mut World, ctx: &Ctx, msg: &MarkMsg, out: &mut Vec<MarkMsg>) -> bool {
    if ctx.fault != Fault::SkipUpgrade || w.fault_fired {
        return false;
    }
    if let MarkMsg::Mark2 { v, par, prior } = *msg {
        let s = w.g.mark(v, Slot::R);
        if !s.is_unmarked() && prior > s.prior {
            // The bug: "already marked, just return" — the upgrade that
            // should have re-marked v and its subtree never happens.
            w.fault_fired = true;
            out.push(MarkMsg::Return {
                slot: Slot::R,
                to: par,
            });
            return true;
        }
    }
    false
}

/// Post-delivery hook: corrupts the handler's output or the destination
/// vertex's mark word, once.
pub fn post_deliver(w: &mut World, ctx: &Ctx, msg: &MarkMsg, out: &mut Vec<MarkMsg>) {
    if w.fault_fired {
        return;
    }
    match ctx.fault {
        Fault::DropReturn => {
            if let Some(i) = out.iter().position(|m| matches!(m, MarkMsg::Return { .. })) {
                out.remove(i);
                w.fault_fired = true;
            }
        }
        Fault::MisrouteReturn => {
            for m in out.iter_mut() {
                if let MarkMsg::Return {
                    slot,
                    to: MarkParent::Vertex(_),
                } = *m
                {
                    *m = MarkMsg::Return {
                        slot,
                        to: MarkParent::RootPar,
                    };
                    w.fault_fired = true;
                    break;
                }
            }
        }
        Fault::DuplicateDeliver => {
            if matches!(msg, MarkMsg::Return { .. }) {
                out.push(*msg);
                w.fault_fired = true;
            }
        }
        Fault::DoubleCount | Fault::PrematureMark => {
            let slot = ctx.slot();
            if let Some(v) = msg.dest_vertex() {
                let s = w.g.mark(v, slot);
                if s.is_transient() && s.mt_cnt > 0 {
                    let sm = w.g.mark_mut(v, slot);
                    if ctx.fault == Fault::DoubleCount {
                        sm.mt_cnt += 1;
                    } else {
                        sm.color = Color::Marked;
                    }
                    w.fault_fired = true;
                }
            }
        }
        _ => {}
    }
}

/// Result of the pass-ordering check (the one fault that spans two passes
/// rather than one interleaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingReport {
    /// Vertices falsely reported deadlocked with the correct order
    /// (`M_T` before `M_R`'s report is consumed). Must be 0.
    pub correct_false_flags: usize,
    /// Vertices falsely reported deadlocked with the faulty order. Must be
    /// > 0 for the fault to count as detected.
    pub wrong_false_flags: usize,
}

impl OrderingReport {
    /// `true` if the validator caught the faulty order and not the correct
    /// one.
    pub fn detected(self) -> bool {
        self.correct_false_flags == 0 && self.wrong_false_flags > 0
    }
}

/// Deliver M_R's classification before M_T's snapshot: Figure 3-1's
/// `x = x + 1` still has a task on `x` when the GC cycle starts, so `x` is
/// *not* deadlocked. Run `M_T` first and the snapshot covers the task;
/// run `M_R` first, let the task drain, and a late `M_T` sees an empty
/// pool — fabricating a deadlock on `x`. The deadlock report is validated
/// against the oracle computed at cycle start.
pub fn pass_ordering() -> OrderingReport {
    fn build() -> (GraphStore, TaskEndpoints) {
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.vertex_mut(x)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(x, one);
        g.vertex_mut(x)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.set_root(x);
        let mut tasks = TaskEndpoints::new();
        tasks.push_task(None, x);
        (g, tasks)
    }
    let cfg = MarkRunConfig::default();

    // Ground truth at cycle start: the task on x is alive.
    let (g0, tasks0) = build();
    let truth = Oracle::compute(&g0, &tasks0).deadlocked;

    // Correct order: M_T snapshots the task pool first, then M_R runs and
    // the task drains concurrently — the snapshot already covers it.
    let (mut g, tasks) = build();
    run_mark3(&mut g, &tasks, &cfg);
    run_mark2(&mut g, &cfg);
    let correct = deadlocked_vertices(&g);

    // Faulty order: M_R first; by the time M_T runs the task has been
    // consumed, so its snapshot is empty.
    let (mut g, _) = build();
    run_mark2(&mut g, &cfg);
    run_mark3(&mut g, &TaskEndpoints::new(), &cfg);
    let wrong = deadlocked_vertices(&g);

    OrderingReport {
        correct_false_flags: correct.iter().filter(|&&v| !truth.contains(v)).count(),
        wrong_false_flags: wrong.iter().filter(|&&v| !truth.contains(v)).count(),
    }
}
