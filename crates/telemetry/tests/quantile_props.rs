//! Property tests for power-of-two histogram quantile estimation: an
//! estimate must always land inside the bucket that actually contains
//! the requested rank, and walking q upward must never walk the
//! estimate downward.

use dgr_telemetry::metrics::{
    bucket_index, bucket_lower_edge, bucket_upper_edge, Histogram, HIST_BUCKETS,
};
use proptest::prelude::*;

/// The true rank-th smallest observation (rank is 1-based).
fn true_rank_value(values: &[u64], rank: usize) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimates_stay_inside_the_rank_bucket(
        values in proptest::collection::vec(0u64..200_000, 1..300),
        q_times_100 in 0u64..101,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        let q = q_times_100 as f64 / 100.0;
        let est = s.quantile(q);

        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = true_rank_value(&values, rank);
        let b = bucket_index(truth);
        let lo = bucket_lower_edge(b);
        let hi = if b == HIST_BUCKETS - 1 {
            s.max
        } else {
            bucket_upper_edge(b)
        };
        prop_assert!(
            est >= lo && est <= hi,
            "q={} rank={} truth={} (bucket {} [{}, {}]) but estimate={}",
            q, rank, truth, b, lo, hi, est
        );
    }

    #[test]
    fn estimates_are_monotone_and_bounded_by_max(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        let mut last = 0u64;
        for step in 0..=20u64 {
            let est = s.quantile(step as f64 / 20.0);
            prop_assert!(est >= last, "quantile decreased at q={}", step as f64 / 20.0);
            prop_assert!(est <= s.max, "estimate exceeded the observed maximum");
            last = est;
        }
    }

    #[test]
    fn merged_snapshot_quantiles_match_a_global_histogram(
        a in proptest::collection::vec(0u64..50_000, 1..100),
        b in proptest::collection::vec(0u64..50_000, 1..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let global = Histogram::new();
        for &v in &a {
            ha.observe(v);
            global.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            global.observe(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        for q_times_10 in 0..=10u64 {
            let q = q_times_10 as f64 / 10.0;
            prop_assert_eq!(
                merged.quantile(q),
                global.snapshot().quantile(q),
                "merge changed the q={} estimate", q
            );
        }
    }
}
