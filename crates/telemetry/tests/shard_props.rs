//! Property tests for the sharded metrics layer: folding per-PE shards
//! must be indistinguishable from running a single global accumulator.

use dgr_telemetry::active::Registry;
use dgr_telemetry::metrics::HistSnapshot;
use dgr_telemetry::{CounterId, GaugeId, HistId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_shards_equal_global_counter(
        ops in proptest::collection::vec((0u16..8, 0usize..CounterId::COUNT, 1u64..100), 1..200),
    ) {
        let sharded = Registry::new(8);
        let mut global = [0u64; CounterId::COUNT];
        for &(pe, which, n) in &ops {
            let id = CounterId::ALL[which];
            sharded.pe(pe).add(id, n);
            global[which] += n;
        }
        let merged = sharded.snapshot().merged();
        for id in CounterId::ALL {
            prop_assert_eq!(
                merged.counter(id),
                global[id.index()],
                "counter {} diverged",
                id.name()
            );
        }
    }

    #[test]
    fn merged_shards_equal_global_histogram(
        ops in proptest::collection::vec((0u16..8, 0u64..100_000), 1..200),
    ) {
        let sharded = Registry::new(8);
        let mut global = HistSnapshot::default();
        for &(pe, v) in &ops {
            sharded.pe(pe).observe(HistId::BatchSize, v);
            let single = dgr_telemetry::metrics::Histogram::new();
            single.observe(v);
            global.merge(&single.snapshot());
        }
        let merged = sharded.snapshot().merged();
        prop_assert_eq!(*merged.hist(HistId::BatchSize), global);
    }

    #[test]
    fn merged_high_water_is_the_max_shard(
        ops in proptest::collection::vec((0u16..8, 0i64..10_000), 1..100),
    ) {
        let sharded = Registry::new(8);
        let mut max = 0i64;
        for &(pe, v) in &ops {
            sharded.pe(pe).gauge_max(GaugeId::MailboxHighWater, v);
            max = max.max(v);
        }
        prop_assert_eq!(
            sharded.snapshot().merged().gauge(GaugeId::MailboxHighWater),
            max
        );
    }
}
