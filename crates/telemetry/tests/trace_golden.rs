//! Golden-file pins for the exporters. The Chrome trace is loaded by
//! external tools (`chrome://tracing`, Perfetto) and the timeline JSON by
//! the perf-trajectory tooling, so their exact byte shape is contract:
//! any change here is a deliberate format revision, not an accident.

use dgr_telemetry::active::Registry;
use dgr_telemetry::{chrome_trace_json, timeline_json, CycleReport, Event, EventKind, Phase};

fn ev(ts_us: u64, pe: u16, kind: EventKind, name: &'static str, value: u64) -> Event {
    Event {
        ts_us,
        pe,
        cycle: 7,
        phase: Phase::Mt,
        kind,
        name,
        value,
        lamport: 0,
    }
}

#[test]
fn chrome_trace_golden() {
    let evs = [
        ev(3, 1, EventKind::Instant, "bsp_round", 12),
        ev(1, 0, EventKind::Begin, "M_T", 0),
        ev(5, 0, EventKind::End, "M_T", 0),
    ];
    let got = chrome_trace_json(&evs);
    let want = concat!(
        "{\"traceEvents\": [\n",
        "  {\"name\": \"M_T\", \"cat\": \"M_T\", \"ph\": \"B\", \"ts\": 1, ",
        "\"pid\": 0, \"tid\": 0, \"args\": {\"cycle\": 7, \"value\": 0}},\n",
        "  {\"name\": \"bsp_round\", \"cat\": \"M_T\", \"ph\": \"i\", \"ts\": 3, ",
        "\"pid\": 0, \"tid\": 1, \"s\": \"t\", \"args\": {\"cycle\": 7, \"value\": 12}},\n",
        "  {\"name\": \"M_T\", \"cat\": \"M_T\", \"ph\": \"E\", \"ts\": 5, ",
        "\"pid\": 0, \"tid\": 0, \"args\": {\"cycle\": 7, \"value\": 0}}\n",
        "]}\n",
    );
    assert_eq!(got, want);
}

/// Flow events render as `s`/`f` pairs linked by `(cat, id)` — the byte
/// shape Perfetto resolves arrows from.
#[test]
fn chrome_trace_flow_golden() {
    let mut send = ev(2, 0, EventKind::FlowSend, "M_R", 9);
    send.lamport = 1;
    let mut recv = ev(6, 1, EventKind::FlowRecv, "M_R", 9);
    recv.lamport = 2;
    let got = chrome_trace_json(&[send, recv]);
    let want = concat!(
        "{\"traceEvents\": [\n",
        "  {\"name\": \"M_R\", \"cat\": \"flow\", \"ph\": \"s\", \"ts\": 2, ",
        "\"pid\": 0, \"tid\": 0, \"id\": 9, \"args\": {\"cycle\": 7, \"value\": 9}},\n",
        "  {\"name\": \"M_R\", \"cat\": \"flow\", \"ph\": \"f\", \"ts\": 6, ",
        "\"pid\": 0, \"tid\": 1, \"bp\": \"e\", \"id\": 9, \"args\": {\"cycle\": 7, \"value\": 9}}\n",
        "]}\n",
    );
    assert_eq!(got, want);
}

/// Every `E` must close the most recent unclosed `B` with the same name
/// on the same track, and every `f` must resolve a previously-emitted
/// `s` with the same flow id — checked over a trace produced by real
/// (nested, multi-PE) span guards and flow tags on the always-compiled
/// active registry.
#[test]
fn chrome_trace_begin_end_pairs_match() {
    let reg = Registry::new(3);
    {
        let _cycle = reg.span(0, 1, Phase::Gc, "cycle");
        {
            let _mr = reg.span(0, 1, Phase::Mr, "M_R");
            reg.instant(1, 1, Phase::Mr, "wave", 4);
            let tag = reg.flow_send_tag(0, 1, Phase::Mr, "mark");
            reg.flow_recv_tag(1, 1, Phase::Mr, "mark", tag);
        }
        let _classify = reg.span(2, 1, Phase::Classify, "restructure");
    }
    let events = reg.drain_events();
    let trace = chrome_trace_json(&events);

    // Replay the trace records in order: one span stack per tid, one
    // outstanding-flow set for the whole trace.
    let mut stacks: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    let mut open_flows: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut records = 0;
    for line in trace.lines() {
        let Some(name) = field(line, "\"name\": \"", '"') else {
            continue;
        };
        records += 1;
        let tid: u64 = field(line, "\"tid\": ", ',').unwrap().parse().unwrap();
        let ph = field(line, "\"ph\": \"", '"').unwrap();
        match ph.as_str() {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => assert_eq!(
                stacks.entry(tid).or_default().pop().as_ref(),
                Some(&name),
                "E closes the innermost open B on its track"
            ),
            "i" => {}
            "s" => {
                let id = field(line, "\"id\": ", ',').unwrap();
                assert!(open_flows.insert(id), "flow ids are not reused");
            }
            "f" => {
                let id = field(line, "\"id\": ", ',').unwrap();
                assert!(open_flows.remove(&id), "f resolves a prior s");
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert_eq!(records, events.len(), "every event rendered");
    assert!(
        stacks.values().all(Vec::is_empty),
        "no span left open: {stacks:?}"
    );
    assert!(
        open_flows.is_empty(),
        "no flow left dangling: {open_flows:?}"
    );
}

fn field(line: &str, key: &str, term: char) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(term).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

#[test]
fn timeline_json_golden() {
    let reports = [
        CycleReport {
            cycle: 1,
            ran_mt: true,
            mt_us: 10,
            mr_us: 20,
            marked_t: 2,
            marked_by_priority: [1, 0, 3],
            ..Default::default()
        },
        CycleReport {
            cycle: 2,
            ..Default::default()
        },
    ];
    let got = timeline_json(&reports);
    assert!(got.starts_with("[\n"), "array opening: {got:?}");
    assert!(got.trim_end().ends_with(']'), "array closing");
    assert_eq!(
        got.matches("{\"cycle\":").count(),
        2,
        "one object per cycle"
    );
    // The first record round-trips through the single-report renderer —
    // the schema is pinned field-by-field in the cycle module's tests.
    assert!(got.contains(&reports[0].render_json()));
    assert!(got.contains("\"marked_by_priority\": [1, 0, 3]"));
}
